"""Scenario: bring your own network.

Shows the full substrate API on a user-supplied graph instead of a
registry stand-in: build a DiGraph from raw edges, attach a weighting
scheme, validate it for the LT model, estimate spreads (Monte Carlo vs.
RR-set vs. exact enumeration on a tiny fixture), and run OPIM on it.

Run:  python examples/custom_graph.py
"""

import numpy as np

from repro import (
    OnlineOPIM,
    assign_wc_weights,
    from_edge_list,
    monte_carlo_spread,
)
from repro.diffusion import exact_spread_ic
from repro.graph import summarize
from repro.sampling import RRSampler


def tiny_fixture() -> None:
    """Exact vs. estimated spread on a 5-node weighted graph."""
    edges = [
        (0, 1, 0.5),
        (0, 2, 0.5),
        (1, 3, 0.4),
        (2, 3, 0.4),
        (3, 4, 0.9),
    ]
    graph = from_edge_list(edges, name="tiny")
    exact = exact_spread_ic(graph, [0])
    mc = monte_carlo_spread(graph, [0], "IC", num_samples=20000, seed=3)
    sampler = RRSampler(graph, "IC", seed=4)
    collection = sampler.new_collection(20000)
    rr_estimate = collection.estimate_spread([0])
    print("Tiny 5-node fixture, seed {0}:")
    print(f"  exact sigma(S)       = {exact:.4f}")
    print(f"  Monte-Carlo estimate = {mc.mean:.4f} (+- {1.96 * mc.std_error:.4f})")
    print(f"  RR-set estimate      = {rr_estimate:.4f}  (Lemma 3.1)\n")


def custom_network() -> None:
    """OPIM on a hand-rolled collaboration-style network."""
    rng = np.random.default_rng(11)
    # Communities of 60 nodes with dense intra- and sparse inter-links.
    edges = []
    communities = 8
    size = 60
    for c in range(communities):
        base = c * size
        for _ in range(size * 6):
            u, v = rng.integers(0, size, size=2)
            if u != v:
                edges.append((base + int(u), base + int(v)))
        for _ in range(12):  # bridges to the next community
            u = base + int(rng.integers(0, size))
            v = ((c + 1) % communities) * size + int(rng.integers(0, size))
            edges.append((u, v))
    graph = assign_wc_weights(
        from_edge_list(set(edges), n=communities * size, name="communities")
    )
    print(f"Custom network: {summarize(graph)}")

    algo = OnlineOPIM(graph, model="LT", k=communities, seed=5)
    algo.extend(20000)
    snap = algo.query()
    picked_communities = sorted({s // size for s in snap.seeds})
    print(f"  OPIM picked seeds {snap.seeds}")
    print(f"  communities covered: {picked_communities}")
    print(f"  guarantee alpha = {snap.alpha:.3f}")
    spread = monte_carlo_spread(graph, snap.seeds, "LT", num_samples=2000, seed=6)
    print(f"  estimated spread: {spread.mean:.1f} / {graph.n}")


if __name__ == "__main__":
    tiny_fixture()
    custom_network()
