"""Scenario: node-weighted (targeted) influence maximization.

A retailer only profits from reaching *customers* — a subset of the
network with per-user value — not from reach in general.  This is the
node-weighted variant the paper lists under future work ("other
variants of influence maximization"); the library supports it by
swapping the uniform RR-root distribution for a value-weighted one
(``repro.weighted``), after which OPIM's machinery and guarantees
carry over with ``n`` replaced by the total value ``W``.

The script builds a network where value concentrates in one region,
then contrasts:

* unweighted OPIM (maximizes raw reach), and
* weighted OPIM (maximizes expected *value* reached),

evaluating both on expected value via weighted Monte Carlo.

Run:  python examples/targeted_marketing.py
"""

import numpy as np

from repro import OnlineOPIM, load_dataset
from repro.weighted import WeightedRRSampler, monte_carlo_weighted_spread

K = 10


def main() -> None:
    graph = load_dataset("pokec-sim", scale=0.4)
    rng = np.random.default_rng(42)

    # Customer values: 20% of users are customers; value is heavy-tailed
    # and *anti-correlated* with degree (high-degree hubs are media
    # accounts, not buyers), which is what makes targeting non-trivial.
    values = np.zeros(graph.n)
    customers = rng.choice(graph.n, size=graph.n // 5, replace=False)
    values[customers] = rng.pareto(2.0, size=customers.size) + 1.0
    degree_rank = np.argsort(np.argsort(-graph.out_degree()))
    values *= np.where(degree_rank < graph.n // 20, 0.1, 1.0)  # dampen hubs
    total_value = values.sum()
    print(
        f"Network: {graph.name} (n={graph.n}); customers: {customers.size}, "
        f"total value W = {total_value:.0f}\n"
    )

    # --- Unweighted OPIM: chases raw reach -----------------------------
    plain = OnlineOPIM(graph, "IC", k=K, delta=0.01, seed=7)
    plain.extend(20000)
    plain_snap = plain.query()

    # --- Weighted OPIM: chases value ------------------------------------
    sampler = WeightedRRSampler(graph, "IC", values, seed=7)
    targeted = OnlineOPIM(graph, "IC", k=K, delta=0.01, sampler=sampler)
    targeted.extend(20000)
    targeted_snap = targeted.query()

    for label, snap in (("Unweighted", plain_snap), ("Value-weighted", targeted_snap)):
        value = monte_carlo_weighted_spread(
            graph, snap.seeds, values, "IC", num_samples=2000, seed=11
        )
        print(f"{label} OPIM (alpha = {snap.alpha:.3f}):")
        print(f"  seeds              : {snap.seeds}")
        print(f"  expected value     : {value.mean:.1f} of {total_value:.0f}")
        print(f"  value share        : {100 * value.mean / total_value:.1f}%\n")

    print(
        "The weighted variant reports its alpha against the *weighted*\n"
        "optimum — the guarantee's scale factor is W, not n."
    )


if __name__ == "__main__":
    main()
