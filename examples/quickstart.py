"""Quickstart: online influence maximization in ten lines.

Runs the paper's main algorithm (OPIM) on a synthetic stand-in of the
Pokec social network: stream reverse-reachable sets, pause at any time,
and read off a seed set with an instance-specific approximation
guarantee.  Then solves the same instance *conventionally* with OPIM-C
for a fixed (1 - 1/e - epsilon) target.

Run:  python examples/quickstart.py
"""

from repro import OnlineOPIM, load_dataset, monte_carlo_spread, opim_c


def main() -> None:
    graph = load_dataset("pokec-sim", scale=0.5)
    print(f"Graph: {graph.name} with n={graph.n} nodes, m={graph.m} edges\n")

    # ------------------------------------------------------------------
    # Online processing: pause anytime, resume anytime.
    # ------------------------------------------------------------------
    algo = OnlineOPIM(graph, model="IC", k=10, seed=42)
    print("Online OPIM (pause-anytime guarantees):")
    for budget in (1000, 4000, 16000):
        algo.extend_to(budget)  # "resume": give the algorithm more time
        snap = algo.query()  # "pause": ask for the current answer
        print(
            f"  after {budget:>6d} RR sets: alpha = {snap.alpha:.3f} "
            f"(seeds cover {snap.coverage_r2}/{snap.theta2} judge sets)"
        )
    seeds = snap.seeds
    spread = monte_carlo_spread(graph, seeds, "IC", num_samples=2000, seed=7)
    print(f"  final seed set {seeds}")
    print(f"  estimated spread: {spread.mean:.1f} of {graph.n} nodes\n")

    # ------------------------------------------------------------------
    # Conventional influence maximization with OPIM-C.
    # ------------------------------------------------------------------
    result = opim_c(graph, "IC", k=10, epsilon=0.1, delta=1 / graph.n, seed=42)
    print("OPIM-C (fixed (1 - 1/e - 0.1)-approximation):")
    print(f"  RR sets used : {result.num_rr_sets}")
    print(f"  iterations   : {result.iterations}")
    print(f"  achieved alpha {result.alpha_achieved:.3f} "
          f">= target {result.extra['target_alpha']:.3f}")


if __name__ == "__main__":
    main()
