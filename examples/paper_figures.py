"""Regenerate a slice of the paper's evaluation from the API.

The examples above use the library as a *tool*; this one uses it as a
*reproduction*: it re-creates a small-scale Figure 2 panel (online
guarantees), a Figure 6 panel (conventional IM cost), and the Figure 1
analysis, printing each as the plain-text tables the benchmarks write.

For the full set at higher fidelity use:
    repro-opim reproduce --out reproduction --preset smoke

Run:  python examples/paper_figures.py
"""

from repro.datasets import load_dataset
from repro.experiments import (
    conventional_comparison,
    figure1,
    format_result,
    online_guarantee_curves,
)
from repro.experiments.harness import checkpoint_grid


def main() -> None:
    print("=" * 70)
    print("Figure 1 — near-optimality of the delta/2 split (analytic)")
    print("=" * 70)
    print(format_result(figure1(deltas=(1e-2, 1e-6)), x_format=".3g"))

    print()
    print("=" * 70)
    print("Figure 2 (one panel) — online guarantees vs. RR budget, LT")
    print("=" * 70)
    graph = load_dataset("pokec-sim", scale=0.25)
    panel = online_guarantee_curves(
        graph,
        "LT",
        k=20,
        checkpoints=checkpoint_grid(1000, 5),
        repetitions=1,
        seed=2018,
    )
    print(format_result(panel))
    plus = panel.series["OPIM+"]
    print(
        f"\n-> OPIM+ reaches alpha = {plus.y[-1]:.3f} at {int(plus.x[-1])} RR "
        f"sets; every adoption stays below 1 - 1/e = 0.632."
    )

    print()
    print("=" * 70)
    print("Figure 6 (cost panel) — conventional IM vs. epsilon, LT")
    print("=" * 70)
    small = load_dataset("twitter-sim", scale=0.05)
    panels = conventional_comparison(
        small,
        "LT",
        k=20,
        epsilons=(0.2, 0.4),
        repetitions=1,
        seed=2018,
        spread_samples=300,
    )
    print(format_result({"rr_sets": panels["rr_sets"]}))
    rr = panels["rr_sets"].series
    ratio = rr["IMM"].y[0] / rr["OPIM-C+"].y[0]
    print(
        f"\n-> At epsilon = 0.2, OPIM-C+ used {ratio:.1f}x fewer RR sets "
        f"than IMM for the same (1 - 1/e - eps) guarantee."
    )


if __name__ == "__main__":
    main()
