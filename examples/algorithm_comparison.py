"""Scenario: benchmarking conventional IM algorithms on one instance.

Compares OPIM-C (three bound variants) against IMM, TIM+, SSA-Fix and
D-SSA-Fix for the same (1 - 1/e - epsilon) target: seed-set quality is
near-identical across algorithms (they share the guarantee), so the
interesting column is the number of RR sets — the paper's headline
result is OPIM-C+ needing far fewer samples than IMM at equal
guarantees (Figures 6-7).

Run:  python examples/algorithm_comparison.py
"""

from repro import load_dataset, monte_carlo_spread, opim_c
from repro.baselines import dssa_fix, imm, ssa_fix, tim_plus
from repro.experiments import format_table

EPSILON = 0.3
K = 20
MODEL = "LT"


def main() -> None:
    graph = load_dataset("livejournal-sim", scale=0.25)
    print(
        f"Instance: {graph.name} (n={graph.n}, m={graph.m}), model={MODEL}, "
        f"k={K}, epsilon={EPSILON}\n"
    )

    runners = [
        ("OPIM-C+", lambda: opim_c(graph, MODEL, K, EPSILON, seed=5)),
        ("OPIM-C0", lambda: opim_c(graph, MODEL, K, EPSILON, seed=5, bound="vanilla")),
        ("OPIM-C'", lambda: opim_c(graph, MODEL, K, EPSILON, seed=5, bound="leskovec")),
        ("IMM", lambda: imm(graph, MODEL, K, EPSILON, seed=5)),
        ("TIM+", lambda: tim_plus(graph, MODEL, K, EPSILON, seed=5)),
        ("SSA-Fix", lambda: ssa_fix(graph, MODEL, K, EPSILON, seed=5)),
        ("D-SSA-Fix", lambda: dssa_fix(graph, MODEL, K, EPSILON, seed=5)),
    ]

    rows = []
    for name, run in runners:
        result = run()
        spread = monte_carlo_spread(
            graph, result.seeds, MODEL, num_samples=1000, seed=9
        )
        rows.append(
            {
                "Algorithm": name,
                "RR sets": result.num_rr_sets,
                "Time (s)": round(result.elapsed, 2),
                "Est. spread": round(spread.mean, 1),
                "Spread (%)": round(100 * spread.mean / graph.n, 1),
            }
        )

    print(format_table(rows))
    best = min(rows, key=lambda r: r["RR sets"])
    imm_row = next(r for r in rows if r["Algorithm"] == "IMM")
    print(
        f"\n{best['Algorithm']} used {imm_row['RR sets'] / best['RR sets']:.1f}x "
        f"fewer RR sets than IMM for the same guarantee."
    )


if __name__ == "__main__":
    main()
