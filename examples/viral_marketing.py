"""Scenario: interactive seed selection for a viral-marketing campaign.

This is the workload the paper's introduction motivates.  A marketing
team wants k influencers for a product launch on a Twitter-like
network.  They do not know in advance how much solution quality they
need — instead they watch the guarantee improve in real time and stop
when either (a) the guarantee passes their comfort threshold, or (b)
their time budget runs out.  Classic offline algorithms cannot support
this: they would demand an epsilon up front and go silent until done.

The script simulates the interactive session: each "tick" the team
gives the algorithm another slice of compute, then reviews the
guarantee; it also shows what the pessimistic alternatives (Borgs et
al., OPIM-adoption of IMM) would have told the team at the same points.

Run:  python examples/viral_marketing.py
"""

from repro import BorgsOnline, OnlineOPIM, load_dataset, monte_carlo_spread
from repro.core.adoption import OPIMAdoption
from repro.baselines import imm

K = 25  # influencers the campaign can afford
ALPHA_TARGET = 0.75  # the team is happy with a 0.75-approximation
TICK_RR_SETS = 4000  # compute slice per review ("a few seconds")
MAX_TICKS = 8  # the team's overall patience


def main() -> None:
    graph = load_dataset("twitter-sim", scale=0.25)
    print(f"Campaign network: {graph.name} (n={graph.n}, m={graph.m})")
    print(f"Budget: k={K} seed users; stop at alpha >= {ALPHA_TARGET}\n")

    opim = OnlineOPIM(graph, model="IC", k=K, seed=7)
    borgs = BorgsOnline(graph, model="IC", k=K, seed=7)

    stopped_at = None
    for tick in range(1, MAX_TICKS + 1):
        opim.extend(TICK_RR_SETS)
        borgs.extend_to(opim.num_rr_sets)
        snap = opim.query()
        borgs_alpha = borgs.query().alpha
        print(
            f"review #{tick}: {opim.num_rr_sets:>6d} RR sets | "
            f"OPIM+ alpha = {snap.alpha:.3f} | "
            f"Borgs et al. alpha = {borgs_alpha:.2e}"
        )
        if snap.alpha >= ALPHA_TARGET:
            stopped_at = tick
            break

    if stopped_at is None:
        print("\nTime budget exhausted before reaching the target; the team")
        print("still walks away with the best seed set and an honest bound:")
        snap = opim.query()

    spread = monte_carlo_spread(graph, snap.seeds, "IC", num_samples=2000, seed=11)
    print(f"\nSelected {len(snap.seeds)} influencers: {snap.seeds[:10]}...")
    print(f"Guaranteed alpha      : {snap.alpha:.3f} (w.p. >= 1 - 1/n)")
    print(f"Estimated reach       : {spread.mean:.0f} users "
          f"({100 * spread.mean / graph.n:.1f}% of the network)")

    # What would the Section 3.3 adoption of IMM have offered?
    adoption = OPIMAdoption(
        "IMM",
        lambda eps, cap: imm(graph, "IC", K, eps, seed=13, rr_budget=cap),
    )
    curve = adoption.run(opim.num_rr_sets)
    print(
        f"\nFor reference, the OPIM-adoption of IMM at the same budget "
        f"could only report alpha = {curve.guarantee_at(opim.num_rr_sets):.3f} "
        f"(capped below 1 - 1/e = 0.632)."
    )


if __name__ == "__main__":
    main()
