"""Scenario: a long-running OPIM session that survives restarts.

Online processing means a session may span hours or days of wall-clock
time with the analyst checking in occasionally.  This example shows the
operational side the library adds around the paper's algorithm:

1. an :class:`~repro.core.session.OPIMSession` whose queries share one
   joint failure budget (the delta / 2^i schedule from Section 4's
   "Discussions"), so every guarantee ever reported holds
   simultaneously;
2. checkpointing the underlying algorithm to disk and restoring it in
   a "new process", continuing the exact same randomness stream.

Run:  python examples/resumable_session.py
"""

import tempfile
from pathlib import Path

from repro import OnlineOPIM, load_dataset, load_opim, save_opim
from repro.core.session import OPIMSession


def joint_guarantee_session() -> None:
    graph = load_dataset("livejournal-sim", scale=0.2)
    session = OPIMSession(graph, "LT", k=15, delta=0.05, seed=99)
    print(f"Session on {graph.name} (n={graph.n}); joint delta = {session.delta}")

    for round_no in range(1, 5):
        session.extend(3000)
        budget = session.next_query_delta()
        snap = session.query()
        print(
            f"  query #{round_no}: alpha = {snap.alpha:.4f} "
            f"(this query's failure budget: {budget:.4g})"
        )
    print(
        "  all four guarantees above hold *simultaneously* w.p. >= "
        f"{1 - session.delta:.3f}\n"
    )


def checkpoint_and_resume() -> None:
    graph = load_dataset("pokec-sim", scale=0.3)
    workdir = Path(tempfile.mkdtemp(prefix="opim-ckpt-"))

    print(f"Process A: runs OPIM on {graph.name}, checkpoints to {workdir}")
    process_a = OnlineOPIM(graph, "IC", k=10, delta=0.02, seed=7)
    process_a.extend(4000)
    before = process_a.query()
    save_opim(process_a, workdir)
    print(f"  alpha at checkpoint: {before.alpha:.4f} "
          f"({before.num_rr_sets} RR sets)")

    print("Process B: restores the checkpoint and keeps going")
    process_b = load_opim(graph, workdir)
    process_b.extend(8000)
    after = process_b.query()
    print(f"  alpha after resuming: {after.alpha:.4f} "
          f"({after.num_rr_sets} RR sets)")

    # Evidence the stream really continued: process A extended by the
    # same amount produces the identical future.
    process_a.extend(8000)
    twin = process_a.query()
    assert twin.seeds == after.seeds and abs(twin.alpha - after.alpha) < 1e-12
    print("  verified: the restored run is bit-identical to the original")


if __name__ == "__main__":
    joint_guarantee_session()
    checkpoint_and_resume()
