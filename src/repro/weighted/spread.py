"""Monte-Carlo estimation of node-weighted expected spread."""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.diffusion.base import DiffusionModel, get_model
from repro.diffusion.spread import SpreadEstimate
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator


def monte_carlo_weighted_spread(
    graph_or_model: Union[DiGraph, DiffusionModel],
    seeds: Iterable[int],
    node_weights,
    model: str = None,
    num_samples: int = 10_000,
    seed: SeedLike = None,
) -> SpreadEstimate:
    """Estimate ``sigma_w(S) = E[sum of weights of activated nodes]``.

    With all-ones weights this reduces exactly to
    :func:`repro.diffusion.spread.monte_carlo_spread`.
    """
    if isinstance(graph_or_model, DiffusionModel):
        diffusion = graph_or_model
    else:
        if model is None:
            raise ParameterError("model name required when passing a graph")
        diffusion = get_model(model, graph_or_model)
    if num_samples < 1:
        raise ParameterError(f"num_samples must be >= 1, got {num_samples}")

    weights = np.asarray(node_weights, dtype=np.float64)
    if weights.shape != (diffusion.graph.n,):
        raise ParameterError(
            f"node_weights must have length n={diffusion.graph.n}"
        )
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ParameterError("node_weights must be finite and non-negative")

    seed_list = sorted({int(s) for s in seeds})
    if not seed_list:
        return SpreadEstimate(0.0, 0.0, num_samples)
    for s in seed_list:
        if not 0 <= s < diffusion.graph.n:
            raise ParameterError(f"seed {s} out of range")

    rng = as_generator(seed)
    totals = np.empty(num_samples, dtype=np.float64)
    for i in range(num_samples):
        activated = diffusion.simulate(seed_list, rng)
        totals[i] = weights[activated].sum()
    mean = float(totals.mean())
    std_error = (
        float(totals.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else 0.0
    )
    return SpreadEstimate(mean=mean, std_error=std_error, num_samples=num_samples)
