"""Node-weighted influence maximization (the paper's future-work
direction "other variants of influence maximization").

Everything in the core OPIM machinery generalizes when each node ``v``
carries a benefit weight ``w_v >= 0`` and the objective becomes the
*weighted* expected spread ``sigma_w(S) = sum_v w_v Pr[S activates v]``:
sample RR-set roots proportionally to ``w`` instead of uniformly, and
replace ``n`` by the total weight ``W = sum_v w_v`` in every estimate
and concentration bound (the weighted Lemma 3.1:
``sigma_w(S) = W * Pr[S covers a weighted-root RR set]``).
"""

from repro.weighted.sampler import WeightedRRSampler
from repro.weighted.spread import monte_carlo_weighted_spread

__all__ = ["WeightedRRSampler", "monte_carlo_weighted_spread"]
