"""Weighted-root RR-set sampling.

The weighted analogue of Lemma 3.1: if the RR root is drawn with
probability ``w_v / W`` then for any seed set ``S``

    ``sigma_w(S) = W * Pr[S intersects R]``,

because ``Pr[S covers R | root = v] = Pr[S activates v]``.  The proof
is the paper's Lemma 3.1 argument verbatim with the uniform root
distribution replaced by ``w / W`` — every downstream component
(greedy coverage, Lemma 4.1 martingale bounds, the OPIM split) only
sees i.i.d. RR sets and a scale factor, so the whole pipeline carries
over by swapping ``n`` for ``W``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.alias import AliasTable
from repro.sampling.collection import RRCollection
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike


class WeightedRRSampler(RRSampler):
    """An :class:`RRSampler` whose roots follow node benefit weights.

    Parameters
    ----------
    graph, model, seed:
        As for :class:`RRSampler`.
    node_weights:
        Non-negative benefit per node; at least one must be positive.
        ``universe_weight`` (the ``W`` replacing ``n`` in estimates and
        bounds) is their sum.

    >>> from repro.graph import star_graph, assign_wc_weights
    >>> g = assign_wc_weights(star_graph(4))
    >>> weights = [0.0, 1.0, 1.0, 1.0]   # the hub itself is worthless
    >>> sampler = WeightedRRSampler(g, "IC", weights, seed=1)
    >>> sampler.sample_one() is not None
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        node_weights,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, model, seed=seed)
        weights = np.asarray(node_weights, dtype=np.float64)
        if weights.shape != (graph.n,):
            raise ParameterError(
                f"node_weights must have length n={graph.n}, got {weights.shape}"
            )
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ParameterError("node_weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ParameterError("node_weights must have positive sum")
        self.node_weights = weights
        self.universe_weight = total
        self._root_table = AliasTable(weights)

    def sample_one(self, root: Optional[int] = None) -> np.ndarray:
        if root is None:
            root = int(self._root_table.sample(seed=self.rng))
        return super().sample_one(root=root)

    def estimate_weighted_spread(
        self, collection: RRCollection, seeds
    ) -> float:
        """``W * Lambda(S) / theta`` — the weighted Lemma 3.1 estimate."""
        if len(collection) == 0:
            raise ParameterError("cannot estimate from an empty collection")
        return self.universe_weight * collection.coverage(seeds) / len(collection)
