"""Graph summary statistics (the paper's Table 2 columns and more)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphSummary:
    """The per-dataset quantities reported in the paper's Table 2,
    plus degree-distribution detail useful for validating stand-ins."""

    name: str
    n: int
    m: int
    type: str  # "directed" | "undirected"
    avg_degree: float
    max_in_degree: int
    max_out_degree: int
    isolated_nodes: int

    def as_row(self) -> dict:
        """Row dict for tabular reporting (Table 2 layout)."""
        return {
            "Dataset": self.name,
            "n": self.n,
            "m": self.m,
            "Type": self.type,
            "Avg. degree": round(self.avg_degree, 1),
        }


def summarize(graph: DiGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for *graph*.

    For graphs of undirected origin the edge count and average degree
    follow the paper's convention: ``m`` counts undirected edges (half
    the stored arcs) and the average degree is ``2m / n``; for directed
    graphs ``m`` counts arcs and the average degree is ``m / n``.
    """
    in_degrees = graph.in_degree()
    out_degrees = graph.out_degree()
    isolated = int(np.count_nonzero((in_degrees == 0) & (out_degrees == 0)))
    if graph.undirected_origin:
        m = graph.m // 2
        avg = 2.0 * m / graph.n if graph.n else 0.0
        kind = "undirected"
    else:
        m = graph.m
        avg = m / graph.n if graph.n else 0.0
        kind = "directed"
    return GraphSummary(
        name=graph.name,
        n=graph.n,
        m=m,
        type=kind,
        avg_degree=avg,
        max_in_degree=int(in_degrees.max(initial=0)),
        max_out_degree=int(out_degrees.max(initial=0)),
        isolated_nodes=isolated,
    )


def degree_histogram(graph: DiGraph, direction: str = "in") -> np.ndarray:
    """Histogram ``h[d] = #nodes with degree d`` for the given direction."""
    if direction == "in":
        degrees = graph.in_degree()
    elif direction == "out":
        degrees = graph.out_degree()
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    return np.bincount(degrees)
