"""Compressed-sparse-row directed graph with per-edge probabilities.

The influence-maximization algorithms in this package traverse edges in
both directions:

* forward diffusion simulation follows *out*-edges;
* reverse-reachable (RR) set sampling follows *in*-edges.

:class:`DiGraph` therefore stores both adjacency directions as CSR
(numpy) arrays.  Edge propagation probabilities are duplicated into both
layouts so either traversal touches a single contiguous slice per node.

Nodes are the integers ``0 .. n-1``.  Parallel edges are not allowed
(they would bias the weighted-cascade weighting); self-loops are
rejected because neither the IC nor the LT model gives them meaning.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import GraphError, WeightError


class DiGraph:
    """An immutable directed graph in dual-CSR form.

    Parameters
    ----------
    n:
        Number of nodes.
    sources, targets:
        Parallel int arrays of length ``m`` holding one directed edge
        ``sources[i] -> targets[i]`` each.
    probs:
        Propagation probability ``p(sources[i], targets[i])`` per edge,
        in ``[0, 1]``.  May be ``None`` for an unweighted skeleton; use
        the functions in :mod:`repro.graph.weights` to attach a scheme.
    name:
        Optional human-readable identifier used in reports.
    undirected_origin:
        Metadata flag recording that the edge array was produced by
        symmetrizing an undirected edge list (as with the Orkut
        dataset); it does not change behaviour.
    """

    __slots__ = (
        "n",
        "name",
        "undirected_origin",
        "out_offsets",
        "out_targets",
        "out_probs",
        "in_offsets",
        "in_sources",
        "in_probs",
        "_in_prob_sums",
    )

    def __init__(
        self,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        probs: np.ndarray = None,
        name: str = "graph",
        undirected_origin: bool = False,
    ) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise GraphError("sources and targets must be 1-D arrays of equal length")
        m = sources.shape[0]
        if m and (sources.min() < 0 or sources.max() >= n):
            raise GraphError("edge source out of range")
        if m and (targets.min() < 0 or targets.max() >= n):
            raise GraphError("edge target out of range")
        if m and np.any(sources == targets):
            raise GraphError("self-loops are not allowed")

        if probs is None:
            probs = np.full(m, np.nan, dtype=np.float64)
        else:
            probs = np.asarray(probs, dtype=np.float64)
            if probs.shape != (m,):
                raise WeightError("probs must align with the edge arrays")
            finite = probs[np.isfinite(probs)]
            if finite.size and (finite.min() < 0.0 or finite.max() > 1.0):
                raise WeightError("edge probabilities must lie in [0, 1]")

        # Reject parallel edges: sort by (source, target) and look for
        # adjacent duplicates.  The sort order is also reused to build
        # the out-CSR, so this check is effectively free.
        order = np.lexsort((targets, sources))
        s_sorted = sources[order]
        t_sorted = targets[order]
        if m > 1:
            dup = (s_sorted[1:] == s_sorted[:-1]) & (t_sorted[1:] == t_sorted[:-1])
            if np.any(dup):
                i = int(np.flatnonzero(dup)[0])
                raise GraphError(
                    f"parallel edge <{s_sorted[i]}, {t_sorted[i]}> is not allowed"
                )

        self.n = int(n)
        self.name = name
        self.undirected_origin = bool(undirected_origin)

        p_sorted = probs[order]
        self.out_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(s_sorted, minlength=n), out=self.out_offsets[1:])
        self.out_targets = np.ascontiguousarray(t_sorted, dtype=np.int32)
        self.out_probs = np.ascontiguousarray(p_sorted, dtype=np.float64)

        order_in = np.lexsort((sources, targets))
        self.in_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(targets[order_in], minlength=n), out=self.in_offsets[1:])
        self.in_sources = np.ascontiguousarray(sources[order_in], dtype=np.int32)
        self.in_probs = np.ascontiguousarray(probs[order_in], dtype=np.float64)

        self._in_prob_sums = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of directed edges."""
        return int(self.out_targets.shape[0])

    @property
    def weighted(self) -> bool:
        """Whether every edge carries a finite probability."""
        return bool(self.m == 0 or np.all(np.isfinite(self.out_probs)))

    def out_degree(self, u: int = None) -> np.ndarray:
        """Out-degree of *u*, or the full out-degree vector."""
        degrees = np.diff(self.out_offsets)
        return degrees if u is None else int(degrees[u])

    def in_degree(self, v: int = None) -> np.ndarray:
        """In-degree of *v*, or the full in-degree vector."""
        degrees = np.diff(self.in_offsets)
        return degrees if v is None else int(degrees[v])

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, probs)`` views of *u*'s out-edges."""
        lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
        return self.out_targets[lo:hi], self.out_probs[lo:hi]

    def in_neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, probs)`` views of *v*'s in-edges."""
        lo, hi = self.in_offsets[v], self.in_offsets[v + 1]
        return self.in_sources[lo:hi], self.in_probs[lo:hi]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(source, target, prob)`` triples."""
        for u in range(self.n):
            lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
            for idx in range(lo, hi):
                yield u, int(self.out_targets[idx]), float(self.out_probs[idx])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
        span = self.out_targets[lo:hi]
        pos = np.searchsorted(span, v)
        return bool(pos < span.shape[0] and span[pos] == v)

    def edge_probability(self, u: int, v: int) -> float:
        """Return ``p(u, v)``; raises :class:`GraphError` if absent."""
        lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
        span = self.out_targets[lo:hi]
        pos = np.searchsorted(span, v)
        if pos >= span.shape[0] or span[pos] != v:
            raise GraphError(f"edge <{u}, {v}> does not exist")
        return float(self.out_probs[lo + pos])

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def in_prob_sums(self) -> np.ndarray:
        """Per-node sum of incoming edge probabilities (cached).

        The LT model requires these sums to be at most 1; the reverse
        random walk uses them as its continuation probabilities.
        """
        if self._in_prob_sums is None:
            sums = np.zeros(self.n, dtype=np.float64)
            degrees = np.diff(self.in_offsets)
            nonempty = degrees > 0
            if self.m and np.any(nonempty):
                starts = self.in_offsets[:-1][nonempty]
                sums[nonempty] = np.add.reduceat(self.in_probs, starts)
            self._in_prob_sums = sums
        return self._in_prob_sums

    def validate_lt(self) -> None:
        """Check the LT-model constraint sum of in-probs <= 1 per node."""
        if not self.weighted:
            raise WeightError("graph has no edge probabilities assigned")
        sums = self.in_prob_sums()
        bad = np.flatnonzero(sums > 1.0 + 1e-9)
        if bad.size:
            raise WeightError(
                f"LT model requires per-node incoming probability sums <= 1; "
                f"violated at node {int(bad[0])} (sum={sums[bad[0]]:.6f})"
            )

    def reweighted(self, probs_by_edge) -> "DiGraph":
        """Return a copy of this graph with new edge probabilities.

        Parameters
        ----------
        probs_by_edge:
            Callable ``f(sources, targets) -> probs`` applied to the full
            edge arrays (in out-CSR order), or a plain array aligned with
            :meth:`edge_array`.
        """
        sources = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.out_offsets)
        )
        targets = self.out_targets.astype(np.int64)
        if callable(probs_by_edge):
            probs = np.asarray(probs_by_edge(sources, targets), dtype=np.float64)
        else:
            probs = np.asarray(probs_by_edge, dtype=np.float64)
        return DiGraph(
            self.n,
            sources,
            targets,
            probs,
            name=self.name,
            undirected_origin=self.undirected_origin,
        )

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, probs)`` in out-CSR order."""
        sources = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.out_offsets)
        )
        return sources, self.out_targets.astype(np.int64), self.out_probs.copy()

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "undirected-origin" if self.undirected_origin else "directed"
        return f"DiGraph(name={self.name!r}, n={self.n}, m={self.m}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.out_offsets, other.out_offsets)
            and np.array_equal(self.out_targets, other.out_targets)
            and np.allclose(self.out_probs, other.out_probs, equal_nan=True)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)
