"""Edge-probability assignment schemes.

The paper (Section 8.1) uses the *weighted cascade* (WC) convention for
both the IC and LT models: ``p(u, v) = 1 / in_degree(v)``.  This module
also provides the other conventions common in the influence-maximization
literature (constant, uniform-random, trivalency) so the library can
reproduce experiments from related work and support ablations.

All functions return a *new* :class:`~repro.graph.digraph.DiGraph`; the
input graph is never mutated (graphs are immutable by design).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import WeightError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

#: Probabilities used by the trivalency scheme of Chen et al. (2010).
TRIVALENCY_LEVELS = (0.1, 0.01, 0.001)


def assign_wc_weights(graph: DiGraph) -> DiGraph:
    """Weighted-cascade weights: ``p(u, v) = 1 / in_degree(v)``.

    This is the paper's default.  It makes each node's incoming
    probabilities sum to exactly 1, so the result is always a valid LT
    instance (``validate_lt`` passes).
    """
    in_degrees = graph.in_degree()

    def weigh(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return 1.0 / in_degrees[targets]

    return graph.reweighted(weigh)


def assign_constant_weights(graph: DiGraph, p: float = 0.1) -> DiGraph:
    """Assign the same probability *p* to every edge (IC experiments)."""
    check_probability(p, "edge probability")

    def weigh(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return np.full(sources.shape[0], p, dtype=np.float64)

    return graph.reweighted(weigh)


def assign_uniform_weights(
    graph: DiGraph, low: float = 0.0, high: float = 0.1, seed: SeedLike = None
) -> DiGraph:
    """Assign i.i.d. uniform probabilities from ``[low, high]``."""
    check_probability(low, "low")
    check_probability(high, "high")
    if low > high:
        raise WeightError(f"low ({low}) must not exceed high ({high})")
    rng = as_generator(seed)

    def weigh(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return rng.uniform(low, high, size=sources.shape[0])

    return graph.reweighted(weigh)


def assign_trivalency_weights(
    graph: DiGraph,
    levels: Sequence[float] = TRIVALENCY_LEVELS,
    seed: SeedLike = None,
) -> DiGraph:
    """Trivalency weights: each edge draws uniformly from *levels*."""
    levels = np.asarray(levels, dtype=np.float64)
    if levels.size == 0:
        raise WeightError("levels must be non-empty")
    for level in levels:
        check_probability(float(level), "trivalency level")
    rng = as_generator(seed)

    def weigh(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return rng.choice(levels, size=sources.shape[0])

    return graph.reweighted(weigh)
