"""k-core decomposition.

The core number of a node is the largest ``k`` such that the node
belongs to a subgraph in which every node has (total) degree at least
``k``.  Core numbers are a classic cheap proxy for influence — nodes
deep in the core tend to be better spreaders than raw high-degree
nodes on the periphery (Kitsak et al. 2010) — and back the
``k_core_seeds`` heuristic in :mod:`repro.baselines.heuristics`.

Implementation: the standard linear-time peeling algorithm (Batagelj &
Zaversnik) over the undirected view of the graph (in + out degree).
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph


def core_numbers(graph: DiGraph) -> np.ndarray:
    """Core number per node, using total (in + out) degree.

    Runs in ``O(n + m)`` via bucket peeling: repeatedly remove a node
    of minimum remaining degree; its core number is the largest
    minimum seen so far.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    degrees = (graph.in_degree() + graph.out_degree()).astype(np.int64)
    max_degree = int(degrees.max(initial=0))

    # Bucket sort nodes by degree.
    bin_starts = np.zeros(max_degree + 2, dtype=np.int64)
    np.cumsum(np.bincount(degrees, minlength=max_degree + 1), out=bin_starts[1:])
    position = np.zeros(n, dtype=np.int64)
    ordered = np.zeros(n, dtype=np.int64)
    cursor = bin_starts[:-1].copy()
    for v in range(n):
        position[v] = cursor[degrees[v]]
        ordered[position[v]] = v
        cursor[degrees[v]] += 1

    core = degrees.copy()
    remaining = degrees.copy()
    bin_ptr = bin_starts[:-1].copy()

    # Undirected neighbor lists = out-neighbors plus in-neighbors.
    def neighbors(v: int) -> np.ndarray:
        return np.concatenate(
            [graph.out_neighbors(v)[0], graph.in_neighbors(v)[0]]
        )

    for i in range(n):
        v = int(ordered[i])
        core[v] = remaining[v]
        for w in neighbors(v):
            w = int(w)
            if remaining[w] > remaining[v]:
                # Move w one bucket down: swap it with the first node
                # of its current bucket, then shrink the bucket.
                d = remaining[w]
                first_pos = bin_ptr[d]
                first_node = int(ordered[first_pos])
                if first_node != w:
                    ordered[position[w]], ordered[first_pos] = first_node, w
                    position[first_node], position[w] = position[w], first_pos
                bin_ptr[d] += 1
                remaining[w] -= 1
    return core


def k_core_nodes(graph: DiGraph, k: int) -> np.ndarray:
    """Nodes whose core number is at least *k*."""
    return np.flatnonzero(core_numbers(graph) >= k)


def degeneracy(graph: DiGraph) -> int:
    """The graph's degeneracy (maximum core number)."""
    cores = core_numbers(graph)
    return int(cores.max(initial=0))
