"""Plain-text edge-list IO in the SNAP style used by the paper's datasets.

Format: one edge per line, whitespace separated, ``u v`` or ``u v p``.
Lines starting with ``#`` are comments (SNAP headers).  Gzip-compressed
files are handled transparently based on the ``.gz`` suffix.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


_HEADER_N = re.compile(r"\bn=(\d+)\b")


def read_edge_list(
    path: PathLike, undirected: bool = False, name: str = None, n: int = None
) -> DiGraph:
    """Read a SNAP-style edge list into a :class:`DiGraph`.

    Parameters
    ----------
    path:
        Text file (optionally ``.gz``) with ``u v`` or ``u v p`` rows.
    undirected:
        Materialize each edge in both directions (Orkut-style input).
    name:
        Graph name; defaults to the file stem.
    n:
        Node count.  When omitted, an ``n=<count>`` token in a header
        comment (as written by :func:`write_edge_list`) is honored, and
        otherwise ``max node id + 1`` is inferred — which silently
        drops trailing isolated nodes, hence the header convention.
    """
    path = Path(path)
    sources, targets, probs = [], [], []
    weighted = None
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                if n is None:
                    match = _HEADER_N.search(line)
                    if match:
                        n = int(match.group(1))
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v' or 'u v p', got {line!r}"
                )
            row_weighted = len(parts) == 3
            if weighted is None:
                weighted = row_weighted
            elif weighted != row_weighted:
                raise GraphFormatError(
                    f"{path}:{lineno}: mixed weighted/unweighted rows"
                )
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
                if row_weighted:
                    probs.append(float(parts[2]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc

    return from_edge_array(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        np.asarray(probs, dtype=np.float64) if weighted else None,
        n=n,
        name=name or path.stem,
        undirected=undirected,
    )


def write_edge_list(graph: DiGraph, path: PathLike, header: bool = True) -> None:
    """Write *graph* as a SNAP-style edge list (probabilities included
    when the graph is weighted)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"# {graph.name}: n={graph.n} m={graph.m}\n")
        if graph.weighted:
            for u, v, p in graph.edges():
                handle.write(f"{u} {v} {p:.10g}\n")
        else:
            for u, v, _p in graph.edges():
                handle.write(f"{u} {v}\n")
