"""Interoperability with networkx.

Most graph datasets in the wild arrive as ``networkx`` objects; these
converters move between them and the CSR :class:`DiGraph` this library
computes on.  Node labels need not be integers — an explicit ordering
maps arbitrary hashables onto ``0..n-1`` and back.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.build import from_edge_array
from repro.graph.digraph import DiGraph


def from_networkx(
    nx_graph,
    weight_attribute: Optional[str] = "probability",
    name: Optional[str] = None,
) -> Tuple[DiGraph, List[Hashable]]:
    """Convert a networkx (Di)Graph into a :class:`DiGraph`.

    Parameters
    ----------
    nx_graph:
        ``networkx.Graph`` or ``networkx.DiGraph`` (multigraphs are
        rejected: parallel edges have no IC/LT meaning).  Undirected
        graphs are symmetrized.
    weight_attribute:
        Edge attribute carrying the propagation probability.  When
        ``None``, or when *no* edge has the attribute, the result is
        unweighted (attach a scheme from :mod:`repro.graph.weights`).
        A mix of present/absent attributes is an error.

    Returns
    -------
    (graph, ordering):
        The converted graph and the node ordering: ``ordering[i]`` is
        the original label of node ``i``.
    """
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported (parallel edges)")

    ordering = list(nx_graph.nodes())
    index = {label: i for i, label in enumerate(ordering)}

    sources, targets, probs = [], [], []
    have_weights = None
    for u, v, data in nx_graph.edges(data=True):
        sources.append(index[u])
        targets.append(index[v])
        if weight_attribute is not None and weight_attribute in data:
            if have_weights is False:
                raise GraphError(
                    f"edge <{u}, {v}> has {weight_attribute!r} but earlier "
                    "edges do not; weights must be all-or-none"
                )
            have_weights = True
            probs.append(float(data[weight_attribute]))
        else:
            if have_weights is True:
                raise GraphError(
                    f"edge <{u}, {v}> lacks {weight_attribute!r}; weights "
                    "must be all-or-none"
                )
            have_weights = False

    graph = from_edge_array(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        np.asarray(probs, dtype=np.float64) if have_weights else None,
        n=len(ordering),
        name=name or getattr(nx_graph, "name", "") or "networkx-import",
        undirected=not nx_graph.is_directed(),
    )
    return graph, ordering


def to_networkx(
    graph: DiGraph,
    weight_attribute: str = "probability",
    labels: Optional[List[Hashable]] = None,
):
    """Convert a :class:`DiGraph` into a ``networkx.DiGraph``.

    Parameters
    ----------
    weight_attribute:
        Attribute name for edge probabilities (omitted when the graph
        is unweighted).
    labels:
        Optional relabeling, ``labels[i]`` being node ``i``'s name —
        pass the ordering returned by :func:`from_networkx` to round-trip.
    """
    import networkx as nx

    if labels is not None and len(labels) != graph.n:
        raise GraphError(
            f"labels must have length n={graph.n}, got {len(labels)}"
        )

    def name(v: int):
        return labels[v] if labels is not None else v

    result = nx.DiGraph(name=graph.name)
    result.add_nodes_from(name(v) for v in range(graph.n))
    if graph.weighted:
        result.add_edges_from(
            (name(u), name(v), {weight_attribute: p}) for u, v, p in graph.edges()
        )
    else:
        result.add_edges_from((name(u), name(v)) for u, v, _p in graph.edges())
    return result
