"""Convenience constructors for :class:`~repro.graph.digraph.DiGraph`."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

EdgeTuple = Union[Tuple[int, int], Tuple[int, int, float]]


def from_edge_list(
    edges: Iterable[EdgeTuple],
    n: Optional[int] = None,
    name: str = "graph",
    undirected: bool = False,
) -> DiGraph:
    """Build a graph from an iterable of ``(u, v)`` or ``(u, v, p)`` tuples.

    Parameters
    ----------
    edges:
        Edge tuples.  Mixing weighted and unweighted tuples is an error.
    n:
        Number of nodes; inferred as ``max node id + 1`` when omitted.
    undirected:
        If true, each input edge ``(u, v)`` is materialized in both
        directions.  Probabilities, when present, are copied to both.
    """
    rows = list(edges)
    if not rows:
        return DiGraph(n or 0, np.empty(0, np.int64), np.empty(0, np.int64), name=name)

    widths = {len(row) for row in rows}
    if widths == {2}:
        weighted = False
    elif widths == {3}:
        weighted = True
    else:
        raise GraphError("edges must be uniformly (u, v) or (u, v, p) tuples")

    sources = np.fromiter((row[0] for row in rows), dtype=np.int64, count=len(rows))
    targets = np.fromiter((row[1] for row in rows), dtype=np.int64, count=len(rows))
    probs = None
    if weighted:
        probs = np.fromiter((row[2] for row in rows), dtype=np.float64, count=len(rows))

    return from_edge_array(
        sources, targets, probs, n=n, name=name, undirected=undirected
    )


def from_edge_array(
    sources: Sequence[int],
    targets: Sequence[int],
    probs: Optional[Sequence[float]] = None,
    n: Optional[int] = None,
    name: str = "graph",
    undirected: bool = False,
) -> DiGraph:
    """Build a graph from parallel source/target (and optional prob) arrays."""
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if probs is not None:
        probs = np.asarray(probs, dtype=np.float64)

    if n is None:
        n = int(max(sources.max(initial=-1), targets.max(initial=-1)) + 1)

    if undirected:
        sources, targets = (
            np.concatenate([sources, targets]),
            np.concatenate([targets, sources]),
        )
        if probs is not None:
            probs = np.concatenate([probs, probs])

    return DiGraph(n, sources, targets, probs, name=name, undirected_origin=undirected)
