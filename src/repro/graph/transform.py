"""Structural graph transformations: induced subgraphs and reversal.

Used for experiment slicing (e.g. restricting to a giant component)
and for testing dualities (an RR set on ``G`` rooted at ``v`` has the
same distribution as a forward cascade from ``v`` on the reverse
graph).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph


def induced_subgraph(
    graph: DiGraph, nodes: Sequence[int]
) -> Tuple[DiGraph, np.ndarray]:
    """The subgraph induced by *nodes*, with labels compacted to
    ``0..len(nodes)-1``.

    Returns ``(subgraph, kept)`` where ``kept[i]`` is the original id
    of new node ``i`` (sorted ascending).  Edge probabilities carry
    over unchanged; note that weighted-cascade weights are generally
    *not* WC weights of the subgraph (in-degrees shrink) — reapply a
    scheme if that invariant matters.
    """
    kept = np.unique(np.asarray(list(nodes), dtype=np.int64))
    if kept.size == 0:
        raise ParameterError("nodes must be non-empty")
    if kept.min() < 0 or kept.max() >= graph.n:
        raise ParameterError("nodes out of range")
    new_id = np.full(graph.n, -1, dtype=np.int64)
    new_id[kept] = np.arange(kept.size)

    sources, targets, probs = graph.edge_array()
    keep_edge = (new_id[sources] >= 0) & (new_id[targets] >= 0)
    sub = DiGraph(
        kept.size,
        new_id[sources[keep_edge]],
        new_id[targets[keep_edge]],
        probs[keep_edge] if graph.weighted else None,
        name=f"{graph.name}-sub",
        undirected_origin=graph.undirected_origin,
    )
    return sub, kept


def reverse_graph(graph: DiGraph) -> DiGraph:
    """The graph with every edge direction flipped (weights kept).

    The reverse graph satisfies ``in_degree_rev = out_degree`` and
    makes RR-set sampling on ``G`` equivalent to forward sampling on
    ``reverse(G)`` — the duality tests in ``tests/test_transform.py``
    exercise exactly that.
    """
    sources, targets, probs = graph.edge_array()
    return DiGraph(
        graph.n,
        targets,
        sources,
        probs if graph.weighted else None,
        name=f"{graph.name}-rev",
        undirected_origin=graph.undirected_origin,
    )
