"""Connectivity analysis: weakly and strongly connected components.

Dataset validation uses these to check the synthetic stand-ins are
dominated by a giant component like their SNAP originals — an input
property that matters for influence spread (a fragmented graph caps
every seed set's reach at its component size).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.digraph import DiGraph


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label nodes by weakly-connected component (0-based, by discovery).

    Returns an int array ``label[v]``; labels are contiguous from 0.
    """
    n = graph.n
    labels = np.full(n, -1, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = current
        queue[0] = start
        head, tail = 0, 1
        while head < tail:
            u = int(queue[head])
            head += 1
            for neighbors in (graph.out_neighbors(u)[0], graph.in_neighbors(u)[0]):
                fresh = neighbors[labels[neighbors] == -1]
                if fresh.size:
                    labels[fresh] = current
                    queue[tail : tail + fresh.size] = fresh
                    tail += fresh.size
        current += 1
    return labels


def strongly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label nodes by strongly-connected component (iterative Tarjan).

    Returns an int array ``label[v]``; labels are contiguous from 0 in
    reverse topological order of the condensation (Tarjan's order).
    """
    n = graph.n
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    stack: list = []
    next_index = 0
    next_label = 0

    out_offsets = graph.out_offsets
    out_targets = graph.out_targets

    for root in range(n):
        if index[root] != -1:
            continue
        # Each frame: (node, next out-edge position to examine).
        work = [(root, int(out_offsets[root]))]
        while work:
            v, edge_pos = work[-1]
            if index[v] == -1:
                index[v] = next_index
                lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            while edge_pos < out_offsets[v + 1]:
                w = int(out_targets[edge_pos])
                edge_pos += 1
                if index[w] == -1:
                    work[-1] = (v, edge_pos)
                    work.append((w, int(out_offsets[w])))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            # v finished.
            work.pop()
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    labels[w] = next_label
                    if w == v:
                        break
                next_label += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return labels


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of each component, indexed by label."""
    return np.bincount(labels)


def giant_component_fraction(graph: DiGraph, strong: bool = False) -> float:
    """Fraction of nodes in the largest (weak or strong) component."""
    if graph.n == 0:
        return 0.0
    labels = (
        strongly_connected_components(graph)
        if strong
        else weakly_connected_components(graph)
    )
    return float(component_sizes(labels).max() / graph.n)


def condensation_edges(graph: DiGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SCC labels plus the condensation DAG's (unique) edges.

    Returns ``(labels, sources, targets)`` where sources/targets are
    SCC labels with ``sources[i] != targets[i]``.
    """
    labels = strongly_connected_components(graph)
    sources, targets, _ = graph.edge_array()
    ls, lt = labels[sources], labels[targets]
    keep = ls != lt
    codes = np.unique(ls[keep] * np.int64(labels.max() + 1) + lt[keep])
    base = np.int64(labels.max() + 1)
    return labels, codes // base, codes % base
