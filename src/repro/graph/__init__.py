"""Directed-graph substrate: CSR storage, builders, IO, generators."""

from repro.graph.build import from_edge_array, from_edge_list
from repro.graph.components import (
    giant_component_fraction,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    planted_partition,
    power_law_graph,
    small_world,
    star_graph,
)
from repro.graph.interop import from_networkx, to_networkx
from repro.graph.kcore import core_numbers, degeneracy, k_core_nodes
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import GraphSummary, summarize
from repro.graph.transform import induced_subgraph, reverse_graph
from repro.graph.weights import (
    assign_constant_weights,
    assign_trivalency_weights,
    assign_uniform_weights,
    assign_wc_weights,
)

__all__ = [
    "DiGraph",
    "from_edge_array",
    "from_edge_list",
    "read_edge_list",
    "write_edge_list",
    "erdos_renyi",
    "power_law_graph",
    "small_world",
    "planted_partition",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "assign_wc_weights",
    "assign_constant_weights",
    "assign_uniform_weights",
    "assign_trivalency_weights",
    "GraphSummary",
    "summarize",
    "from_networkx",
    "to_networkx",
    "weakly_connected_components",
    "strongly_connected_components",
    "giant_component_fraction",
    "core_numbers",
    "k_core_nodes",
    "degeneracy",
    "induced_subgraph",
    "reverse_graph",
]
