"""Random-graph generators used as synthetic dataset stand-ins.

The paper evaluates on four SNAP graphs (Pokec, Orkut, LiveJournal,
Twitter).  Those graphs are unavailable offline, so the dataset registry
(:mod:`repro.datasets`) builds scaled-down stand-ins from the generators
in this module — primarily :func:`power_law_graph`, a directed Chung–Lu
model, because RR-set behaviour under weighted-cascade probabilities is
governed by the heavy-tailed degree distribution the SNAP graphs share.

Deterministic fixture graphs (:func:`star_graph`, :func:`cycle_graph`,
:func:`complete_graph`, :func:`two_cliques`) support exact-answer tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.build import from_edge_array
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator


def _dedupe(sources: np.ndarray, targets: np.ndarray, n: int):
    """Drop self-loops and duplicate directed edges."""
    keep = sources != targets
    sources, targets = sources[keep], targets[keep]
    codes = sources * np.int64(n) + targets
    _, unique_idx = np.unique(codes, return_index=True)
    return sources[unique_idx], targets[unique_idx]


def erdos_renyi(
    n: int, avg_degree: float, seed: SeedLike = None, name: str = "erdos-renyi"
) -> DiGraph:
    """Directed G(n, p) with expected out-degree *avg_degree*.

    Sampled by drawing ``Binomial(n(n-1), p)`` edges as random ordered
    pairs and de-duplicating, which is exact up to the (negligible for
    sparse graphs) duplicate correction.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if avg_degree <= 0 or avg_degree >= n:
        raise ParameterError(f"avg_degree must be in (0, n), got {avg_degree}")
    rng = as_generator(seed)
    p = avg_degree / (n - 1)
    m = rng.binomial(n * (n - 1), p)
    sources = rng.integers(0, n, size=m, dtype=np.int64)
    targets = rng.integers(0, n, size=m, dtype=np.int64)
    sources, targets = _dedupe(sources, targets, n)
    return from_edge_array(sources, targets, n=n, name=name)


def power_law_graph(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: SeedLike = None,
    name: str = "power-law",
    reciprocal: float = 0.0,
) -> DiGraph:
    """Directed Chung–Lu graph with power-law in/out degree weights.

    Each node *i* receives weight ``w_i = (i + i0)^(-1/(exponent-1))``
    (independently permuted for the in and out roles so in- and
    out-degrees are uncorrelated, as in real follower graphs).  Edges
    are sampled by drawing ``m`` endpoints from the two weight
    distributions and de-duplicating.

    Parameters
    ----------
    exponent:
        Power-law exponent of the degree distribution (2 < exponent < 3
        for social networks; SNAP graphs are around 2.1-2.5).
    reciprocal:
        Fraction of sampled edges that are also added in the reverse
        direction, mimicking the partial reciprocity of social links.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if avg_degree <= 0:
        raise ParameterError(f"avg_degree must be positive, got {avg_degree}")
    if exponent <= 1.0:
        raise ParameterError(f"exponent must be > 1, got {exponent}")
    if not 0.0 <= reciprocal <= 1.0:
        raise ParameterError(f"reciprocal must be in [0, 1], got {reciprocal}")
    rng = as_generator(seed)

    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights /= weights.sum()
    out_weights = rng.permutation(weights)
    in_weights = rng.permutation(weights)

    m_target = int(round(n * avg_degree))
    # Oversample to compensate for the duplicates/self-loops we drop.
    m_draw = int(m_target * 1.25) + 16
    sources = rng.choice(n, size=m_draw, p=out_weights)
    targets = rng.choice(n, size=m_draw, p=in_weights)
    if reciprocal > 0.0:
        flip = rng.random(m_draw) < reciprocal
        reverse_sources = targets[flip].copy()
        reverse_targets = sources[flip].copy()
        sources = np.concatenate([sources, reverse_sources])
        targets = np.concatenate([targets, reverse_targets])
    sources, targets = _dedupe(
        sources.astype(np.int64), targets.astype(np.int64), n
    )
    if sources.shape[0] > m_target:
        keep = rng.choice(sources.shape[0], size=m_target, replace=False)
        sources, targets = sources[keep], targets[keep]
    return from_edge_array(sources, targets, n=n, name=name)


def small_world(
    n: int,
    neighbors: int = 4,
    rewire: float = 0.1,
    seed: SeedLike = None,
    name: str = "small-world",
) -> DiGraph:
    """Directed Watts–Strogatz ring: each node points at its *neighbors*
    clockwise successors; each edge's target is rewired uniformly at
    random with probability *rewire*."""
    if n < 3:
        raise ParameterError(f"n must be >= 3, got {n}")
    if not 1 <= neighbors < n:
        raise ParameterError(f"neighbors must be in [1, n), got {neighbors}")
    if not 0.0 <= rewire <= 1.0:
        raise ParameterError(f"rewire must be in [0, 1], got {rewire}")
    rng = as_generator(seed)

    base = np.arange(n, dtype=np.int64)
    sources = np.repeat(base, neighbors)
    shifts = np.tile(np.arange(1, neighbors + 1, dtype=np.int64), n)
    targets = (sources + shifts) % n
    mask = rng.random(sources.shape[0]) < rewire
    targets[mask] = rng.integers(0, n, size=int(mask.sum()), dtype=np.int64)
    sources, targets = _dedupe(sources, targets, n)
    return from_edge_array(sources, targets, n=n, name=name)


def planted_partition(
    communities: int,
    size: int,
    p_in: float,
    p_out: float,
    seed: SeedLike = None,
    name: str = "planted-partition",
) -> DiGraph:
    """Directed planted-partition (stochastic block) model.

    ``communities * size`` nodes in equal blocks; each ordered pair
    within a block is an edge w.p. *p_in*, across blocks w.p. *p_out*.
    Sampled sparsely (binomial edge counts + uniform pair draws +
    de-duplication), so ``p_out`` may be tiny on large graphs.

    Community structure concentrates influence within blocks, which is
    the regime where seed diversification matters — used by examples
    and by tests that need ground-truth communities.
    """
    if communities < 1 or size < 2:
        raise ParameterError(
            f"need communities >= 1 and size >= 2, got {communities}, {size}"
        )
    if not 0.0 <= p_out <= p_in <= 1.0:
        raise ParameterError(
            f"require 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    rng = as_generator(seed)
    n = communities * size

    chunks_s, chunks_t = [], []
    # Within-block edges.
    pairs_in = size * (size - 1)
    for c in range(communities):
        count = rng.binomial(pairs_in, p_in) if p_in > 0 else 0
        if count:
            base = c * size
            chunks_s.append(base + rng.integers(0, size, size=int(count * 1.2) + 4))
            chunks_t.append(base + rng.integers(0, size, size=chunks_s[-1].size))
    # Cross-block edges.
    pairs_out = n * (n - 1) - communities * pairs_in
    count = rng.binomial(pairs_out, p_out) if p_out > 0 else 0
    if count:
        draw = int(count * 1.2) + 4
        s = rng.integers(0, n, size=draw)
        t = rng.integers(0, n, size=draw)
        cross = (s // size) != (t // size)
        chunks_s.append(s[cross])
        chunks_t.append(t[cross])

    if chunks_s:
        sources = np.concatenate(chunks_s).astype(np.int64)
        targets = np.concatenate(chunks_t).astype(np.int64)
        sources, targets = _dedupe(sources, targets, n)
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)
    return from_edge_array(sources, targets, n=n, name=name)


def complete_graph(n: int, name: str = "complete") -> DiGraph:
    """Complete directed graph on *n* nodes (all ordered pairs)."""
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    grid = np.arange(n, dtype=np.int64)
    sources = np.repeat(grid, n)
    targets = np.tile(grid, n)
    keep = sources != targets
    return from_edge_array(sources[keep], targets[keep], n=n, name=name)


def cycle_graph(n: int, name: str = "cycle") -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    sources = np.arange(n, dtype=np.int64)
    targets = (sources + 1) % n
    return from_edge_array(sources, targets, n=n, name=name)


def star_graph(n: int, name: str = "star") -> DiGraph:
    """Star with hub 0 pointing at every other node."""
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    targets = np.arange(1, n, dtype=np.int64)
    sources = np.zeros(n - 1, dtype=np.int64)
    return from_edge_array(sources, targets, n=n, name=name)


def two_cliques(
    clique_size: int, bridge: bool = True, name: str = "two-cliques"
) -> DiGraph:
    """Two complete directed cliques, optionally joined by one bridge edge.

    A standard fixture: with ``k = 2`` the optimal seed set contains one
    node from each clique, which exercises submodular diminishing
    returns in greedy selection tests.
    """
    if clique_size < 2:
        raise ParameterError(f"clique_size must be >= 2, got {clique_size}")
    n = 2 * clique_size
    sources, targets = [], []
    for offset in (0, clique_size):
        for u in range(clique_size):
            for v in range(clique_size):
                if u != v:
                    sources.append(offset + u)
                    targets.append(offset + v)
    if bridge:
        sources.append(0)
        targets.append(clique_size)
    return from_edge_array(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        n=n,
        name=name,
    )
