"""CELF — lazy greedy over Monte-Carlo spread (Kempe et al. 2003 greedy
with the Leskovec et al. 2007 lazy-evaluation optimization).

This is the classic simulation-based algorithm.  It is far too slow for
the paper's graphs (which is the point of RIS methods) but serves as a
near-ground-truth reference on small graphs for validating the RIS
algorithms' seed quality in tests and examples.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.core.results import IMResult
from repro.diffusion.base import get_model
from repro.diffusion.spread import monte_carlo_spread
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.validation import check_k


def celf_greedy(
    graph: DiGraph,
    model: str,
    k: int,
    num_samples: int = 1000,
    seed: SeedLike = None,
    candidates: Optional[List[int]] = None,
) -> IMResult:
    """Lazy greedy seed selection with Monte-Carlo marginal gains.

    Parameters
    ----------
    num_samples:
        Cascades per spread estimate.  Estimates are re-drawn for each
        marginal evaluation, making the lazy bound heuristic (standard
        practice for CELF).
    candidates:
        Restrict the candidate pool (defaults to all nodes), useful to
        keep runtime bounded on medium graphs.
    """
    check_k(k, graph.n)
    diffusion = get_model(model, graph)
    rng = as_generator(seed)

    timer = Timer()
    with timer:
        pool = list(range(graph.n)) if candidates is None else list(candidates)
        # Max-heap of (-gain, node, round_evaluated).
        heap = []
        base_rng = spawn_generators(rng, len(pool))
        for node, node_rng in zip(pool, base_rng):
            est = monte_carlo_spread(
                diffusion, [node], num_samples=num_samples, seed=node_rng
            )
            heapq.heappush(heap, (-est.mean, node, 0))

        seeds: List[int] = []
        current_spread = 0.0
        simulations = len(pool) * num_samples
        while len(seeds) < k and heap:
            neg_gain, node, evaluated_round = heapq.heappop(heap)
            if evaluated_round == len(seeds):
                # Gain is fresh for the current seed set: take it.
                seeds.append(node)
                current_spread += -neg_gain
            else:
                # Stale: re-evaluate the marginal gain lazily.
                est = monte_carlo_spread(
                    diffusion, seeds + [node], num_samples=num_samples, seed=rng
                )
                simulations += num_samples
                gain = est.mean - current_spread
                heapq.heappush(heap, (-gain, node, len(seeds)))

    return IMResult(
        algorithm="CELF",
        seeds=seeds,
        k=k,
        epsilon=float("nan"),
        delta=float("nan"),
        num_rr_sets=0,
        elapsed=timer.elapsed,
        iterations=k,
        extra={"simulations": simulations, "estimated_spread": current_spread},
    )
