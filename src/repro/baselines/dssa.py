"""D-SSA-Fix, implemented verbatim from the paper's Appendix C
(Algorithm 3), using the paper's own notation.

D-SSA-Fix splits one RR-set stream into two equal halves ``R1``
(greedy) and ``R2`` (estimation), doubling both each round, and stops
when the instance-derived error

    ``eps_i = (eps_a + eps_b + eps_a eps_b)(1 - 1/e - eps)
              + (1 - 1/e) eps_c``

drops to ``eps``.  Appendix C proves the derivation of ``eps_b`` /
``eps_c`` does not actually certify the concentration events it needs
(the ``eps_b < eps_hat`` regime), which is why D-SSA-Fix cannot be
turned into an OPIM algorithm; as a *conventional* IM baseline it still
terminates with valid output at ``theta_1 >= theta'_max`` (Lemma 6.1).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.results import IMResult
from repro.core.theta import log_binomial
from repro.exceptions import BudgetExceededError
from repro.graph.digraph import DiGraph
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def dssa_fix(
    graph: DiGraph,
    model: str,
    k: int,
    epsilon: float,
    delta: Optional[float] = None,
    seed: SeedLike = None,
    rr_budget: Optional[int] = None,
) -> IMResult:
    """Run D-SSA-Fix (Algorithm 3)."""
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    if delta is None:
        delta = 1.0 / n
    check_delta(delta)

    timer = Timer()
    with timer:
        one_minus_inv_e = 1.0 - 1.0 / math.e
        log_nk = log_binomial(n, k)

        # Line 1: theta'_max.
        theta_prime_max = (
            8.0
            * one_minus_inv_e
            * (math.log(6.0 / delta) + log_nk)
            * n
            / (epsilon * epsilon * k)
        )
        # Line 2: i'_max.
        i_prime_max = max(
            1,
            math.ceil(
                math.log2(
                    2.0
                    * theta_prime_max
                    * epsilon
                    * epsilon
                    / ((2.0 + 2.0 * epsilon / 3.0) * math.log(3.0 / delta))
                )
            ),
        )
        # Line 3: theta'_0 and the precondition threshold Lambda_1.
        theta_prime_0 = (
            (2.0 + 2.0 * epsilon / 3.0)
            * math.log(3.0 * i_prime_max / delta)
            / (epsilon * epsilon)
        )
        lambda_1_threshold = 1.0 + (1.0 + epsilon) * theta_prime_0

        sampler = RRSampler(graph, model, seed=seed)
        # One shared stream split positionally, exactly as lines 5-6:
        # R1 = first half of the 2^i * theta'_0 sets, R2 = second half.
        r1 = sampler.new_collection()
        r2 = sampler.new_collection()

        base = max(1, math.ceil(theta_prime_0))
        greedy_result = None
        epsilon_i = float("inf")
        i = 0
        while True:
            i += 1
            half = base * (2 ** (i - 1))
            grow = half - len(r1)
            if rr_budget is not None and sampler.sets_generated + 2 * grow > rr_budget:
                raise BudgetExceededError(
                    f"D-SSA-Fix would exceed the RR budget of {rr_budget}",
                    num_rr_sets=sampler.sets_generated,
                )
            sampler.fill(r1, grow)
            sampler.fill(r2, grow)

            greedy_result = greedy_max_coverage(r1, k)  # line 7
            if greedy_result.coverage >= lambda_1_threshold:  # line 8
                sigma_1 = greedy_result.coverage * n / len(r1)  # line 10
                coverage_2 = r2.coverage(greedy_result.seeds)
                sigma_2 = coverage_2 * n / len(r2)
                if sigma_2 > 0.0:
                    eps_a = sigma_1 / sigma_2 - 1.0  # line 11
                    eps_b = epsilon * math.sqrt(  # line 12
                        n * (1.0 + epsilon) / (2.0 ** (i - 1) * sigma_2)
                    )
                    eps_c = epsilon * math.sqrt(  # line 13
                        n
                        * (1.0 + epsilon)
                        * (one_minus_inv_e - epsilon)
                        / ((1.0 + epsilon / 3.0) * 2.0 ** (i - 1) * sigma_2)
                        if one_minus_inv_e > epsilon
                        else 0.0
                    )
                    epsilon_i = (eps_a + eps_b + eps_a * eps_b) * (  # line 14
                        one_minus_inv_e - epsilon
                    ) + one_minus_inv_e * eps_c
                    if epsilon_i <= epsilon:  # lines 15-16
                        break
            if len(r1) >= theta_prime_max:  # line 17
                break

    return IMResult(
        algorithm="D-SSA-Fix",
        seeds=list(greedy_result.seeds),
        k=k,
        epsilon=epsilon,
        delta=delta,
        num_rr_sets=sampler.sets_generated,
        elapsed=timer.elapsed,
        iterations=i,
        edges_examined=sampler.edges_examined,
        extra={
            "epsilon_i": epsilon_i,
            "theta_prime_max": theta_prime_max,
            "i_prime_max": i_prime_max,
        },
    )
