"""State-of-the-art RIS baselines the paper compares against, plus the
classic Monte-Carlo greedy used as ground truth on tiny graphs."""

from repro.baselines.celf import celf_greedy
from repro.baselines.celfpp import celf_plus_plus
from repro.baselines.dssa import dssa_fix
from repro.baselines.heuristics import (
    degree_discount_ic,
    k_core_seeds,
    max_degree,
    random_seeds,
    single_discount,
)
from repro.baselines.imm import imm
from repro.baselines.irie import irie
from repro.baselines.ssa import ssa_fix
from repro.baselines.tim import tim_plus

__all__ = [
    "imm",
    "tim_plus",
    "ssa_fix",
    "dssa_fix",
    "celf_greedy",
    "celf_plus_plus",
    "irie",
    "random_seeds",
    "max_degree",
    "single_discount",
    "degree_discount_ic",
    "k_core_seeds",
]
