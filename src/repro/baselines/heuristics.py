"""Classic degree-based seed-selection heuristics.

The paper's related work (Section 7) surveys a long line of heuristics
that trade worst-case guarantees for speed [4-9, 11, 12, ...]; the
benchmarking study of Arora et al. (SIGMOD 2017, the paper's [1]) uses
exactly these as reference points.  They are included here for the
same purpose: cheap, guarantee-free baselines against which the
RIS algorithms' seed quality can be sanity-checked.

* :func:`random_seeds` — uniform random nodes (the floor).
* :func:`max_degree` — the k nodes of largest out-degree.
* :func:`single_discount` — max degree with a 1-per-selected-neighbor
  discount (Chen et al. 2009).
* :func:`degree_discount_ic` — Chen et al.'s DegreeDiscountIC for the
  uniform-probability IC model.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.core.results import IMResult
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timer import Timer
from repro.utils.validation import check_k, check_probability


def _result(algorithm: str, seeds: List[int], k: int, timer: Timer) -> IMResult:
    return IMResult(
        algorithm=algorithm,
        seeds=seeds,
        k=k,
        epsilon=float("nan"),
        delta=float("nan"),
        num_rr_sets=0,
        elapsed=timer.elapsed,
    )


def random_seeds(graph: DiGraph, k: int, seed: SeedLike = None) -> IMResult:
    """k nodes drawn uniformly without replacement."""
    check_k(k, graph.n)
    timer = Timer()
    with timer:
        rng = as_generator(seed)
        seeds = [int(v) for v in rng.choice(graph.n, size=k, replace=False)]
    return _result("Random", seeds, k, timer)


def max_degree(graph: DiGraph, k: int) -> IMResult:
    """The k nodes with the largest out-degree (ties by node id)."""
    check_k(k, graph.n)
    timer = Timer()
    with timer:
        degrees = graph.out_degree()
        order = np.lexsort((np.arange(graph.n), -degrees))
        seeds = [int(v) for v in order[:k]]
    return _result("MaxDegree", seeds, k, timer)


def single_discount(graph: DiGraph, k: int) -> IMResult:
    """SingleDiscount (Chen et al. 2009): iteratively take the highest
    degree node, discounting each remaining node's degree by one per
    already-selected in-neighbor."""
    check_k(k, graph.n)
    timer = Timer()
    with timer:
        degrees = graph.out_degree().astype(np.int64).copy()
        selected = np.zeros(graph.n, dtype=bool)
        heap = [(-int(d), v) for v, d in enumerate(degrees)]
        heapq.heapify(heap)
        seeds: List[int] = []
        while len(seeds) < k and heap:
            neg_d, v = heapq.heappop(heap)
            if selected[v]:
                continue
            if -neg_d != degrees[v]:
                heapq.heappush(heap, (-int(degrees[v]), v))
                continue
            selected[v] = True
            seeds.append(int(v))
            targets, _ = graph.out_neighbors(v)
            for w in targets:
                if not selected[w]:
                    degrees[w] -= 1
                    heapq.heappush(heap, (-int(degrees[w]), int(w)))
    return _result("SingleDiscount", seeds, k, timer)


def k_core_seeds(graph: DiGraph, k: int) -> IMResult:
    """Pick the k nodes of largest core number (Kitsak et al. 2010).

    Core depth is a better spreader proxy than raw degree on graphs
    with peripheral hubs; ties break toward higher out-degree, then
    smaller node id.
    """
    check_k(k, graph.n)
    timer = Timer()
    with timer:
        from repro.graph.kcore import core_numbers

        cores = core_numbers(graph)
        out_degrees = graph.out_degree()
        order = np.lexsort((np.arange(graph.n), -out_degrees, -cores))
        seeds = [int(v) for v in order[:k]]
    return _result("KCore", seeds, k, timer)


def degree_discount_ic(graph: DiGraph, k: int, p: float = 0.01) -> IMResult:
    """DegreeDiscountIC (Chen et al. 2009) for uniform-probability IC.

    The discounted degree of a node ``v`` with degree ``d_v`` and
    ``t_v`` already-selected in-neighbors is

        ``dd_v = d_v - 2 t_v - (d_v - t_v) t_v p``.
    """
    check_k(k, graph.n)
    check_probability(p, "p")
    timer = Timer()
    with timer:
        base_degrees = graph.out_degree().astype(np.float64)
        t = np.zeros(graph.n, dtype=np.int64)
        dd = base_degrees.copy()
        selected = np.zeros(graph.n, dtype=bool)
        heap = [(-dd[v], v) for v in range(graph.n)]
        heapq.heapify(heap)
        seeds: List[int] = []
        while len(seeds) < k and heap:
            neg, v = heapq.heappop(heap)
            if selected[v]:
                continue
            if -neg != dd[v]:
                heapq.heappush(heap, (-dd[v], v))
                continue
            selected[v] = True
            seeds.append(int(v))
            targets, _ = graph.out_neighbors(v)
            for w in targets:
                w = int(w)
                if selected[w]:
                    continue
                t[w] += 1
                dd[w] = (
                    base_degrees[w]
                    - 2.0 * t[w]
                    - (base_degrees[w] - t[w]) * t[w] * p
                )
                heapq.heappush(heap, (-dd[w], w))
    return _result("DegreeDiscountIC", seeds, k, timer)
