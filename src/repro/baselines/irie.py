"""IRIE — Influence Ranking + Influence Estimation (Jung et al. 2012).

IRIE is one of the scalable heuristics surveyed in the paper's related
work ([19]).  It ranks nodes by the fixed point of the linear system

    ``r(u) = (1 - AP_S(u)) * (1 + alpha * sum_v p(u, v) r(v))``

where ``alpha`` is a damping factor and ``AP_S(u)`` estimates the
probability that ``u`` is already activated by the current seed set
``S``; ``k`` rounds of rank-then-pick produce the seed set.

This implementation uses the common one-hop influence-estimation
shortcut for ``AP``: ``AP_S(u) = 1`` for seeds and
``1 - prod_{s in S} (1 - p(s, u))`` otherwise, i.e. only direct
seed-to-node edges contribute.  (The original IE component propagates
further; the one-hop variant keeps the heuristic's character — rank
damping around already-claimed regions — at a fraction of the code and
runtime, and is the variant most re-implementations ship.)
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.results import IMResult
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.utils.timer import Timer
from repro.utils.validation import check_k


def irie(
    graph: DiGraph,
    k: int,
    alpha: float = 0.7,
    iterations: int = 20,
) -> IMResult:
    """Select ``k`` seeds by iterated influence ranking.

    Parameters
    ----------
    alpha:
        Damping factor of the ranking recursion (0.7 per the paper).
    iterations:
        Fixed-point iterations per ranking pass (20 suffices for
        convergence on graphs with spectral radius < 1/alpha).
    """
    check_k(k, graph.n)
    if not 0.0 < alpha < 1.0:
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
    if iterations < 1:
        raise ParameterError(f"iterations must be >= 1, got {iterations}")
    if not graph.weighted:
        raise ParameterError("IRIE requires edge probabilities")

    timer = Timer()
    with timer:
        sources, targets, probs = graph.edge_array()
        n = graph.n
        ap = np.zeros(n, dtype=np.float64)  # activation probability by S
        seeds: List[int] = []

        for _ in range(k):
            # Rank iteration: r <- (1 - ap) * (1 + alpha * A_p r).
            rank = np.ones(n, dtype=np.float64)
            for _ in range(iterations):
                pushed = np.zeros(n, dtype=np.float64)
                np.add.at(pushed, sources, probs * rank[targets])
                rank = (1.0 - ap) * (1.0 + alpha * pushed)
            rank[seeds] = -np.inf
            pick = int(np.argmax(rank))
            seeds.append(pick)

            # One-hop AP update: the new seed claims itself and a
            # p(s, u) share of each out-neighbor.
            ap[pick] = 1.0
            out_targets, out_probs = graph.out_neighbors(pick)
            ap[out_targets] = 1.0 - (1.0 - ap[out_targets]) * (1.0 - out_probs)

    return IMResult(
        algorithm="IRIE",
        seeds=seeds,
        k=k,
        epsilon=float("nan"),
        delta=float("nan"),
        num_rr_sets=0,
        elapsed=timer.elapsed,
        iterations=k,
        extra={"alpha": alpha, "rank_iterations": iterations},
    )
