"""SSA-Fix — the repaired Stop-and-Stare algorithm.

SSA (Nguyen et al. 2016) alternates *stop* (run greedy over the RR sets
collected so far) and *stare* (validate the greedy seed set's spread on
an independent sample via a stopping-rule estimator); collections double
until validation succeeds.  Huang et al. (2017) showed the original
analysis was flawed and published SSA-Fix, which restores the
``(1 - 1/e - epsilon)`` guarantee.

This reproduction keeps SSA-Fix's architecture and Chernoff machinery
with the conservative error split ``eps_1 = eps_2 = eps_3 = eps / 3``
(documented in DESIGN.md):

* ``eps_1`` — slack between the greedy-side estimate and the validated
  estimate (the stop condition ``sigma_1 <= (1 + eps_1) sigma_2``);
* ``eps_2`` — error of the stopping-rule validation estimate;
* ``eps_3`` — error of the optimum's coverage on the greedy-side
  collection (union-bounded over C(n, k) seed sets, which sizes the
  precondition threshold ``Lambda_1``).

The stopping-rule estimator follows Dagum et al. (2000): sample until
the seed set covers ``Lambda_2 = 1 + 4(1 + eps_2)(e - 2)
ln(2/delta') / eps_2^2`` RR sets, then estimate
``sigma ~= n * Lambda_2 / theta_used``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.results import IMResult
from repro.core.theta import log_binomial, theta_max
from repro.exceptions import BudgetExceededError
from repro.graph.digraph import DiGraph
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def ssa_fix(
    graph: DiGraph,
    model: str,
    k: int,
    epsilon: float,
    delta: Optional[float] = None,
    seed: SeedLike = None,
    rr_budget: Optional[int] = None,
) -> IMResult:
    """Run SSA-Fix; returns a ``(1-1/e-epsilon)``-approximation w.p.
    ``1 - delta``."""
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    if delta is None:
        delta = 1.0 / n
    check_delta(delta)

    timer = Timer()
    with timer:
        eps1 = eps2 = eps3 = epsilon / 3.0

        # Worst-case sample cap (Lemma 6.1 with delta/3), bounding the
        # number of stop-and-stare rounds.
        t_cap = theta_max(n, k, epsilon, delta)
        # Precondition threshold: the greedy collection must be large
        # enough that a Chernoff + union bound over C(n, k) seed sets
        # controls the optimum's coverage estimate to within eps3.
        log_nk = log_binomial(n, k)
        lambda_1 = (
            (2.0 + 2.0 * eps3 / 3.0)
            * (log_nk + math.log(3.0 / delta))
            / (eps3 * eps3)
        )
        t_max_rounds = max(
            1, math.ceil(math.log2(max(2.0, t_cap / max(lambda_1, 1.0)))) + 1
        )
        delta_iter = delta / (3.0 * t_max_rounds)
        # Stopping-rule coverage target (Dagum et al. 2000).
        lambda_2 = 1.0 + 4.0 * (1.0 + eps2) * (math.e - 2.0) * math.log(
            2.0 / delta_iter
        ) / (eps2 * eps2)

        sampler = RRSampler(graph, model, seed=seed)
        r1 = sampler.new_collection()

        def budget_check(extra: int) -> None:
            if rr_budget is not None and sampler.sets_generated + extra > rr_budget:
                raise BudgetExceededError(
                    f"SSA-Fix would exceed the RR budget of {rr_budget}",
                    num_rr_sets=sampler.sets_generated,
                )

        size = max(1, math.ceil(lambda_1))
        greedy_result = None
        validated = False
        for round_index in range(1, t_max_rounds + 1):
            budget_check(size - len(r1))
            sampler.fill(r1, size - len(r1))
            greedy_result = greedy_max_coverage(r1, k)

            if greedy_result.coverage >= lambda_1:
                # Stare: stopping-rule estimate on an independent stream.
                r2 = sampler.new_collection()
                covered = 0
                seeds = set(greedy_result.seeds)
                cap = 4 * len(r1) + 1000
                while covered < lambda_2 and len(r2) < cap:
                    budget_check(1)
                    nodes = sampler.sample_one()
                    r2.append(nodes)
                    if not seeds.isdisjoint(nodes.tolist()):
                        covered += 1
                if covered >= lambda_2:
                    sigma_validated = n * covered / len(r2)
                    sigma_greedy = n * greedy_result.coverage / len(r1)
                    if sigma_greedy <= (1.0 + eps1) * sigma_validated:
                        validated = True
                        break
            if len(r1) >= t_cap:
                break
            size *= 2

        # Final round fallback: with |R1| >= theta_max the greedy seed
        # set is guaranteed by Lemma 6.1 regardless of validation.
        if not validated and len(r1) < t_cap:
            budget_check(math.ceil(t_cap) - len(r1))
            sampler.fill(r1, math.ceil(t_cap) - len(r1))
            greedy_result = greedy_max_coverage(r1, k)

    return IMResult(
        algorithm="SSA-Fix",
        seeds=list(greedy_result.seeds),
        k=k,
        epsilon=epsilon,
        delta=delta,
        num_rr_sets=sampler.sets_generated,
        elapsed=timer.elapsed,
        iterations=round_index,
        edges_examined=sampler.edges_examined,
        extra={
            "validated": validated,
            "lambda_1": lambda_1,
            "lambda_2": lambda_2,
        },
    )
