"""TIM+ — Two-phase Influence Maximization (Tang, Xiao, Shi 2014).

TIM predates IMM and is included as an additional baseline (the paper
cites it as [39] and uses its RR-set cost analysis).  Its two phases:

1. **KPT estimation.** Estimate ``KPT = E[width-based kappa] * n / 2``,
   a lower bound on the optimum ``OPT``, by measuring for sampled RR
   sets ``R`` the quantity ``kappa(R) = 1 - (1 - w(R)/m)^k`` where
   ``w(R)`` is the number of edges pointing into ``R``.  Rounds double
   precision until the mean estimate clears ``1 / 2^i``.
2. **Selection.** Generate ``theta = lambda / KPT`` RR sets with
   ``lambda = (8 + 2 eps) n (ell ln n + ln C(n,k) + ln 2) / eps^2`` and
   run greedy.

We implement the TIM+ *intermediate refinement* as an option
(``refine=True``): the phase-1 greedy seed set's spread is re-estimated
on fresh RR sets to tighten KPT before phase 2.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.results import IMResult
from repro.core.theta import log_binomial
from repro.exceptions import BudgetExceededError
from repro.graph.digraph import DiGraph
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def _rr_width(graph: DiGraph, nodes: np.ndarray) -> int:
    """``w(R)``: number of edges entering the RR set's nodes."""
    return int(graph.in_degree()[nodes].sum())


def tim_plus(
    graph: DiGraph,
    model: str,
    k: int,
    epsilon: float,
    delta: Optional[float] = None,
    seed: SeedLike = None,
    refine: bool = True,
    rr_budget: Optional[int] = None,
) -> IMResult:
    """Run TIM+; returns a ``(1-1/e-epsilon)``-approximation w.p. ``1-delta``."""
    n, m = graph.n, graph.m
    check_k(k, n)
    check_epsilon(epsilon)
    if delta is None:
        delta = 1.0 / n
    check_delta(delta)

    timer = Timer()
    with timer:
        ell = math.log(1.0 / delta) / math.log(n)
        log_nk = log_binomial(n, k)
        lambda_full = (
            (8.0 + 2.0 * epsilon)
            * n
            * (ell * math.log(n) + log_nk + math.log(2.0))
            / (epsilon * epsilon)
        )

        sampler = RRSampler(graph, model, seed=seed)

        def budget_check(extra: int) -> None:
            if rr_budget is not None and sampler.sets_generated + extra > rr_budget:
                raise BudgetExceededError(
                    f"TIM+ would exceed the RR budget of {rr_budget}",
                    num_rr_sets=sampler.sets_generated,
                )

        # Phase 1: KPT estimation (TIM paper, Algorithm 2).
        kpt = 1.0
        max_rounds = max(1, int(math.log2(n)) - 1)
        for i in range(1, max_rounds + 1):
            c_i = math.ceil(
                (6.0 * ell * math.log(n) + 6.0 * math.log(math.log2(n)))
                * (2.0**i)
            )
            budget_check(c_i)
            total_kappa = 0.0
            for _ in range(c_i):
                nodes = sampler.sample_one()
                width = _rr_width(graph, nodes)
                total_kappa += 1.0 - (1.0 - width / m) ** k if m else 0.0
            if total_kappa / c_i > 1.0 / (2.0**i):
                kpt = n * total_kappa / (2.0 * c_i)
                break

        # Optional TIM+ refinement: tighten KPT using a greedy seed set
        # evaluated on fresh samples (TIM paper, Section 4.3).
        if refine:
            eps_prime = 5.0 * (ell * epsilon * epsilon / (k + ell)) ** (1.0 / 3.0)
            eps_prime = min(max(eps_prime, 1e-3), 1.0)
            theta_prime = math.ceil(
                (2.0 + eps_prime)
                * ell
                * n
                * math.log(n)
                / (eps_prime * eps_prime * kpt)
            )
            theta_prime = min(theta_prime, math.ceil(lambda_full / kpt))
            budget_check(max(0, theta_prime))
            pilot = sampler.new_collection(theta_prime)
            pilot_greedy = greedy_max_coverage(pilot, k)
            budget_check(theta_prime)
            fresh = sampler.new_collection(theta_prime)
            spread_est = fresh.estimate_spread(pilot_greedy.seeds)
            kpt_star = spread_est / (1.0 + eps_prime)
            kpt = max(kpt, kpt_star)

        # Phase 2: selection.
        theta = math.ceil(lambda_full / kpt)
        budget_check(theta)
        collection = sampler.new_collection(theta)
        greedy_result = greedy_max_coverage(collection, k)

    return IMResult(
        algorithm="TIM+",
        seeds=list(greedy_result.seeds),
        k=k,
        epsilon=epsilon,
        delta=delta,
        num_rr_sets=sampler.sets_generated,
        elapsed=timer.elapsed,
        iterations=i,
        edges_examined=sampler.edges_examined,
        extra={"kpt": kpt, "theta": theta},
    )
