"""IMM — Influence Maximization via Martingales (Tang, Shi, Xiao 2015).

IMM is the strongest conventional baseline in the paper's experiments.
It runs in two phases over a *single* shared collection of RR sets
(whose reuse across phases is what the martingale analysis licenses):

1. **Sampling.** Estimate a lower bound ``LB`` on ``OPT = sigma(S^o)``
   by statistical testing: for ``x_i = n / 2^i``, generate
   ``theta_i = lambda' / x_i`` RR sets, run greedy, and accept
   ``LB = n * F(S) / (1 + eps')`` once the greedy coverage estimate
   beats ``(1 + eps') * x_i``, where ``eps' = sqrt(2) * eps``.
2. **Selection.** Grow the collection to ``theta = lambda* / LB`` RR
   sets and return the greedy seed set.

Failure probabilities follow the paper's ``delta = n^-ell``
parameterization; we convert a caller-supplied ``delta`` into ``ell``
and apply IMM's ``ell' = ell * (1 + log 2 / log n)`` inflation so the
two phases' union bound lands back at ``delta``.

Because the seed set is selected on the *same* samples that certify its
quality, IMM must union-bound over all C(n, k) seed sets — the factor
OPIM avoids with its nominator/judge split, and the reason OPIM-C needs
far fewer samples in practice (paper, Section 6 "Comparison with IMM").
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.results import IMResult
from repro.core.theta import log_binomial
from repro.exceptions import BudgetExceededError
from repro.graph.digraph import DiGraph
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def _ell_from_delta(delta: float, n: int) -> float:
    """Solve ``n^-ell = delta`` for IMM's ell parameter."""
    return math.log(1.0 / delta) / math.log(n)


def imm(
    graph: DiGraph,
    model: str,
    k: int,
    epsilon: float,
    delta: Optional[float] = None,
    seed: SeedLike = None,
    rr_budget: Optional[int] = None,
) -> IMResult:
    """Run IMM; returns a ``(1-1/e-epsilon)``-approximation w.p. ``1-delta``.

    Parameters
    ----------
    rr_budget:
        Optional cap on generated RR sets; raises
        :class:`BudgetExceededError` when the next growth step would
        cross it (used by the OPIM-adoption wrapper).
    """
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    if delta is None:
        delta = 1.0 / n
    check_delta(delta)

    timer = Timer()
    with timer:
        ell = _ell_from_delta(delta, n)
        # Phase union-bound inflation (IMM paper, Section 4.2).
        ell = ell * (1.0 + math.log(2.0) / math.log(n))

        eps_prime = math.sqrt(2.0) * epsilon
        log_nk = log_binomial(n, k)
        log_n = math.log(n)
        max_rounds = max(1, int(math.log2(n)) - 1)

        # lambda' for the LB-estimation phase (IMM paper, Eq. 9).
        lambda_prime = (
            (2.0 + 2.0 * eps_prime / 3.0)
            * (log_nk + ell * log_n + math.log(max(math.log2(n), 1.0)))
            * n
            / (eps_prime * eps_prime)
        )
        # lambda* for the selection phase (IMM paper, Eq. 6).
        alpha_term = math.sqrt(ell * log_n + math.log(2.0))
        beta_term = math.sqrt(
            (1.0 - 1.0 / math.e) * (log_nk + ell * log_n + math.log(2.0))
        )
        lambda_star = (
            2.0
            * n
            * ((1.0 - 1.0 / math.e) * alpha_term + beta_term) ** 2
            / (epsilon * epsilon)
        )

        sampler = RRSampler(graph, model, seed=seed)
        collection = sampler.new_collection()

        def grow_to(target: int) -> None:
            missing = target - len(collection)
            if missing <= 0:
                return
            if rr_budget is not None and sampler.sets_generated + missing > rr_budget:
                raise BudgetExceededError(
                    f"IMM would exceed the RR budget of {rr_budget}",
                    num_rr_sets=sampler.sets_generated,
                )
            sampler.fill(collection, missing)

        # Phase 1: estimate LB.
        lower_bound = 1.0
        greedy_result = None
        for i in range(1, max_rounds + 1):
            x_i = n / (2.0**i)
            theta_i = math.ceil(lambda_prime / x_i)
            grow_to(theta_i)
            greedy_result = greedy_max_coverage(collection, k)
            estimate = n * greedy_result.coverage / len(collection)
            if estimate >= (1.0 + eps_prime) * x_i:
                lower_bound = estimate / (1.0 + eps_prime)
                break

        # Phase 2: final selection.
        theta = math.ceil(lambda_star / lower_bound)
        grow_to(theta)
        greedy_result = greedy_max_coverage(collection, k)

    return IMResult(
        algorithm="IMM",
        seeds=list(greedy_result.seeds),
        k=k,
        epsilon=epsilon,
        delta=delta,
        num_rr_sets=sampler.sets_generated,
        elapsed=timer.elapsed,
        iterations=i,
        edges_examined=sampler.edges_examined,
        extra={
            "lower_bound": lower_bound,
            "theta": theta,
            "lambda_prime": lambda_prime,
            "lambda_star": lambda_star,
        },
    )
