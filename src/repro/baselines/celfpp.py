"""CELF++ — optimized lazy greedy (Goyal, Lu, Lakshmanan 2011).

The paper's related work [14].  CELF++ refines CELF by also tracking,
for each heap entry, the node's marginal gain *with respect to the
current best candidate* (``mg2``): when the previous round's best
candidate actually gets selected, the runner-up's cached ``mg2``
becomes a valid fresh gain and one spread evaluation is saved.  On
graphs where the top candidates are stable this removes 35-55% of the
evaluations (the original paper's headline).

As with CELF, Monte-Carlo gain estimates make the lazy bound heuristic
rather than exact; the implementation is a near-ground-truth reference
for small graphs, not a competitor to the RIS algorithms.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.core.results import IMResult
from repro.diffusion.base import get_model
from repro.diffusion.spread import monte_carlo_spread
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.validation import check_k


class _Entry:
    """Heap entry: node with cached gains.

    ``mg1``: marginal gain w.r.t. the current seed set at the time of
    evaluation (``flag`` records that time as |S|);
    ``mg2``: marginal gain w.r.t. seed set + ``prev_best``.
    """

    __slots__ = ("node", "mg1", "mg2", "prev_best", "flag")

    def __init__(self, node: int, mg1: float, mg2: float, prev_best: Optional[int]):
        self.node = node
        self.mg1 = mg1
        self.mg2 = mg2
        self.prev_best = prev_best
        self.flag = 0

    def __lt__(self, other: "_Entry") -> bool:  # max-heap via negation
        return self.mg1 > other.mg1


def celf_plus_plus(
    graph: DiGraph,
    model: str,
    k: int,
    num_samples: int = 1000,
    seed: SeedLike = None,
    candidates: Optional[List[int]] = None,
) -> IMResult:
    """CELF++ seed selection with Monte-Carlo gain estimates."""
    check_k(k, graph.n)
    diffusion = get_model(model, graph)
    rng = as_generator(seed)

    timer = Timer()
    with timer:
        pool = list(range(graph.n)) if candidates is None else list(candidates)
        evaluations = 0

        def estimate(seed_set: List[int]) -> float:
            nonlocal evaluations
            evaluations += 1
            return monte_carlo_spread(
                diffusion, seed_set, num_samples=num_samples, seed=rng
            ).mean

        # Initial pass: mg1 = sigma({v}); mg2 = sigma({v, cur_best}).
        init_rngs = spawn_generators(rng, len(pool))
        entries = []
        cur_best: Optional[int] = None
        cur_best_gain = -1.0
        for node, node_rng in zip(pool, init_rngs):
            mg1 = monte_carlo_spread(
                diffusion, [node], num_samples=num_samples, seed=node_rng
            ).mean
            evaluations += 1
            entries.append(_Entry(node, mg1, 0.0, None))
            if mg1 > cur_best_gain:
                cur_best_gain = mg1
                cur_best = node
        # Second-phase init of mg2 relative to the global best.
        for entry in entries:
            if entry.node == cur_best:
                entry.mg2 = entry.mg1
            else:
                entry.mg2 = estimate([entry.node, cur_best]) - cur_best_gain
            entry.prev_best = cur_best
        heap = entries[:]
        heapq.heapify(heap)

        seeds: List[int] = []
        current_spread = 0.0
        last_seed: Optional[int] = None
        cur_best = None
        cur_best_gain = -1.0
        saved = 0
        while len(seeds) < k and heap:
            entry = heap[0]
            if entry.flag == len(seeds):
                # Fresh: select it.
                heapq.heappop(heap)
                seeds.append(entry.node)
                current_spread += entry.mg1
                last_seed = entry.node
                cur_best = None
                cur_best_gain = -1.0
                continue
            if entry.prev_best == last_seed and entry.flag == len(seeds) - 1:
                # CELF++ shortcut: mg2 was computed w.r.t. S + last_seed,
                # which is exactly the current S.
                entry.mg1 = entry.mg2
                saved += 1
            else:
                entry.mg1 = estimate(seeds + [entry.node]) - current_spread
                if cur_best is not None:
                    entry.mg2 = (
                        estimate(seeds + [cur_best, entry.node])
                        - current_spread
                        - cur_best_gain
                    )
                else:
                    entry.mg2 = entry.mg1
            entry.prev_best = cur_best
            entry.flag = len(seeds)
            if entry.mg1 > cur_best_gain:
                cur_best_gain = entry.mg1
                cur_best = entry.node
            heapq.heapreplace(heap, entry)

    return IMResult(
        algorithm="CELF++",
        seeds=seeds,
        k=k,
        epsilon=float("nan"),
        delta=float("nan"),
        num_rr_sets=0,
        elapsed=timer.elapsed,
        iterations=k,
        extra={
            "evaluations": evaluations,
            "shortcut_hits": saved,
            "estimated_spread": current_spread,
        },
    )
