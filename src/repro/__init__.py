"""repro — a reproduction of "Online Processing Algorithms for Influence
Maximization" (Tang, Tang, Xiao, Yuan; SIGMOD 2018).

The package implements:

* the **OPIM** online algorithm (:class:`~repro.core.opim.OnlineOPIM`)
  with its three bound variants (OPIM0 / OPIM+ / OPIM'),
* **OPIM-C** (:func:`~repro.core.opimc.opim_c`) for conventional
  influence maximization,
* the baselines the paper compares against — Borgs et al.'s online
  algorithm, the OPIM-adoption wrapper, IMM, TIM+, SSA-Fix,
  D-SSA-Fix, and Monte-Carlo CELF,
* the full substrate: CSR graphs, IC/LT/triggering diffusion, RR-set
  sampling, greedy maximum coverage, and martingale bounds,
* an experiment harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import OnlineOPIM, load_dataset
>>> graph = load_dataset("pokec-sim", scale=0.1)
>>> algo = OnlineOPIM(graph, "IC", k=10, seed=42)
>>> algo.extend(2000)          # stream RR sets ...
>>> snapshot = algo.query()    # ... pause anytime
>>> snapshot.alpha > 0.2       # instance-specific guarantee
True
"""

from repro.baselines import (
    celf_greedy,
    degree_discount_ic,
    dssa_fix,
    imm,
    max_degree,
    random_seeds,
    single_discount,
    ssa_fix,
    tim_plus,
)
from repro.core import (
    OPIMC,
    BorgsOnline,
    IMResult,
    OnlineOPIM,
    OnlineSnapshot,
    OPIMAdoption,
    OPIMSession,
    load_opim,
    opim_c,
    save_opim,
)
from repro.datasets import load_dataset
from repro.diffusion import monte_carlo_spread
from repro.obs import NULL_REGISTRY, MetricsRegistry, TraceRecorder
from repro.graph import (
    DiGraph,
    assign_constant_weights,
    assign_trivalency_weights,
    assign_uniform_weights,
    assign_wc_weights,
    erdos_renyi,
    from_edge_list,
    power_law_graph,
    read_edge_list,
    small_world,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core algorithms
    "OnlineOPIM",
    "OPIMSession",
    "OnlineSnapshot",
    "OPIMC",
    "opim_c",
    "IMResult",
    "BorgsOnline",
    "OPIMAdoption",
    "save_opim",
    "load_opim",
    # baselines
    "imm",
    "tim_plus",
    "ssa_fix",
    "dssa_fix",
    "celf_greedy",
    "random_seeds",
    "max_degree",
    "single_discount",
    "degree_discount_ic",
    # graph substrate
    "DiGraph",
    "from_edge_list",
    "read_edge_list",
    "power_law_graph",
    "erdos_renyi",
    "small_world",
    "assign_wc_weights",
    "assign_constant_weights",
    "assign_uniform_weights",
    "assign_trivalency_weights",
    # evaluation
    "monte_carlo_spread",
    "load_dataset",
    # observability
    "MetricsRegistry",
    "TraceRecorder",
    "NULL_REGISTRY",
]
