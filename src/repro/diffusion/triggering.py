"""The triggering model (Kempe et al. 2003), generalizing IC and LT.

Under the triggering model each node ``v`` independently samples a
*triggering set* ``T(v)`` from a distribution over subsets of its
in-neighbors; ``v`` activates at step ``i + 1`` iff some node of
``T(v)`` is active at step ``i``.  Fixing all triggering sets yields a
*live-edge graph*: the edge ``<w, v>`` is live iff ``w in T(v)``, and
the cascade from ``S`` activates exactly the nodes reachable from ``S``
over live edges.

* IC is the triggering model where each in-edge of ``v`` enters
  ``T(v)`` independently with probability ``p(w, v)``.
* LT is the triggering model where ``T(v)`` contains at most one
  in-neighbor, ``w`` with probability ``p(w, v)`` (none with the
  residual probability).

This module implements the live-edge view, which tests use to verify
the dynamic simulators in :mod:`repro.diffusion.ic` / ``lt`` against an
independent formulation of the same processes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph

TriggeringSampler = Callable[[DiGraph, np.random.Generator], np.ndarray]


def ic_triggering_mask(graph: DiGraph, rng: np.random.Generator) -> np.ndarray:
    """Sample an IC live-edge mask over the in-CSR edge array."""
    return rng.random(graph.m) < graph.in_probs


def lt_triggering_mask(graph: DiGraph, rng: np.random.Generator) -> np.ndarray:
    """Sample an LT live-edge mask: at most one live in-edge per node.

    For node ``v`` with in-edges carrying probabilities ``p_1..p_d``,
    edge ``j`` is selected with probability ``p_j`` and no edge with
    probability ``1 - sum_j p_j`` (valid because the LT constraint
    bounds the sum by 1).  Implemented by drawing one uniform per node
    and locating it within the cumulative probability intervals.
    """
    graph.validate_lt()
    mask = np.zeros(graph.m, dtype=bool)
    offsets = graph.in_offsets
    probs = graph.in_probs
    draws = rng.random(graph.n)
    for v in range(graph.n):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        if hi == lo:
            continue
        cumulative = np.cumsum(probs[lo:hi])
        j = int(np.searchsorted(cumulative, draws[v], side="right"))
        if j < hi - lo:
            mask[lo + j] = True
    return mask


class TriggeringModel:
    """A triggering model defined by a live-edge mask sampler.

    >>> from repro.graph.generators import cycle_graph
    >>> from repro.graph.weights import assign_constant_weights
    >>> g = assign_constant_weights(cycle_graph(4), 1.0)
    >>> model = TriggeringModel(g, ic_triggering_mask)
    >>> sorted(int(v) for v in model.simulate([0], np.random.default_rng(0)))
    [0, 1, 2, 3]
    """

    def __init__(self, graph: DiGraph, mask_sampler: TriggeringSampler) -> None:
        if not graph.weighted:
            raise ParameterError("triggering model requires a weighted graph")
        self.graph = graph
        self.mask_sampler = mask_sampler

    def simulate(self, seeds, rng: np.random.Generator) -> np.ndarray:
        """Sample a live-edge graph, return nodes reachable from *seeds*."""
        mask = self.mask_sampler(self.graph, rng)
        return live_edge_spread(self.graph, seeds, mask)


def live_edge_spread(graph: DiGraph, seeds, live_in_mask: np.ndarray) -> np.ndarray:
    """Nodes reachable from *seeds* over live edges.

    *live_in_mask* is boolean over the **in-CSR** edge array (the layout
    both mask samplers produce).  Reachability is computed by a reverse
    check-free forward BFS: we precompute, for each live in-edge
    ``<w, v>``, the forward adjacency ``w -> v``.
    """
    live_in_mask = np.asarray(live_in_mask, dtype=bool)
    if live_in_mask.shape != (graph.m,):
        raise ParameterError("live mask must align with the in-CSR edge array")

    # Build forward adjacency of the live subgraph.
    live_targets = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.in_offsets)
    )[live_in_mask]
    live_sources = graph.in_sources[live_in_mask].astype(np.int64)
    order = np.argsort(live_sources, kind="stable")
    live_sources = live_sources[order]
    live_targets = live_targets[order]
    counts = np.bincount(live_sources, minlength=graph.n)
    offsets = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    active = np.zeros(graph.n, dtype=bool)
    queue = np.empty(graph.n, dtype=np.int64)
    tail = 0
    for s in seeds:
        s = int(s)
        if not active[s]:
            active[s] = True
            queue[tail] = s
            tail += 1
    head = 0
    while head < tail:
        u = int(queue[head])
        head += 1
        lo, hi = offsets[u], offsets[u + 1]
        for v in live_targets[lo:hi]:
            if not active[v]:
                active[v] = True
                queue[tail] = v
                tail += 1
    return queue[:tail].copy()
