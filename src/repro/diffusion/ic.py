"""Independent cascade (IC) model: forward simulation + RR sampling."""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import DiffusionModel, register_model
from repro.sampling.rrset_ic import Scratch, sample_rr_set_ic
from repro.utils.arrays import gather_slice_index


@register_model
class IndependentCascade(DiffusionModel):
    """The IC model of Kempe et al. (2003).

    When a node ``u`` first activates at step ``i``, it gets a single
    chance to activate each currently-inactive out-neighbor ``v`` at
    step ``i + 1``, succeeding independently with probability
    ``p(u, v)``.
    """

    name = "IC"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self._scratch = Scratch(graph.n)

    def simulate(self, seeds, rng: np.random.Generator) -> np.ndarray:
        """Run one forward cascade; returns activated node ids.

        The BFS is frontier-batched: each round gathers the out-edges
        of the whole frontier in one vectorized pass, so the Python
        loop runs once per cascade *level*, not per node.
        """
        graph = self.graph
        scratch = self._scratch
        stamp = scratch.next_stamp()
        visited = scratch.visited
        queue = scratch.queue

        frontier = np.unique(np.asarray(list(seeds), dtype=np.int64))
        if frontier.size == 0:
            return frontier
        visited[frontier] = stamp
        tail = frontier.size
        queue[:tail] = frontier

        out_offsets = graph.out_offsets
        out_targets = graph.out_targets
        out_probs = graph.out_probs

        while frontier.size:
            index, _ = gather_slice_index(out_offsets, frontier)
            if index.size == 0:
                break
            coins = rng.random(index.size)
            hit = out_targets[index][coins < out_probs[index]]
            if hit.size == 0:
                break
            # Duplicates within one level collapse to one activation.
            fresh = np.unique(hit[visited[hit] != stamp]).astype(np.int64)
            if fresh.size == 0:
                break
            visited[fresh] = stamp
            queue[tail : tail + fresh.size] = fresh
            tail += fresh.size
            frontier = fresh

        return queue[:tail].copy()

    def sample_rr_set(self, root: int, rng: np.random.Generator):
        return sample_rr_set_ic(self.graph, root, rng, self._scratch)
