"""Linear threshold (LT) model: forward simulation + RR sampling."""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import DiffusionModel, register_model
from repro.sampling.rrset_ic import Scratch
from repro.sampling.rrset_lt import LTAliasTables, sample_rr_set_lt
from repro.utils.arrays import gather_slice_index


@register_model
class LinearThreshold(DiffusionModel):
    """The LT model of Kempe et al. (2003).

    Each node ``v`` draws a threshold ``lambda_v ~ U[0, 1]``.  An
    inactive node activates once the summed probabilities of its
    *activated* in-neighbors reach the threshold.  The model requires
    each node's incoming probabilities to sum to at most 1, which is
    validated at construction time.
    """

    name = "LT"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        graph.validate_lt()
        self._scratch = Scratch(graph.n)
        self._tables = LTAliasTables(graph)
        self._acc = np.zeros(graph.n, dtype=np.float64)

    def simulate(self, seeds, rng: np.random.Generator) -> np.ndarray:
        """Run one forward cascade; returns activated node ids.

        Frontier-batched: each round adds the frontier's out-edge
        weights to the targets' accumulators in one ``np.add.at`` and
        activates every touched node whose accumulator crossed its
        threshold.  Because a node enters the frontier exactly once,
        each edge's weight is accumulated exactly once — the LT
        dynamics.  Thresholds are drawn up front per cascade.
        """
        graph = self.graph
        n = graph.n
        frontier = np.unique(np.asarray(list(seeds), dtype=np.int64))
        if frontier.size == 0:
            return frontier

        # Per-cascade state: activation flags and weight accumulators.
        active = np.zeros(n, dtype=bool)
        acc = self._acc
        acc[:] = 0.0
        # U[0,1); a zero threshold would self-activate, so nudge it up.
        thresholds = rng.random(n)
        np.maximum(thresholds, 1e-15, out=thresholds)

        active[frontier] = True
        activated = [frontier]

        out_offsets = graph.out_offsets
        out_targets = graph.out_targets
        out_probs = graph.out_probs

        while frontier.size:
            index, _ = gather_slice_index(out_offsets, frontier)
            if index.size == 0:
                break
            targets = out_targets[index].astype(np.int64)
            np.add.at(acc, targets, out_probs[index])
            touched = np.unique(targets)
            fresh = touched[
                ~active[touched] & (acc[touched] >= thresholds[touched])
            ]
            if fresh.size == 0:
                break
            active[fresh] = True
            activated.append(fresh)
            frontier = fresh

        return np.concatenate(activated)

    def sample_rr_set(self, root: int, rng: np.random.Generator):
        return sample_rr_set_lt(self.graph, root, rng, self._tables, self._scratch)
