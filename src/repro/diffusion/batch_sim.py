"""Batched forward simulation and low-variance seed-set comparison.

Two tools for the evaluation side (the paper estimates every reported
spread from 10,000 Monte-Carlo cascades):

* :func:`batched_monte_carlo_spread` — run many IC cascades in
  lock-step with numpy (one Python iteration per cascade *level* for a
  whole batch), typically 5-20x faster than the scalar simulator.
* :func:`compare_seed_sets` — evaluate several seed sets under
  *common random numbers*: every candidate is scored on the same
  sampled live-edge graphs, so spread *differences* have far lower
  variance than independent estimates (the right tool for Figure
  6(a)-style "are these algorithms' seeds equally good?" questions).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.diffusion.spread import SpreadEstimate
from repro.diffusion.triggering import (
    ic_triggering_mask,
    live_edge_spread,
    lt_triggering_mask,
)
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator


def batched_monte_carlo_spread(
    graph: DiGraph,
    seeds: Iterable[int],
    num_samples: int = 10_000,
    seed: SeedLike = None,
    batch_size: int = 128,
) -> SpreadEstimate:
    """IC spread estimate with batch-parallel cascades.

    Semantically identical to
    :func:`repro.diffusion.spread.monte_carlo_spread` with
    ``model="IC"`` (different random stream, same distribution).
    """
    if not graph.weighted:
        raise ParameterError("graph must be weighted")
    if num_samples < 1:
        raise ParameterError(f"num_samples must be >= 1, got {num_samples}")
    if batch_size < 1:
        raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
    seed_list = sorted({int(s) for s in seeds})
    if not seed_list:
        return SpreadEstimate(0.0, 0.0, num_samples)
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ParameterError(f"seed {s} out of range")

    rng = as_generator(seed)
    n = graph.n
    out_offsets = graph.out_offsets
    out_targets = graph.out_targets
    out_probs = graph.out_probs
    seed_array = np.asarray(seed_list, dtype=np.int64)

    sizes = np.empty(num_samples, dtype=np.float64)
    done = 0
    while done < num_samples:
        batch = min(batch_size, num_samples - done)
        active = np.zeros((batch, n), dtype=bool)
        sample_ids = np.repeat(np.arange(batch, dtype=np.int64), seed_array.size)
        nodes = np.tile(seed_array, batch)
        active[sample_ids, nodes] = True
        counts = np.full(batch, seed_array.size, dtype=np.int64)

        frontier_samples, frontier_nodes = sample_ids, nodes
        while frontier_nodes.size:
            starts = out_offsets[frontier_nodes]
            lengths = out_offsets[frontier_nodes + 1] - starts
            total = int(lengths.sum())
            if total == 0:
                break
            cum = np.cumsum(lengths)
            index = np.arange(total, dtype=np.int64) + np.repeat(
                starts - np.concatenate(([0], cum[:-1])), lengths
            )
            edge_samples = np.repeat(frontier_samples, lengths)
            hit = rng.random(total) < out_probs[index]
            if not hit.any():
                break
            hit_samples = edge_samples[hit]
            hit_nodes = out_targets[index][hit].astype(np.int64)
            fresh = ~active[hit_samples, hit_nodes]
            if not fresh.any():
                break
            codes = np.unique(
                hit_samples[fresh] * np.int64(n) + hit_nodes[fresh]
            )
            frontier_samples = codes // n
            frontier_nodes = codes % n
            active[frontier_samples, frontier_nodes] = True
            counts += np.bincount(frontier_samples, minlength=batch)

        sizes[done : done + batch] = counts
        done += batch

    mean = float(sizes.mean())
    std_error = (
        float(sizes.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else 0.0
    )
    return SpreadEstimate(mean=mean, std_error=std_error, num_samples=num_samples)


def compare_seed_sets(
    graph: DiGraph,
    seed_sets: Dict[str, Sequence[int]],
    model: str = "IC",
    num_samples: int = 1_000,
    seed: SeedLike = None,
) -> Dict[str, SpreadEstimate]:
    """Estimate spreads of several seed sets on *shared* live-edge
    samples (common random numbers).

    Each of the ``num_samples`` rounds draws one live-edge graph and
    scores every candidate's reachability on it, so per-round noise
    cancels in cross-candidate comparisons.
    """
    if not graph.weighted:
        raise ParameterError("graph must be weighted")
    if not seed_sets:
        raise ParameterError("seed_sets must be non-empty")
    if num_samples < 1:
        raise ParameterError(f"num_samples must be >= 1, got {num_samples}")
    model = model.upper()
    if model == "IC":
        mask_sampler = ic_triggering_mask
    elif model == "LT":
        mask_sampler = lt_triggering_mask
    else:
        raise ParameterError(f"model must be 'IC' or 'LT', got {model!r}")

    names = list(seed_sets)
    for name in names:
        for s in seed_sets[name]:
            if not 0 <= int(s) < graph.n:
                raise ParameterError(f"seed {s} in {name!r} out of range")

    rng = as_generator(seed)
    totals = {name: np.empty(num_samples, dtype=np.float64) for name in names}
    for i in range(num_samples):
        mask = mask_sampler(graph, rng)
        for name in names:
            reached = live_edge_spread(graph, seed_sets[name], mask)
            totals[name][i] = reached.size

    estimates = {}
    for name in names:
        values = totals[name]
        std_error = (
            float(values.std(ddof=1) / np.sqrt(num_samples))
            if num_samples > 1
            else 0.0
        )
        estimates[name] = SpreadEstimate(
            mean=float(values.mean()),
            std_error=std_error,
            num_samples=num_samples,
        )
    return estimates
