"""Common interface for diffusion models.

A diffusion model knows how to (i) simulate one forward cascade from a
seed set and (ii) sample one random reverse-reachable set rooted at a
node.  Both operations are driven by the samplers and simulators in
sibling modules; this module defines the protocol and a small registry
keyed by the names used throughout the paper ("IC", "LT").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

import numpy as np

from repro.exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.digraph import DiGraph


class DiffusionModel:
    """Abstract base for diffusion models bound to a weighted graph."""

    #: Registry name, e.g. ``"IC"``; subclasses set this.
    name: str = ""

    def __init__(self, graph: "DiGraph") -> None:
        from repro.graph.digraph import DiGraph  # local to avoid cycle

        if not isinstance(graph, DiGraph):
            raise TypeError(f"graph must be a DiGraph, got {type(graph)!r}")
        if not graph.weighted:
            raise ParameterError(
                "graph has no edge probabilities; apply a weighting scheme "
                "from repro.graph.weights first"
            )
        self.graph = graph

    # ------------------------------------------------------------------
    def simulate(self, seeds, rng: np.random.Generator) -> np.ndarray:
        """Run one forward cascade from *seeds*.

        Returns the array of activated node ids (including the seeds).
        """
        raise NotImplementedError

    def sample_rr_set(self, root: int, rng: np.random.Generator) -> tuple:
        """Sample one random RR set rooted at *root*.

        Returns ``(nodes, edges_examined)`` where ``nodes`` is an int
        array containing *root* and ``edges_examined`` is the traversal
        cost counter used by Borgs et al.'s online algorithm.
        """
        raise NotImplementedError


_REGISTRY: Dict[str, Type[DiffusionModel]] = {}


def register_model(cls: Type[DiffusionModel]) -> Type[DiffusionModel]:
    """Class decorator adding a model to the name registry."""
    if not cls.name:
        raise ValueError("diffusion model classes must define a name")
    _REGISTRY[cls.name.upper()] = cls
    return cls


def get_model(name: str, graph: "DiGraph") -> DiffusionModel:
    """Instantiate a registered model ("IC" or "LT") on *graph*."""
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ParameterError(f"unknown diffusion model {name!r}; known: {known}")
    return cls(graph)
