"""Influence diffusion models: IC, LT, and the triggering generalization."""

from repro.diffusion.base import DiffusionModel, get_model
from repro.diffusion.batch_sim import batched_monte_carlo_spread, compare_seed_sets
from repro.diffusion.ic import IndependentCascade
from repro.diffusion.lt import LinearThreshold
from repro.diffusion.spread import exact_spread_ic, monte_carlo_spread
from repro.diffusion.triggering import TriggeringModel, live_edge_spread

__all__ = [
    "DiffusionModel",
    "get_model",
    "IndependentCascade",
    "LinearThreshold",
    "TriggeringModel",
    "live_edge_spread",
    "monte_carlo_spread",
    "batched_monte_carlo_spread",
    "compare_seed_sets",
    "exact_spread_ic",
]
