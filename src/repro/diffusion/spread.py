"""Expected-spread estimation.

* :func:`monte_carlo_spread` — the paper's evaluation procedure
  (Section 8.1 uses 10,000 simulations per seed set).
* :func:`exact_spread_ic` — brute-force exact sigma(S) under IC by
  enumerating all live-edge graphs; only feasible for tiny graphs, used
  by tests to validate estimators against ground truth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.diffusion.base import DiffusionModel, get_model
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte-Carlo estimate of an expected spread."""

    mean: float
    std_error: float
    num_samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI ``mean ± z * std_error``."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)


def monte_carlo_spread(
    graph_or_model: Union[DiGraph, DiffusionModel],
    seeds: Iterable[int],
    model: str = None,
    num_samples: int = 10_000,
    seed: SeedLike = None,
) -> SpreadEstimate:
    """Estimate ``sigma(S)`` by averaging forward cascade sizes.

    Parameters
    ----------
    graph_or_model:
        Either a weighted :class:`DiGraph` (then *model* names the
        diffusion model) or an already-built :class:`DiffusionModel`.
    seeds:
        The seed set ``S``.
    num_samples:
        Number of independent cascades (paper default: 10,000).
    """
    if isinstance(graph_or_model, DiffusionModel):
        diffusion = graph_or_model
    else:
        if model is None:
            raise ParameterError("model name required when passing a graph")
        diffusion = get_model(model, graph_or_model)
    if num_samples < 1:
        raise ParameterError(f"num_samples must be >= 1, got {num_samples}")
    seed_list = sorted({int(s) for s in seeds})
    if not seed_list:
        return SpreadEstimate(0.0, 0.0, num_samples)
    for s in seed_list:
        if not 0 <= s < diffusion.graph.n:
            raise ParameterError(f"seed {s} out of range")

    rng = as_generator(seed)
    sizes = np.empty(num_samples, dtype=np.float64)
    for i in range(num_samples):
        sizes[i] = diffusion.simulate(seed_list, rng).size
    mean = float(sizes.mean())
    std_error = (
        float(sizes.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else 0.0
    )
    return SpreadEstimate(mean=mean, std_error=std_error, num_samples=num_samples)


def exact_spread_ic(graph: DiGraph, seeds: Iterable[int]) -> float:
    """Exact ``sigma(S)`` under IC by enumerating live-edge graphs.

    Complexity is ``O(2^m * (n + m))``; a guard rejects graphs with more
    than 20 edges.  Intended for test fixtures only.
    """
    if graph.m > 20:
        raise ParameterError(
            f"exact enumeration needs m <= 20 edges, graph has {graph.m}"
        )
    if not graph.weighted:
        raise ParameterError("graph must be weighted")
    from repro.diffusion.triggering import live_edge_spread

    seed_list = sorted({int(s) for s in seeds})
    if not seed_list:
        return 0.0

    probs = graph.in_probs
    total = 0.0
    for outcome in itertools.product((False, True), repeat=graph.m):
        mask = np.asarray(outcome, dtype=bool)
        weight = float(
            np.prod(np.where(mask, probs, 1.0 - probs))
        )
        if weight <= 0.0:
            continue
        reached = live_edge_spread(graph, seed_list, mask)
        total += weight * reached.size
    return total
