"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at integration boundaries while the
library keeps fine-grained types internally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised when a graph is structurally invalid or inconsistent."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph representation fails."""


class WeightError(GraphError):
    """Raised when edge probabilities are out of range or malformed.

    Includes the LT-model constraint that the propagation probabilities
    on any node's incoming edges must sum to at most 1.
    """


class ParameterError(ReproError):
    """Raised when an algorithm parameter is outside its valid domain.

    Examples: ``k < 1``, ``k > n``, ``epsilon`` outside ``(0, 1)``, or
    ``delta`` outside ``(0, 1)``.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm exhausts its iteration budget
    without satisfying its stopping condition (should not happen for the
    paper's algorithms, whose last iteration always returns)."""


class BudgetExceededError(ReproError):
    """Raised when an algorithm overruns an RR-set budget cap.

    Carries ``num_rr_sets`` so the OPIM-adoption wrapper (Section 3.3)
    can account for the partial invocation it had to abandon.
    """

    def __init__(self, message: str, num_rr_sets: int = 0) -> None:
        super().__init__(message)
        self.num_rr_sets = num_rr_sets


class ServiceError(ReproError):
    """Raised when the persistent sampling service fails operationally.

    Covers using a closed :class:`~repro.sampling.service.SamplingPool`,
    a worker error propagated from a chunk, and an exhausted worker
    restart budget (a chunk that crashes every worker it is issued to).
    """


class StateError(ReproError):
    """Raised when an online algorithm is driven through an invalid
    state transition (e.g. querying a stopped instance)."""
