"""Command-line interface: ``repro-opim <command> [options]``.

Commands
--------
``datasets``
    Print Table 2 (the synthetic stand-ins vs. the paper's datasets).
``online``
    Run the online OPIM algorithm on a dataset and print guarantee
    checkpoints (an interactive session in batch form).
``solve``
    Run one conventional IM algorithm (opim-c / imm / tim / ssa / dssa)
    and print the seed set, sample count, and estimated spread.
``figure``
    Regenerate one of the paper's figures/tables (1-7, t1, t2).
``serve``
    Start the long-lived seed-query server (``repro.serve``): load the
    graph once, keep the RR sketch warm, answer HTTP/JSON queries.
``cluster``
    Start the sharded multi-tenant serving tier
    (``repro.serve.cluster``): an API front end routing jobs by graph
    fingerprint to warm worker processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import (
    degree_discount_ic,
    dssa_fix,
    imm,
    max_degree,
    random_seeds,
    single_discount,
    ssa_fix,
    tim_plus,
)
from repro.core import OnlineOPIM, opim_c
from repro.core.session import OPIMSession
from repro.datasets import dataset_names, load_dataset
from repro.diffusion import monte_carlo_spread
from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    format_result,
    format_table,
    table1,
    table2,
)
from repro.experiments.ablations import (
    collection_split_ablation,
    delta_split_ablation,
)
from repro.experiments.reproduce import PRESETS, experiment_ids, run_all
from repro.obs import MetricsRegistry, TraceRecorder

# Solver signature: (graph, model, k, epsilon, delta, seed, registry,
# workers).  Only the OPIM-C family consumes the registry and the
# sampling-pool worker count; the baselines and heuristics ignore them
# (their internals are neither instrumented nor parallelized).
_SOLVERS = {
    "opim-c": lambda g, m, k, e, d, s, r, w: opim_c(
        g, m, k, e, delta=d, seed=s, registry=r, workers=w
    ),
    "opim-c0": lambda g, m, k, e, d, s, r, w: opim_c(
        g, m, k, e, delta=d, seed=s, bound="vanilla", registry=r, workers=w
    ),
    "imm": lambda g, m, k, e, d, s, r, w: imm(g, m, k, e, delta=d, seed=s),
    "tim": lambda g, m, k, e, d, s, r, w: tim_plus(g, m, k, e, delta=d, seed=s),
    "ssa": lambda g, m, k, e, d, s, r, w: ssa_fix(g, m, k, e, delta=d, seed=s),
    "dssa": lambda g, m, k, e, d, s, r, w: dssa_fix(g, m, k, e, delta=d, seed=s),
    "degree": lambda g, m, k, e, d, s, r, w: max_degree(g, k),
    "degree-discount": lambda g, m, k, e, d, s, r, w: degree_discount_ic(g, k),
    "single-discount": lambda g, m, k, e, d, s, r, w: single_discount(g, k),
    "random": lambda g, m, k, e, d, s, r, w: random_seeds(g, k, seed=s),
}


def _parse_pool_spec(value: str) -> int:
    """Parse the ``--pool`` argument: ``workers=N`` (or bare ``N``).

    Returns the worker count for the persistent sampling service; 1
    means "serial chunk schedule, in-process".
    """
    text = value.strip()
    if text.startswith("workers="):
        text = text[len("workers="):]
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--pool expects workers=N, got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"--pool workers must be >= 1, got {workers}"
        )
    return workers


def _add_pool_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--pool",
        metavar="workers=N",
        type=_parse_pool_spec,
        default=None,
        dest="pool_workers",
        help="sample through a persistent shared-memory worker pool "
        "(SamplingPool) with N processes kept warm across iterations "
        "(see docs/parallel-sampling.md)",
    )


def _add_observability_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL trace of phase spans, counters, and alpha "
        "rows to PATH (schema: docs/observability.md)",
    )
    subparser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics-registry summary after the run",
    )


def _make_observability(args: argparse.Namespace, stream: bool = False):
    """Build (registry, recorder) from --trace/--metrics, else (None, None).

    ``stream=True`` (the serve command) opens the recorder directly on
    the trace path so events hit disk as they happen — a long-lived
    server should not buffer its whole trace in memory.
    """
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", False)
    if not trace and not metrics:
        return None, None
    recorder = None
    if trace:
        if stream:
            recorder = TraceRecorder(path=trace)
        else:
            # Fail fast on an unwritable path instead of after the run.
            with open(trace, "w", encoding="utf-8"):
                pass
            recorder = TraceRecorder()
    return MetricsRegistry(sink=recorder), recorder


def _finish_observability(args: argparse.Namespace, registry, recorder) -> None:
    if recorder is not None:
        if recorder.path is not None:
            recorder.close()
        else:
            recorder.to_jsonl(args.trace)
        print(f"trace       : {len(recorder.events)} events -> {args.trace}")
    if registry is not None and getattr(args, "metrics", False):
        summary = registry.summary()
        print("metrics     :")
        for name, value in sorted(summary["counters"].items()):
            print(f"  {name:36s} {value}")
        for name, value in sorted(summary["gauges"].items()):
            print(f"  {name:36s} {value:.6g}")
        for name, stats in sorted(summary["stats"].items()):
            print(
                f"  {name:36s} count={stats['count']} "
                f"total={stats['total']:.4g} mean={stats['mean']:.4g}"
            )
        for name, hist in sorted(summary["histograms"].items()):
            print(
                f"  {name:36s} count={hist['count']} "
                f"p50={hist['p50']:.4g} p95={hist['p95']:.4g} "
                f"p99={hist['p99']:.4g}"
            )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opim",
        description="OPIM (SIGMOD 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table 2 dataset summary")

    online = sub.add_parser("online", help="run the online OPIM algorithm")
    online.add_argument("--dataset", default="pokec-sim", choices=dataset_names())
    online.add_argument("--model", default="IC", choices=["IC", "LT"])
    online.add_argument("--k", type=int, default=50)
    online.add_argument("--scale", type=float, default=1.0)
    online.add_argument("--seed", type=int, default=2018)
    online.add_argument(
        "--checkpoints",
        type=int,
        default=6,
        help="number of doubling checkpoints starting at 1000 RR sets",
    )
    _add_observability_flags(online)
    _add_pool_flag(online)

    solve = sub.add_parser("solve", help="run one conventional IM algorithm")
    solve.add_argument("--algorithm", default="opim-c", choices=sorted(_SOLVERS))
    solve.add_argument("--dataset", default="pokec-sim", choices=dataset_names())
    solve.add_argument("--model", default="IC", choices=["IC", "LT"])
    solve.add_argument("--k", type=int, default=50)
    solve.add_argument("--epsilon", type=float, default=0.3)
    solve.add_argument("--delta", type=float, default=None)
    solve.add_argument("--scale", type=float, default=1.0)
    solve.add_argument("--seed", type=int, default=2018)
    solve.add_argument("--spread-samples", type=int, default=2000)
    _add_observability_flags(solve)
    _add_pool_flag(solve)

    figure = sub.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument(
        "which",
        choices=["1", "2", "3", "4", "5", "6", "7", "t1", "t2", "a1", "a2"],
        help="1-7 = paper figures, t1/t2 = tables, a1/a2 = ablations",
    )
    figure.add_argument("--scale", type=float, default=0.25)
    figure.add_argument("--repetitions", type=int, default=1)
    _add_observability_flags(figure)

    session = sub.add_parser(
        "session", help="run an interactive-style session to an alpha target"
    )
    session.add_argument("--dataset", default="pokec-sim", choices=dataset_names())
    session.add_argument("--model", default="IC", choices=["IC", "LT"])
    session.add_argument("--k", type=int, default=50)
    session.add_argument("--scale", type=float, default=1.0)
    session.add_argument("--seed", type=int, default=2018)
    session.add_argument("--alpha-target", type=float, default=0.75)
    session.add_argument("--rr-budget", type=int, default=500_000)
    session.add_argument("--step", type=int, default=2000)
    _add_observability_flags(session)
    _add_pool_flag(session)

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the statistical-correctness static analyzer",
    )
    lint.add_argument(
        "paths", nargs="*", default=None, help="files/directories (default: src/)"
    )
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--output", default=None, metavar="PATH")
    lint.add_argument("--select", default=None, metavar="IDS")
    lint.add_argument("--no-project", action="store_true")
    lint.add_argument("--baseline", default=None, metavar="PATH")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--write-baseline", action="store_true")
    lint.add_argument("--prune-baseline", action="store_true")
    lint.add_argument("--show-baselined", action="store_true")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--explain", default=None, metavar="IDS")

    serve = sub.add_parser(
        "serve", help="start the long-lived seed-query server"
    )
    serve.add_argument("--dataset", default="pokec-sim", choices=dataset_names())
    serve.add_argument("--model", default="IC", choices=["IC", "LT"])
    serve.add_argument("--scale", type=float, default=1.0)
    serve.add_argument("--seed", type=int, default=2018)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8471)
    serve.add_argument(
        "--index-dir",
        default=None,
        metavar="DIR",
        help="RR-sketch index directory: warm-start from it when it "
        "exists, and POST /save writes back to it (docs/serving.md)",
    )
    serve.add_argument(
        "--warmup",
        type=int,
        default=0,
        metavar="N",
        help="RR sets to pre-sample before accepting queries",
    )
    serve.add_argument("--cache-size", type=int, default=256)
    serve.add_argument("--queue-limit", type=int, default=64)
    serve.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds a request waits for the engine before 504",
    )
    serve.add_argument(
        "--max-rr-sets",
        type=int,
        default=500_000,
        help="hard ceiling on the shared RR sketch",
    )
    _add_pool_flag(serve)
    _add_observability_flags(serve)

    cluster = sub.add_parser(
        "cluster",
        help="start the sharded multi-tenant serving tier "
        "(front end + warm worker pool)",
    )
    cluster.add_argument(
        "--dataset",
        action="append",
        default=None,
        choices=dataset_names(),
        help="dataset to preload and register (repeatable; each is "
        "registered under its own name for the default tenant)",
    )
    cluster.add_argument("--model", default="IC", choices=["IC", "LT"])
    cluster.add_argument("--scale", type=float, default=1.0)
    cluster.add_argument("--seed", type=int, default=2018)
    cluster.add_argument("--tenant", default="default")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8473)
    cluster.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker process count == shard count; graphs are routed "
        "to shards by content fingerprint",
    )
    cluster.add_argument(
        "--mem-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-graph resident-sketch budget; at-budget graphs "
        "reject new jobs with 503 + Retry-After (default 64 MiB)",
    )
    cluster.add_argument(
        "--worker-mem-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="total budget per worker; cold engines are LRU-evicted "
        "(checkpoint, then drop) to stay under it",
    )
    cluster.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="root of per-graph persistent index directories "
        "(state_dir/tenant/name); enables warm restart after crashes",
    )
    cluster.add_argument("--queue-limit", type=int, default=64)
    cluster.add_argument(
        "--max-rr-sets",
        type=int,
        default=500_000,
        help="hard ceiling on each graph's shared RR sketch",
    )
    _add_observability_flags(cluster)

    trace = sub.add_parser(
        "trace", help="inspect a JSONL trace export (docs/observability.md)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-phase latency breakdown plus slow stitched request trees",
    )
    summarize.add_argument("path", help="JSONL trace file to summarize")
    summarize.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        help="flag traces slower than this total latency (default 100)",
    )
    summarize.add_argument(
        "--top",
        type=int,
        default=5,
        help="show at most this many slow traces (default 5)",
    )

    bench = sub.add_parser(
        "bench", help="benchmark trajectory and regression gating"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    compare = bench_sub.add_parser(
        "compare",
        help="compare BENCH_*.json against the recorded baseline "
        "(nonzero exit on regression; the CI perf gate)",
    )
    compare.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory holding BENCH_*.json (default benchmarks/results)",
    )
    compare.add_argument(
        "--baseline",
        default=None,
        help="baseline spec (default <results>/BENCH_baseline.json)",
    )
    compare.add_argument(
        "--skip-missing",
        action="store_true",
        help="do not fail when a tracked metric's results file is absent",
    )
    record = bench_sub.add_parser(
        "record",
        help="append the current BENCH_*.json files to the history JSONL",
    )
    record.add_argument("--results", default="benchmarks/results")
    record.add_argument(
        "--history",
        default=None,
        help="history file (default <results>/history.jsonl)",
    )
    record.add_argument(
        "--label", default=None, help="free-form snapshot label (e.g. git SHA)"
    )

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every table/figure into a directory"
    )
    reproduce.add_argument("--out", default="reproduction", help="output directory")
    reproduce.add_argument("--preset", default="smoke", choices=sorted(PRESETS))
    reproduce.add_argument("--seed", type=int, default=2018)
    reproduce.add_argument(
        "--only",
        nargs="*",
        default=None,
        choices=experiment_ids(),
        help="subset of experiments to run",
    )

    return parser


def _cmd_datasets() -> int:
    print(format_table(table2()))
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    registry, recorder = _make_observability(args)
    graph = load_dataset(args.dataset, scale=args.scale)
    if registry is not None:
        registry.record(
            "meta",
            command="online",
            dataset=graph.name,
            model=args.model,
            k=min(args.k, graph.n),
            seed=args.seed,
        )
    with OnlineOPIM(
        graph,
        args.model,
        k=min(args.k, graph.n),
        seed=args.seed,
        registry=registry,
        workers=args.pool_workers,
    ) as algo:
        print(f"dataset={graph.name} n={graph.n} m={graph.m} model={args.model}")
        budget = 1000
        for _ in range(args.checkpoints):
            algo.extend_to(budget)
            snaps = algo.query_all()
            line = "  ".join(
                f"{label}={snaps[v].alpha:.4f}"
                for v, label in (
                    ("vanilla", "OPIM0"),
                    ("greedy", "OPIM+"),
                    ("leskovec", "OPIM'"),
                )
            )
            print(f"RR sets {budget:>8d}: {line}  (t={algo.timer.elapsed:.2f}s)")
            budget *= 2
    _finish_observability(args, registry, recorder)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    registry, recorder = _make_observability(args)
    graph = load_dataset(args.dataset, scale=args.scale)
    if registry is not None:
        registry.record(
            "meta",
            command="solve",
            algorithm=args.algorithm,
            dataset=graph.name,
            model=args.model,
            k=min(args.k, graph.n),
            epsilon=args.epsilon,
            seed=args.seed,
        )
    solver = _SOLVERS[args.algorithm]
    result = solver(
        graph,
        args.model,
        min(args.k, graph.n),
        args.epsilon,
        args.delta,
        args.seed,
        registry,
        args.pool_workers,
    )
    spread = monte_carlo_spread(
        graph, result.seeds, args.model, num_samples=args.spread_samples, seed=1
    )
    print(f"algorithm   : {result.algorithm}")
    print(f"dataset     : {graph.name} (n={graph.n}, m={graph.m})")
    print(f"seeds       : {result.seeds}")
    print(f"RR sets     : {result.num_rr_sets}")
    print(f"iterations  : {result.iterations}")
    print(f"time        : {result.elapsed:.2f}s")
    print(f"est. spread : {spread.mean:.1f} (+- {1.96 * spread.std_error:.1f})")
    _finish_observability(args, registry, recorder)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    which = args.which
    # Figures 2-7 thread the registry through the harness; figure 1,
    # the tables, and the ablations are analytic/uninstrumented, so a
    # --trace there records only the "meta" event.
    registry, recorder = _make_observability(args)
    if registry is not None:
        registry.record("meta", command="figure", which=which, scale=args.scale)
    if which == "1":
        print(format_result(figure1(), x_format=".3g"))
    elif which == "t1":
        print(format_table(table1(scale=args.scale)))
    elif which == "t2":
        print(format_table(table2()))
    elif which in {"2", "3", "4", "5"}:
        runner = {"2": figure2, "3": figure3, "4": figure4, "5": figure5}[which]
        kwargs = dict(
            scale=args.scale, repetitions=args.repetitions, registry=registry
        )
        if which in {"3", "5"}:
            kwargs["ks"] = (1, 10, 100)
        print(format_result(runner(**kwargs)))
    elif which in {"a1", "a2"}:
        graph = load_dataset("pokec-sim", scale=args.scale)
        runner = {"a1": delta_split_ablation, "a2": collection_split_ablation}[which]
        print(
            format_result(
                runner(graph, "IC", k=20, repetitions=args.repetitions, seed=2018)
            )
        )
    else:
        runner = {"6": figure6, "7": figure7}[which]
        print(
            format_result(
                runner(
                    scale=args.scale,
                    repetitions=args.repetitions,
                    registry=registry,
                )
            )
        )
    _finish_observability(args, registry, recorder)
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    registry, recorder = _make_observability(args)
    graph = load_dataset(args.dataset, scale=args.scale)
    if registry is not None:
        registry.record(
            "meta",
            command="session",
            dataset=graph.name,
            model=args.model,
            k=min(args.k, graph.n),
            alpha_target=args.alpha_target,
            seed=args.seed,
        )
    with OPIMSession(
        graph, args.model, k=min(args.k, graph.n), seed=args.seed,
        registry=registry, workers=args.pool_workers,
    ) as session:
        result = session.run_until(
            alpha_target=args.alpha_target,
            rr_budget=args.rr_budget,
            step=args.step,
        )
    for snap in result.history:
        print(
            f"query @ {snap.num_rr_sets:>8d} RR sets: alpha = {snap.alpha:.4f}"
        )
    print(f"stopped: {result.stop.kind} ({result.stop.detail})")
    print(f"seeds  : {result.snapshot.seeds}")
    _finish_observability(args, registry, recorder)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import SeedQueryEngine, SeedQueryServer

    registry, recorder = _make_observability(args, stream=True)
    graph = load_dataset(args.dataset, scale=args.scale)
    if registry is not None:
        registry.record(
            "meta",
            command="serve",
            dataset=graph.name,
            model=args.model,
            seed=args.seed,
        )
    engine = SeedQueryEngine(
        graph,
        args.model,
        seed=args.seed,
        workers=args.pool_workers,
        index_dir=args.index_dir,
        max_rr_sets=args.max_rr_sets,
        registry=registry,
    )
    if args.warmup:
        engine.extend(args.warmup + args.warmup % 2)
    server = SeedQueryServer(
        engine,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        registry=registry,
        own_engine=True,
    )

    async def _run() -> None:
        await server.start()
        source = "index" if engine.loaded_from_index else "fresh"
        print(
            f"serving {graph.name} (n={graph.n}, m={graph.m}, "
            f"model={engine.model}) on http://{args.host}:{server.port}"
        )
        print(
            f"sketch: {engine.num_rr_sets} RR sets ({source}); "
            "Ctrl-C drains and exits"
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
    _finish_observability(args, registry, recorder)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.cluster import DEFAULT_MEM_BUDGET, ClusterFrontend

    registry, recorder = _make_observability(args, stream=True)
    if registry is not None:
        registry.record(
            "meta",
            command="cluster",
            workers=args.workers,
            datasets=args.dataset or [],
        )
    mem_budget = (
        args.mem_budget if args.mem_budget is not None else DEFAULT_MEM_BUDGET
    )
    graphs = [
        (name, load_dataset(name, scale=args.scale))
        for name in (args.dataset or [])
    ]
    front = ClusterFrontend(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_mem_budget=args.worker_mem_budget,
        queue_limit=args.queue_limit,
        state_dir=args.state_dir,
        registry=registry,
    )

    async def _run() -> None:
        await front.start()
        for name, graph in graphs:
            description = front.register_graph(
                graph,
                name,
                tenant=args.tenant,
                model=args.model,
                seed=args.seed,
                mem_budget=mem_budget,
                max_rr_sets=args.max_rr_sets,
            )
            print(
                f"registered {description['graph_id']} (n={graph.n}, "
                f"m={graph.m}) -> shard {description['shard']}"
            )
        print(
            f"cluster front end on http://{args.host}:{front.port} "
            f"({args.workers} workers); Ctrl-C drains and exits"
        )
        await front.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
    _finish_observability(args, registry, recorder)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracetool import (
        format_trace_summary,
        load_events,
        summarize_trace,
    )

    events = load_events(args.path)
    summary = summarize_trace(events, slow_ms=args.slow_ms, top=args.top)
    print(format_trace_summary(summary))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.obs import regression

    if args.bench_command == "record":
        history = args.history or os.path.join(
            args.results, regression.HISTORY_FILENAME
        )
        snapshot = regression.append_history(
            args.results, history, label=args.label
        )
        print(
            f"recorded {len(snapshot['results'])} result files -> {history}"
        )
        return 0
    baseline_path = args.baseline or os.path.join(
        args.results, regression.BASELINE_FILENAME
    )
    baseline = regression.load_baseline(baseline_path)
    result = regression.compare(args.results, baseline)
    print(regression.format_comparison(result))
    if result["regressions"]:
        return 1
    if result["missing"] and not args.skip_missing:
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    forwarded: List[str] = list(args.paths or [])
    forwarded += ["--format", args.format]
    if args.select:
        forwarded += ["--select", args.select]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.output:
        forwarded += ["--output", args.output]
    if args.explain:
        forwarded += ["--explain", args.explain]
    for flag in (
        "no_baseline", "write_baseline", "prune_baseline",
        "show_baselined", "list_rules", "no_project",
    ):
        if getattr(args, flag):
            forwarded.append("--" + flag.replace("_", "-"))
    return lint_main(forwarded, prog="repro-opim lint")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "online":
        return _cmd_online(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "session":
        return _cmd_session(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "reproduce":
        runtimes = run_all(
            args.out, preset=args.preset, seed=args.seed, only=args.only
        )
        for name, seconds in runtimes.items():
            print(f"{name:28s} {seconds:8.2f}s -> {args.out}/{name}.txt")
        return 0
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
