"""Martingale concentration bounds for RR-set influence estimation."""

from repro.bounds.binomial import (
    clopper_pearson_interval,
    clopper_pearson_upper,
)
from repro.bounds.concentration import (
    delta_split_ratio,
    lemma44_f,
    lemma44_g,
    sigma_lower_bound,
    sigma_upper_bound,
)
from repro.bounds.delta_ledger import DeltaBudgetError, DeltaLedger

__all__ = [
    "sigma_lower_bound",
    "sigma_upper_bound",
    "lemma44_f",
    "lemma44_g",
    "delta_split_ratio",
    "DeltaLedger",
    "DeltaBudgetError",
    "clopper_pearson_upper",
    "clopper_pearson_interval",
]
