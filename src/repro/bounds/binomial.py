"""Exact binomial (Clopper–Pearson) confidence bounds.

The statistical acceptance harness (:mod:`repro.stats_harness`) judges
the paper's Theorem 6.2 guarantee empirically: it counts guarantee
violations over many independent trials and must decide whether the
observed failure *rate* is consistent with the promised failure
*probability* ``delta``.  The referee for that decision is the exact
binomial bound of Clopper & Pearson (Biometrika 26, 1934): unlike the
normal approximation it is valid at zero observed failures — the
common case — where the one-sided upper bound collapses to
``1 - (1 - confidence)^(1/trials)``.

Everything here is pure Python on top of ``math`` — the regularized
incomplete beta function is evaluated with the standard continued
fraction (Lentz's algorithm) and inverted by bisection, so the package
keeps its numpy-only dependency footprint.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.exceptions import ParameterError

__all__ = [
    "betainc_regularized",
    "beta_ppf",
    "clopper_pearson_upper",
    "clopper_pearson_interval",
]

#: Convergence tolerance of the continued fraction / bisection.
_EPS = 1e-12
_MAX_ITER = 300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-30
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta_term = d * c
        h *= delta_term
        if abs(delta_term - 1.0) < _EPS:
            return h
    return h


def betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)``.

    The CDF of the Beta distribution, which by the classical identity
    ``Pr[Bin(n, p) <= k] = I_{1-p}(n - k, k + 1)`` carries the exact
    binomial tail used by the Clopper–Pearson referee of the
    Theorem 6.2 failure-rate experiments.
    """
    if a <= 0.0 or b <= 0.0:
        raise ParameterError(f"beta parameters must be positive, got ({a}, {b})")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2);
    # otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def beta_ppf(q: float, a: float, b: float) -> float:
    """Quantile of Beta(a, b): the inverse of ``I_x(a, b)`` by bisection.

    Bisection (not Newton) keeps the inversion unconditionally stable
    for the extreme quantiles the Theorem 6.2 harness asks for (e.g.
    the 0.95 quantile of Beta(1, 200) at zero observed failures).
    """
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile must be in [0, 1], got {q}")
    if q <= 0.0:
        return 0.0
    if q >= 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(_MAX_ITER):
        mid = 0.5 * (lo + hi)
        if betainc_regularized(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < _EPS:
            break
    return 0.5 * (lo + hi)


def clopper_pearson_upper(
    failures: int, trials: int, confidence: float = 0.95
) -> float:
    """One-sided exact upper confidence bound on a binomial proportion.

    With ``failures`` observed among ``trials`` independent trials, the
    true failure probability ``p`` satisfies ``p <= upper`` with
    probability at least ``confidence``; ``upper`` is the
    ``confidence`` quantile of ``Beta(failures + 1, trials -
    failures)``.  This is the harness's acceptance statistic for the
    paper's Theorem 6.2: a scenario passes when this bound does not
    exceed the ``delta`` the algorithm promised.
    """
    _check_counts(failures, trials, confidence)
    if failures >= trials:
        return 1.0
    return beta_ppf(confidence, failures + 1.0, float(trials - failures))


def clopper_pearson_interval(
    failures: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Two-sided exact (Clopper–Pearson) confidence interval.

    Splits ``1 - confidence`` evenly across the two tails; the
    endpoints are Beta quantiles as in :func:`clopper_pearson_upper`.
    Reported alongside the one-sided Theorem 6.2 acceptance bound so
    benchmark records carry the full interval.
    """
    _check_counts(failures, trials, confidence)
    tail = 0.5 * (1.0 - confidence)
    if failures <= 0:
        low = 0.0
    else:
        low = beta_ppf(tail, float(failures), trials - failures + 1.0)
    if failures >= trials:
        high = 1.0
    else:
        high = beta_ppf(1.0 - tail, failures + 1.0, float(trials - failures))
    return low, high


def _check_counts(failures: int, trials: int, confidence: float) -> None:
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if not 0 <= failures <= trials:
        raise ParameterError(
            f"failures must be in [0, trials={trials}], got {failures}"
        )
    if not 0.0 < confidence < 1.0:
        raise ParameterError(f"confidence must be in (0, 1), got {confidence}")
