"""Concentration-based spread bounds (paper Sections 4–5).

All bounds derive from the martingale tail inequalities of Tang et al.
2015 (paper, Lemma 4.1).  Given a coverage observation over ``theta``
RR sets on an ``n``-node graph:

* :func:`sigma_lower_bound` implements Eq. 5 — a ``1 - delta`` lower
  bound on ``sigma(S*)`` from the *judge* collection ``R2``;
* :func:`sigma_upper_bound` implements Eqs. 8 / 13 / 15 — a
  ``1 - delta`` upper bound on ``sigma(S^o)`` from a coverage upper
  bound ``Lambda_1^x(S^o)`` computed on the *nominator* collection
  ``R1`` (the three OPIM variants pass different ``Lambda`` values);
* :func:`lemma44_f` / :func:`lemma44_g` / :func:`delta_split_ratio`
  implement the near-optimality analysis of the ``delta_1 = delta_2 =
  delta / 2`` split (Lemma 4.4, visualized in Figure 1).
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError
from repro.utils.validation import check_delta


def sigma_lower_bound(
    coverage: float, theta: int, n: int, delta: float, clamp: bool = True
) -> float:
    """Eq. 5: lower bound on ``sigma(S)`` holding w.p. >= ``1 - delta``.

    Parameters
    ----------
    coverage:
        ``Lambda_2(S*)`` — coverage of the seed set in the judge
        collection ``R2``.
    theta:
        ``theta_2 = |R2|``.
    n:
        Number of graph nodes.
    delta:
        Failure probability ``delta_2``.
    clamp:
        Clamp the result at 0 (the raw formula can go negative when the
        sample is tiny; a negative spread bound carries no information).
    """
    check_delta(delta)
    if theta < 1:
        raise ParameterError(f"theta must be >= 1, got {theta}")
    if coverage < 0 or coverage > theta:
        raise ParameterError(
            f"coverage must be in [0, theta={theta}], got {coverage}"
        )
    a = math.log(1.0 / delta)
    root = math.sqrt(coverage + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    value = (root * root - a / 18.0) * n / theta
    if clamp:
        value = max(0.0, value)
    return value


def sigma_upper_bound(
    coverage_upper: float, theta: int, n: int, delta: float
) -> float:
    """Eqs. 8/13/15: upper bound on ``sigma(S^o)`` w.p. >= ``1 - delta``.

    Parameters
    ----------
    coverage_upper:
        An upper bound on ``Lambda_1(S^o)`` — e.g.
        ``Lambda_1(S*)/(1-1/e)`` (OPIM⁰, Eq. 8), ``Lambda_1^u(S^o)``
        (OPIM⁺, Eq. 13), or ``Lambda_1^<>(S^o)`` (OPIM′, Eq. 15).
    theta:
        ``theta_1 = |R1|``.
    """
    check_delta(delta)
    if theta < 1:
        raise ParameterError(f"theta must be >= 1, got {theta}")
    if coverage_upper < 0:
        raise ParameterError(f"coverage_upper must be >= 0, got {coverage_upper}")
    a = math.log(1.0 / delta)
    root = math.sqrt(coverage_upper + a / 2.0) + math.sqrt(a / 2.0)
    return root * root * n / theta


def approximation_guarantee(
    sigma_low: float, sigma_up: float, cap: float = 1.0
) -> float:
    """``alpha = sigma_l(S*) / sigma_u(S^o)`` (paper, Section 4.1),
    clamped to ``[0, cap]``.

    ``sigma_l <= sigma(S*) <= sigma(S^o) <= sigma_u`` holds w.h.p., so
    the true ratio never exceeds 1; the cap only guards degenerate
    numerics on tiny inputs.
    """
    if sigma_up <= 0.0:
        return 0.0
    return max(0.0, min(cap, sigma_low / sigma_up))


# ----------------------------------------------------------------------
# Lemma 4.4 — near-optimality of the delta/2 split (Figure 1)
# ----------------------------------------------------------------------
def lemma44_f(x: float, coverage_r2: float) -> float:
    """``f(x) = (sqrt(Lambda_2 + 2x/9) - sqrt(x/2))^2 - x/18`` (Lemma 4.4).

    Decreasing in ``x``; the numerator factor of the split ratio.
    """
    if x < 0:
        raise ParameterError(f"x must be >= 0, got {x}")
    root = math.sqrt(coverage_r2 + 2.0 * x / 9.0) - math.sqrt(x / 2.0)
    return root * root - x / 18.0


def lemma44_g(x: float, coverage_r1: float) -> float:
    """``g(x) = (sqrt(Lambda_1/(1-1/e) + x/2) + sqrt(x/2))^2`` (Lemma 4.4).

    Increasing in ``x``; the denominator factor of the split ratio.
    """
    if x < 0:
        raise ParameterError(f"x must be >= 0, got {x}")
    root = math.sqrt(coverage_r1 / (1.0 - 1.0 / math.e) + x / 2.0) + math.sqrt(
        x / 2.0
    )
    return root * root


def delta_split_ratio(delta: float, coverage_r1: float, coverage_r2: float) -> float:
    """Lemma 4.4 ratio ``f(ln 2/d) g(ln 1/d) / (f(ln 1/d) g(ln 2/d))``.

    Lower-bounds ``alpha / alpha'`` — how close the fixed split
    ``delta_1 = delta_2 = delta / 2`` comes to the best possible split.
    Values near 1 (Figure 1) justify the fixed split.
    """
    check_delta(delta)
    ln1 = math.log(1.0 / delta)
    ln2 = math.log(2.0 / delta)
    numerator = lemma44_f(ln2, coverage_r2) * lemma44_g(ln1, coverage_r1)
    denominator = lemma44_f(ln1, coverage_r2) * lemma44_g(ln2, coverage_r1)
    if denominator <= 0.0:
        raise ParameterError(
            "split ratio undefined: f(ln 1/delta) is non-positive "
            f"(coverage_r2={coverage_r2} too small for delta={delta})"
        )
    return numerator / denominator
