"""Runtime accounting for a session's failure budget.

The static analyzer's RPR202 checks at lint time that delta fractions
handed to the sigma bounds sum to at most the caller's budget.
:class:`DeltaLedger` is the runtime counterpart: every consumer of a
slice of ``delta`` records its spend, so a session can assert — or a
serving endpoint can report — that the union bound it advertises is
actually covered by the slices it used.

The ledger is advisory by default: over-spend is recorded and visible
in :meth:`audit`, but only raises :class:`DeltaBudgetError` when strict
mode is on (``strict=True`` or the ``REPRO_DELTA_STRICT`` environment
variable is set to a truthy value).  Geometric schedules such as
``delta / 2^i`` never exhaust the budget, so a correct session stays
below 1.0 forever; a ledger that reaches its budget is a bug.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional

from repro.exceptions import ParameterError

__all__ = ["DeltaLedger", "DeltaBudgetError"]

_TOLERANCE = 1e-9


def _env_strict() -> bool:
    value = os.environ.get("REPRO_DELTA_STRICT", "").strip().lower()
    return value not in ("", "0", "false", "no")


class DeltaBudgetError(RuntimeError):
    """Raised in strict mode when recorded spends exceed the budget."""


class DeltaLedger:
    """Track slices spent out of a total failure probability ``budget``.

    >>> ledger = DeltaLedger(0.1)
    >>> ledger.spend(0.05, label="query-1")
    >>> ledger.spend(0.025, label="query-2")
    >>> round(ledger.remaining, 6)
    0.025
    >>> ledger.over_budget
    False
    """

    def __init__(self, budget: float, strict: Optional[bool] = None) -> None:
        if not (0.0 < budget < 1.0) or not math.isfinite(budget):
            raise ParameterError(f"delta budget must be in (0, 1), got {budget}")
        self.budget = float(budget)
        self.strict = _env_strict() if strict is None else bool(strict)
        self._entries: List[Dict[str, object]] = []
        self._spent = 0.0

    def spend(self, amount: float, label: str = "") -> None:
        """Record ``amount`` of failure probability consumed by ``label``."""
        if not math.isfinite(amount) or amount <= 0.0:
            raise ParameterError(f"delta spend must be positive, got {amount}")
        self._entries.append({"label": label, "amount": float(amount)})
        self._spent += float(amount)
        if self.strict and self.over_budget:
            raise DeltaBudgetError(
                f"delta ledger over budget: spent {self._spent:.6g} "
                f"of {self.budget:.6g} after '{label}'"
            )

    @property
    def spent(self) -> float:
        return self._spent

    @property
    def remaining(self) -> float:
        return max(0.0, self.budget - self._spent)

    @property
    def over_budget(self) -> bool:
        return self._spent > self.budget + _TOLERANCE

    def audit(self) -> Dict[str, object]:
        """A JSON-friendly statement of the ledger, for stats endpoints."""
        return {
            "budget": self.budget,
            "spent": self._spent,
            "remaining": self.remaining,
            "over_budget": self.over_budget,
            "entries": [dict(entry) for entry in self._entries],
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaLedger(budget={self.budget!r}, spent={self._spent!r}, "
            f"entries={len(self._entries)})"
        )
