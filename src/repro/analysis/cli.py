"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes (identical for ``--format text`` and ``--format json`` —
both renderers derive from the same ``LintReport.exit_code``):

* ``0`` — clean: no findings beyond the baseline (baselined and
  ``noqa``-suppressed findings do not fail the run);
* ``1`` — new findings (including parse errors);
* ``2`` — usage or internal errors (bad rule ids, missing files,
  argparse errors).
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import List, Optional, Type

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import LintEngine
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, get_rules
from repro.analysis.rules.base import Rule


def build_parser(prog: str = "repro-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "reprolint: AST-based statistical-correctness linter for the "
            "OPIM reproduction (rule catalog: docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (exit codes are identical either way)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the rendered report to this file",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program RPR2xx pass (file rules only)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the baseline keeping only entries the tree still "
            "produces (the ratchet: accepted debt can only shrink)"
        ),
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings matched by the baseline",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="IDS",
        help=(
            "print rationale and paper citation for rule ids and exit "
            "(comma-separated; families like RPR2xx and 'all' work)"
        ),
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _match_rules(spec: str) -> List[Type[Rule]]:
    """Rule classes matching a ``--explain`` spec.

    Accepts exact ids (``RPR201``), family globs (``RPR2xx`` /
    ``rpr1XX``), and ``all``; raises ValueError for anything unknown.
    """
    matched: List[Type[Rule]] = []
    unknown: List[str] = []
    for token in (t.strip() for t in spec.split(",")):
        if not token:
            continue
        upper = token.upper()
        if upper == "ALL":
            hits = list(ALL_RULES)
        elif upper.endswith("XX") and len(upper) > 2:
            prefix = upper[:-2]
            hits = [c for c in ALL_RULES if c.rule_id.startswith(prefix)]
        else:
            hits = [c for c in ALL_RULES if c.rule_id == upper]
        if hits:
            matched.extend(h for h in hits if h not in matched)
        else:
            unknown.append(token)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return matched


def _explain(spec: str) -> int:
    try:
        rules = _match_rules(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    blocks: List[str] = []
    for cls in rules:
        lines = [f"{cls.rule_id} — {cls.name} [{cls.severity}, {cls.scope}]"]
        body = cls.rationale or cls.description
        lines.extend(
            textwrap.wrap(body, width=72, initial_indent="  ",
                          subsequent_indent="  ")
        )
        if cls.citation:
            lines.append(f"  Reference: {cls.citation}")
        blocks.append("\n".join(lines))
    print("\n\n".join(blocks))
    return 0


def _emit(rendered: str, output: Optional[str]) -> None:
    print(rendered)
    if output is not None:
        Path(output).write_text(rendered + "\n", encoding="utf-8")


def main(argv: Optional[List[str]] = None, prog: str = "repro-lint") -> int:
    args = build_parser(prog=prog).parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain)

    if args.list_rules:
        for cls in ALL_RULES:
            print(
                f"{cls.rule_id}  {cls.name:28s} "
                f"[{cls.severity}, {cls.scope}]"
            )
            print(f"        {cls.description}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        engine = LintEngine(
            rules=get_rules(select),
            project_analysis=not args.no_project,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).exists():
        baseline_path = DEFAULT_BASELINE_NAME

    if args.write_baseline:
        report = engine.run(paths, baseline=None)
        target = baseline_path or DEFAULT_BASELINE_NAME
        count = Baseline.write(target, report.findings)
        print(f"reprolint: wrote {count} finding(s) to {target}")
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            print(
                f"error: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2

    try:
        report = engine.run(paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.prune_baseline:
        if baseline is None:
            print("error: --prune-baseline needs a baseline", file=sys.stderr)
            return 2
        target = baseline_path or DEFAULT_BASELINE_NAME
        kept = Baseline.write(target, report.baselined)
        pruned = report.stale_baseline
        print(
            f"reprolint: pruned {pruned} stale entr"
            f"{'y' if pruned == 1 else 'ies'}, kept {kept} in {target}"
        )
        report.stale_baseline = 0

    if args.format == "json":
        _emit(render_json(report), args.output)
    else:
        _emit(render_text(report, show_baselined=args.show_baselined),
              args.output)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
