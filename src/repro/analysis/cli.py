"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean (no findings beyond the baseline); 1 — new
findings (or parse errors); 2 — usage errors (argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import LintEngine
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, get_rules


def build_parser(prog: str = "repro-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "reprolint: AST-based statistical-correctness linter for the "
            "OPIM reproduction (rule catalog: docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings matched by the baseline",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def main(argv: Optional[List[str]] = None, prog: str = "repro-lint") -> int:
    args = build_parser(prog=prog).parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.rule_id}  {cls.name:28s} [{cls.severity}]")
            print(f"        {cls.description}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        engine = LintEngine(rules=get_rules(select))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).exists():
        baseline_path = DEFAULT_BASELINE_NAME

    if args.write_baseline:
        report = engine.run(paths, baseline=None)
        target = baseline_path or DEFAULT_BASELINE_NAME
        count = Baseline.write(target, report.findings)
        print(f"reprolint: wrote {count} finding(s) to {target}")
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            print(
                f"error: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2

    try:
        report = engine.run(paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_baselined=args.show_baselined))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
