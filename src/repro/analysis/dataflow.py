"""Interprocedural dataflow passes shared by the RPR2xx rules.

Two taint lattices run over the :class:`~repro.analysis.callgraph
.CallGraph`:

* **δ-budget fractions** — every expression is abstracted to "a
  constant fraction *f* of budget parameter *p*", to the SCHEDULE
  element (a fraction with a non-constant divisor/exponent, i.e. a
  failure schedule such as ``delta / 2**i`` whose geometric sum stays
  under the budget by construction), or to ⊥ (not budget-derived).
  :func:`compute_delta_spend` then sums, per function and per budget
  parameter, the fractions that reach a *base consumer*
  (``sigma_lower_bound`` / ``sigma_upper_bound``, where a δ is
  irrevocably turned into a confidence statement) along any call
  path.  RPR202 flags functions whose summed spend exceeds 1.

* **RR-collection adoption** — :class:`AdoptionFlow` marks every
  object that flowed through an ``adopt_collections`` call (the
  shared-sketch idiom of the serve layer), propagating through local
  aliases, ``self.*`` attribute stores, container stores, and
  functions that return adopted objects.  RPR201 then checks that
  repeated selections on adopted objects go through an *adaptive*
  δ split (a division of a δ-named value by a non-constant
  expression, e.g. ``delta / 2**(queries_made+1)``) rather than a
  fixed one — fixed-split reuse is exactly the adaptivity leak of
  Chen (arXiv:1808.09363).

The module also hosts the small predicates RPR203/RPR205 share:
blocking-call classification and the finite-string-return check for
metric label values.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.callgraph import CallGraph, CallSite, walk_function_scope
from repro.analysis.project import FunctionInfo, Project

#: Parameter names treated as failure budgets (mirrors RPR102).
DELTA_PARAM_RE = re.compile(r"^(?:query_)?delta\d*$")

#: Attribute/name tails treated as δ-valued in adaptive-split scans.
DELTA_TAIL_RE = re.compile(r"(?:^|_)delta\d*$")

#: Functions where a δ fraction is irrevocably consumed.
BASE_CONSUMERS = frozenset({"sigma_lower_bound", "sigma_upper_bound"})


class _Schedule:
    """Lattice element for schedule-shaped (non-constant) fractions."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SCHEDULE"


SCHEDULE = _Schedule()

FracValue = Union[float, _Schedule]
#: ``(budget_param, fraction)`` — the abstract value of an expression.
Fraction = Tuple[str, FracValue]


def const_eval(expr: ast.expr) -> Optional[float]:
    """Evaluate a purely-literal arithmetic expression, else None."""
    if isinstance(expr, ast.Constant):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)
    if isinstance(expr, ast.UnaryOp) and isinstance(
        expr.op, (ast.USub, ast.UAdd)
    ):
        inner = const_eval(expr.operand)
        if inner is None:
            return None
        return -inner if isinstance(expr.op, ast.USub) else inner
    if isinstance(expr, ast.BinOp):
        left = const_eval(expr.left)
        right = const_eval(expr.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.Div):
                return left / right
            if isinstance(expr.op, ast.Pow):
                return float(left**right)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


def fraction_of(
    expr: ast.expr, env: Dict[str, Fraction]
) -> Optional[Fraction]:
    """Abstract *expr* to a fraction of a budget parameter under *env*.

    *env* maps names to known fractions (budget parameters start at
    ``(param, 1.0)``; locals derived from them are folded in by the
    caller).  Returns None when the expression is not budget-derived.
    """
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.Div):
            inner = fraction_of(expr.left, env)
            if inner is not None:
                param, frac = inner
                divisor = const_eval(expr.right)
                if (
                    divisor is None
                    or divisor == 0
                    or isinstance(frac, _Schedule)
                ):
                    return (param, SCHEDULE)
                return (param, frac / divisor)
        elif isinstance(expr.op, ast.Mult):
            for budget_side, factor_side in (
                (expr.left, expr.right),
                (expr.right, expr.left),
            ):
                inner = fraction_of(budget_side, env)
                if inner is not None:
                    param, frac = inner
                    factor = const_eval(factor_side)
                    if factor is None or isinstance(frac, _Schedule):
                        return (param, SCHEDULE)
                    return (param, frac * factor)
    return None


def local_fraction_env(fn: FunctionInfo) -> Dict[str, Fraction]:
    """Budget-fraction environment for *fn*'s body.

    Seeds every δ-named parameter at fraction 1.0 and folds in simple
    local derivations (``d1 = delta / 2``); two passes settle chains.
    """
    env: Dict[str, Fraction] = {
        p: (p, 1.0) for p in fn.params if DELTA_PARAM_RE.match(p)
    }
    if not env:
        return env
    for _ in range(2):
        for node in walk_function_scope(fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if DELTA_PARAM_RE.match(target.id):
                # Re-binding a budget parameter itself keeps identity.
                continue
            result = fraction_of(node.value, env)
            if result is not None:
                env[target.id] = result
    return env


@dataclass(frozen=True)
class Spend:
    """Summed consumption of one budget parameter inside a function."""

    amount: float = 0.0
    schedule: bool = False  # a schedule-shaped fraction also flows out


SpendSummary = Dict[str, Spend]


def _base_consumer_delta_arg(call: ast.Call) -> Optional[ast.expr]:
    """The ``delta`` argument of a sigma-bound call (kw or position 3)."""
    for keyword in call.keywords:
        if keyword.arg == "delta":
            return keyword.value
    if len(call.args) > 3 and not any(
        isinstance(a, ast.Starred) for a in call.args[:4]
    ):
        return call.args[3]
    return None


def compute_delta_spend(
    project: Project, graph: CallGraph
) -> Dict[str, SpendSummary]:
    """Per-function δ-spend summaries, to a fixpoint over the call graph.

    Each call site is counted **once** even inside loops: loops either
    re-derive fresh collections per iteration (ablation harnesses) or
    run under a schedule, and flagging them wholesale would drown the
    real signal.  The rule therefore catches *structural* over-spend —
    distinct call paths whose constant fractions sum past 1.
    """
    summaries: Dict[str, SpendSummary] = {}
    for fn in project.iter_functions():
        if fn.name in BASE_CONSUMERS:
            summaries[fn.qualname] = {
                p: Spend(1.0, False)
                for p in fn.params
                if DELTA_PARAM_RE.match(p)
            }
    for _ in range(8):
        changed = False
        for fn in project.iter_functions():
            if fn.name in BASE_CONSUMERS:
                continue
            summary = _spend_of(fn, project, graph, summaries)
            if summaries.get(fn.qualname) != summary:
                summaries[fn.qualname] = summary
                changed = True
        if not changed:
            break
    return summaries


def _spend_of(
    fn: FunctionInfo,
    project: Project,
    graph: CallGraph,
    summaries: Dict[str, SpendSummary],
) -> SpendSummary:
    env = local_fraction_env(fn)
    if not env:
        return {}
    amounts: Dict[str, float] = {}
    schedules: Set[str] = set()

    def add(result: Optional[Fraction], callee_spend: Spend) -> None:
        if result is None:
            return
        param, frac = result
        if isinstance(frac, _Schedule):
            schedules.add(param)
            return
        if callee_spend.schedule:
            schedules.add(param)
        amounts[param] = amounts.get(param, 0.0) + frac * callee_spend.amount

    for site in graph.sites_in(fn.qualname):
        if site.method_name in BASE_CONSUMERS:
            delta_arg = _base_consumer_delta_arg(site.node)
            if delta_arg is not None:
                add(fraction_of(delta_arg, env), Spend(1.0, False))
            continue
        for target in site.targets:
            callee_summary = summaries.get(target)
            callee = project.functions.get(target)
            if not callee_summary or callee is None:
                continue
            argmap = callee.param_for_call(site.node)
            for callee_param, arg in argmap.items():
                callee_spend = callee_summary.get(callee_param)
                if callee_spend is None or (
                    callee_spend.amount == 0.0 and not callee_spend.schedule
                ):
                    continue
                add(fraction_of(arg, env), callee_spend)
            break  # one resolved target per site; avoid double counting
    return {
        param: Spend(amounts.get(param, 0.0), param in schedules)
        for param in set(amounts) | schedules
    }


# ----------------------------------------------------------------------
# RR-collection adoption flow (RPR201)
# ----------------------------------------------------------------------

ADOPT_METHOD = "adopt_collections"

#: Methods that perform (or drive) seed selection on a collection.
SELECTION_METHODS = frozenset({"query", "query_all", "run_until"})


def _receiver_root(expr: ast.expr) -> Tuple[Optional[str], List[str]]:
    """Decompose ``a.b.c`` into ``("a", ["b", "c"])``."""
    attrs: List[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        return current.id, list(reversed(attrs))
    return None, []


class AdoptionFlow:
    """Which objects flowed through ``adopt_collections``.

    Tracks three facts to a fixpoint: per-function adopted local
    variables, adopted ``(class, attribute)`` slots (both plain and
    container-valued), and functions whose return value is adopted.
    """

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.adopted_vars: Dict[str, Set[str]] = {}
        self.adopted_attrs: Set[Tuple[str, str]] = set()
        self.returns_adopted: Set[str] = set()
        self.adoption_sites: List[CallSite] = [
            site
            for site in graph.sites
            if site.method_name == ADOPT_METHOD and site.receiver is not None
        ]
        for _ in range(8):
            if not self._propagate():
                break

    def _propagate(self) -> bool:
        changed = False
        # Seed: the receiver roots of every adoption call.
        for site in self.adoption_sites:
            root, attrs = _receiver_root(site.receiver)
            if root is None:
                continue
            fn = self.project.functions.get(site.caller)
            if root == "self" and fn is not None and fn.class_qualname:
                key = (fn.class_qualname, attrs[0]) if attrs else None
                if key and key not in self.adopted_attrs:
                    self.adopted_attrs.add(key)
                    changed = True
                if not attrs:
                    # ``self.adopt_collections(...)`` taints nothing new
                    # (the class itself is the adopter).
                    continue
            else:
                vars_here = self.adopted_vars.setdefault(site.caller, set())
                if root not in vars_here:
                    vars_here.add(root)
                    changed = True
        # Flow: aliases, attribute stores, returns.
        for fn in self.project.iter_functions():
            adopted = self.adopted_vars.setdefault(fn.qualname, set())
            for _ in range(2):
                for node in walk_function_scope(fn.node):
                    if isinstance(node, ast.Assign):
                        if not self.expr_adopted(fn, node.value):
                            continue
                        for target in node.targets:
                            changed |= self._mark_target(fn, adopted, target)
                    elif isinstance(node, ast.Return) and node.value is not None:
                        if (
                            self.expr_adopted(fn, node.value)
                            and fn.qualname not in self.returns_adopted
                        ):
                            self.returns_adopted.add(fn.qualname)
                            changed = True
        return changed

    def _mark_target(
        self, fn: FunctionInfo, adopted: Set[str], target: ast.expr
    ) -> bool:
        if isinstance(target, ast.Name):
            if target.id not in adopted:
                adopted.add(target.id)
                return True
            return False
        root, attrs = _receiver_root(
            target.value if isinstance(target, ast.Subscript) else target
        )
        if root == "self" and attrs and fn.class_qualname:
            key = (fn.class_qualname, attrs[0])
            if key not in self.adopted_attrs:
                self.adopted_attrs.add(key)
                return True
        return False

    def expr_adopted(self, fn: FunctionInfo, expr: ast.expr) -> bool:
        """Does *expr* evaluate to an adopted object?"""
        if isinstance(expr, ast.Name):
            return expr.id in self.adopted_vars.get(fn.qualname, set())
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            inner = expr.value if isinstance(expr, ast.Subscript) else expr
            root, attrs = _receiver_root(inner)
            if root == "self" and attrs and fn.class_qualname:
                return (fn.class_qualname, attrs[0]) in self.adopted_attrs
            if root is not None and not attrs:
                return root in self.adopted_vars.get(fn.qualname, set())
            return False
        if isinstance(expr, ast.Call):
            targets = self.graph.site_targets(expr)
            return bool(targets) and all(
                t in self.returns_adopted for t in targets
            )
        return False


def has_adaptive_split(fn: FunctionInfo) -> bool:
    """Does *fn* divide a δ-named value by a non-constant expression?

    Matches the simultaneous-guarantee schedule shapes
    (``delta / 2**(i+1)``, ``delta / (3 * i_max)``) and rejects fixed
    splits (``delta / 2.0``).
    """
    for node in walk_function_scope(fn.node):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
            continue
        left = node.left
        tail: Optional[str] = None
        if isinstance(left, ast.Name):
            tail = left.id
        elif isinstance(left, ast.Attribute):
            tail = left.attr
        if tail is None or not DELTA_TAIL_RE.search(tail):
            continue
        if const_eval(node.right) is None:
            return True
    return False


def reachable_adaptive_split(
    graph: CallGraph, project: Project, entry_qualnames: Tuple[str, ...]
) -> bool:
    """True when any function reachable from *entry_qualnames* computes
    an adaptive δ split."""
    for entry in entry_qualnames:
        for qualname in graph.reachable_functions(entry):
            fn = project.functions.get(qualname)
            if fn is not None and has_adaptive_split(fn):
                return True
    return False


# ----------------------------------------------------------------------
# Blocking-call classification (RPR203)
# ----------------------------------------------------------------------

#: Canonical dotted names that block the event loop outright.
BLOCKING_CANONICAL = frozenset(
    {
        "time.sleep",
        "open",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "socket.create_connection",
    }
)

#: File-I/O method names blocking regardless of receiver type.
BLOCKING_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Compute/sampling entry points that must stay on the executor thread.
BLOCKING_COMPUTE_METHODS = frozenset(
    {
        "fill",
        "sample_batch",
        "extend",
        "extend_to",
        "run_until",
        "answer",
        "query",
        "query_all",
        "save_index",
        "load_index",
    }
)

#: Receiver classes whose compute methods are known CPU/IPC-bound.
_COMPUTE_CLASS_NAMES = frozenset(
    {"SamplingPool", "RRSampler", "SeedQueryEngine", "OPIMSession", "OnlineOPIM"}
)
_COMPUTE_MODULE_MARKERS = ("sampling", "core", "serve.engine")


def _is_compute_receiver(project: Project, class_qualname: str) -> bool:
    info = project.classes.get(class_qualname)
    if info is None:
        return False
    if info.name in _COMPUTE_CLASS_NAMES:
        return True
    return any(
        marker in info.module.name for marker in _COMPUTE_MODULE_MARKERS
    )


def blocking_reason(project: Project, site: CallSite) -> Optional[str]:
    """Why *site* blocks the event loop, or None when it doesn't."""
    if site.canonical in BLOCKING_CANONICAL:
        return f"blocking call {site.canonical}()"
    method = site.method_name
    if method in BLOCKING_IO_METHODS and site.receiver is not None:
        return f"blocking file I/O .{method}()"
    if method in BLOCKING_COMPUTE_METHODS and site.receiver_classes:
        for class_qualname in site.receiver_classes:
            if _is_compute_receiver(project, class_qualname):
                simple = class_qualname.split(".")[-1]
                return f"CPU-bound {simple}.{method}()"
    return None


# ----------------------------------------------------------------------
# Finite-return check (RPR205)
# ----------------------------------------------------------------------


def finite_string_returns(fn: FunctionInfo) -> bool:
    """True when every return of *fn* is a string literal (so values
    used as metric labels have bounded cardinality)."""
    saw_return = False
    for node in walk_function_scope(fn.node):
        if isinstance(node, ast.Return):
            saw_return = True
            if not (
                isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                return False
    return saw_return
