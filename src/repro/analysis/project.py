"""Whole-program model for reprolint's interprocedural rules.

The RPR1xx family inspects one file at a time; that is structurally
blind to the bugs that matter most for a long-lived OPIM service — a
δ budget minted in ``core/`` and over-spent in ``serve/``, or an RR
collection shared through :meth:`~repro.core.opim.OnlineOPIM
.adopt_collections` and re-consumed without a fresh split (the failure
mode of Chen, arXiv:1808.09363).  This module builds the project-wide
substrate those rules (RPR2xx) reason over:

* :class:`ModuleInfo` — one parsed module with its import map, parent
  links, and ``noqa`` suppression map retained;
* :class:`ClassInfo` / :class:`FunctionInfo` — a qualified-name symbol
  table over every class, method, and function in the analyzed tree;
* attribute-type inference — ``self.sampler = SamplingPool(...)`` in
  ``__init__`` types ``self.sampler`` for every other method, including
  through ``@property`` forwarders and ``Dict[k, V]``-annotated
  containers (``self._sessions[k] = session``);
* :meth:`Project.resolve_class` / :meth:`Project.resolve_callable` —
  import-aware resolution of dotted references to symbols, with a
  simple-name fallback so fixture projects that merely *mimic* repo
  classes still resolve.

Everything is stdlib ``ast``; building the model for the full
``src/repro`` tree takes well under a second (the acceptance budget
for a whole analysis run is ten).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.suppressions import NoqaMap, noqa_lines
from repro.analysis.visitors import ImportMap, attach_parents, dotted_name

#: pseudo function name for a module's top-level statements.
MODULE_SCOPE = "<module>"


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed project."""

    name: str
    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: ImportMap
    noqa: NoqaMap

    @property
    def path_parts(self) -> Tuple[str, ...]:
        return tuple(Path(self.display_path).parts)


@dataclass
class FunctionInfo:
    """A function or method, addressable by qualified name."""

    qualname: str
    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_qualname: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def params(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        if self.class_qualname and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def param_for_call(
        self, call: ast.Call
    ) -> Dict[str, ast.expr]:
        """Map this function's parameter names to the call's arguments."""
        mapping: Dict[str, ast.expr] = {}
        params = self.params
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if position < len(params):
                mapping[params[position]] = arg
        for keyword in call.keywords:
            if keyword.arg is not None:
                mapping[keyword.arg] = keyword.value
        return mapping


@dataclass
class ClassInfo:
    """A class with method table and inferred attribute types."""

    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    #: attribute name -> class qualnames its values may have.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: container attribute name -> element class qualnames
    #: (``self._sessions[k] = session`` / ``Dict[int, OPIMSession]``).
    attr_value_types: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


def _module_name(path: Path) -> str:
    """Best-effort dotted module name for *path*.

    Inside a source tree the name is rooted at the innermost ``src``
    directory (``src/repro/serve/engine.py`` → ``repro.serve.engine``);
    elsewhere (test fixtures, ad-hoc trees) the relative path itself
    becomes the dotted name — uniqueness is all the analysis needs.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "src":
            parts = parts[anchor + 1:]
            break
    cleaned = [p for p in parts if p not in ("", ".", "..", "/")]
    return ".".join(cleaned) or path.stem


def _annotation_class_names(annotation: Optional[ast.expr]) -> List[str]:
    """Extract candidate class names from a return/attr annotation.

    Handles ``X``, ``"X"``, ``Optional[X]``, ``Dict[K, V]`` (yields the
    value type last), and ``Union[...]``/``X | Y`` members.
    """
    if annotation is None:
        return []
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return []
    names: List[str] = []
    def visit(node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted:
                names.append(dotted)
        elif isinstance(node, ast.Subscript):
            head = dotted_name(node.value) or ""
            inner = node.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            if head.split(".")[-1] in ("Dict", "dict", "Mapping", "DefaultDict"):
                elements = elements[1:]  # the value type carries objects
            for element in elements:
                visit(element)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            visit(node.left)
            visit(node.right)
    visit(annotation)
    return [n for n in names if n not in ("None", "Optional", "Any", "object")]


class Project:
    """Symbol table + type facts over a set of parsed modules."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: List[ModuleInfo] = list(modules)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._class_by_simple_name: Dict[str, List[str]] = {}
        self._function_by_suffix: Dict[str, List[str]] = {}
        for module in self.modules:
            self._index_module(module)
        for info in self.classes.values():
            self._infer_attr_types(info)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_info=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(qualname=qualname, module=module, node=node)
        self.classes[qualname] = info
        self._class_by_simple_name.setdefault(node.name, []).append(qualname)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(module, item, class_info=info)
                info.methods[item.name] = fn.qualname

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_info: Optional[ClassInfo],
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        if class_info is not None:
            qualname = f"{class_info.qualname}.{name}"
        else:
            qualname = f"{module.name}.{name}"
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            node=node,
            class_qualname=class_info.qualname if class_info else None,
        )
        self.functions[qualname] = info
        # Suffix index: "Class.method" and bare "function".
        if class_info is not None:
            suffix = f"{class_info.name}.{name}"
        else:
            suffix = name
        self._function_by_suffix.setdefault(suffix, []).append(qualname)
        return info

    # ------------------------------------------------------------------
    # Attribute-type inference
    # ------------------------------------------------------------------
    def _param_annotation_types(
        self, fn: FunctionInfo, name: str
    ) -> Set[str]:
        """Classes an identically-named parameter's annotation names."""
        args = fn.node.args  # type: ignore[attr-defined]
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg != name:
                continue
            types: Set[str] = set()
            for candidate in _annotation_class_names(arg.annotation):
                resolved = self.resolve_class(fn.module, candidate)
                if resolved is not None:
                    types.add(resolved.qualname)
            return types
        return set()

    def _infer_attr_types(self, info: ClassInfo) -> None:
        module = info.module
        for method_name, fn_qualname in info.methods.items():
            fn = self.functions[fn_qualname]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._record_annotation(info, target.attr, node.annotation)
                        if node.value is not None:
                            # ``self.sampler: Any = SamplingPool(...)``
                            # — the constructed type beats the (often
                            # deliberately loose) annotation.
                            types = self._expr_constructed_types(
                                module, node.value
                            )
                            if types:
                                info.attr_types.setdefault(
                                    target.attr, set()
                                ).update(types)
                elif isinstance(node, ast.Assign):
                    types = self._expr_constructed_types(module, node.value)
                    if not types and isinstance(node.value, ast.Name):
                        # ``self.engine = engine`` with an annotated
                        # parameter of the same name.
                        types = self._param_annotation_types(
                            fn, node.value.id
                        )
                    if not types:
                        continue
                    for target in node.targets:
                        self._record_assign_target(info, target, types)
        # Property forwarders: ``@property def online(self): return self._x``
        for method_name, fn_qualname in info.methods.items():
            fn = self.functions[fn_qualname]
            node = fn.node
            decorators = getattr(node, "decorator_list", [])
            is_property = any(
                (isinstance(d, ast.Name) and d.id == "property")
                or (isinstance(d, ast.Attribute) and d.attr in ("property", "cached_property"))
                for d in decorators
            )
            if not is_property:
                continue
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and isinstance(
                    stmt.value, ast.Attribute
                ):
                    value = stmt.value
                    if (
                        isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                        and value.attr in info.attr_types
                    ):
                        info.attr_types.setdefault(method_name, set()).update(
                            info.attr_types[value.attr]
                        )

    def _record_assign_target(
        self, info: ClassInfo, target: ast.expr, types: Set[str]
    ) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            info.attr_types.setdefault(target.attr, set()).update(types)
        elif isinstance(target, ast.Subscript):
            container = target.value
            if (
                isinstance(container, ast.Attribute)
                and isinstance(container.value, ast.Name)
                and container.value.id == "self"
            ):
                info.attr_value_types.setdefault(
                    container.attr, set()
                ).update(types)

    def _record_annotation(
        self, info: ClassInfo, attr: str, annotation: ast.expr
    ) -> None:
        for name in _annotation_class_names(annotation):
            resolved = self.resolve_class(info.module, name)
            if resolved is not None:
                target = (
                    info.attr_value_types
                    if "Dict" in ast.unparse(annotation)
                    else info.attr_types
                )
                target.setdefault(attr, set()).add(resolved.qualname)

    def _expr_constructed_types(
        self, module: ModuleInfo, expr: ast.expr
    ) -> Set[str]:
        """Class qualnames *expr* may evaluate to (constructors and
        annotated-return calls only; conservative otherwise)."""
        if isinstance(expr, ast.IfExp):
            return self._expr_constructed_types(
                module, expr.body
            ) | self._expr_constructed_types(module, expr.orelse)
        if not isinstance(expr, ast.Call):
            return set()
        dotted = dotted_name(expr.func)
        if dotted is None:
            return set()
        resolved = self.resolve_class(module, dotted)
        if resolved is not None:
            return {resolved.qualname}
        fn = self.resolve_callable(module, dotted)
        if fn is not None:
            returns = getattr(fn.node, "returns", None)
            types: Set[str] = set()
            for name in _annotation_class_names(returns):
                cls = self.resolve_class(fn.module, name)
                if cls is not None:
                    types.add(cls.qualname)
            return types
        return set()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_class(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[ClassInfo]:
        """Resolve a (possibly aliased) dotted reference to a class."""
        canonical = module.imports.resolve(dotted)
        if canonical in self.classes:
            return self.classes[canonical]
        local = f"{module.name}.{dotted}"
        if local in self.classes:
            return self.classes[local]
        simple = canonical.split(".")[-1]
        candidates = self._class_by_simple_name.get(simple, [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def resolve_callable(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[FunctionInfo]:
        """Resolve a dotted reference to a module-level function."""
        canonical = module.imports.resolve(dotted)
        if canonical in self.functions:
            return self.functions[canonical]
        local = f"{module.name}.{dotted}"
        if local in self.functions:
            return self.functions[local]
        simple = canonical.split(".")[-1]
        candidates = self._function_by_suffix.get(simple, [])
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None

    def method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        fn_qualname = info.methods.get(name)
        return self.functions.get(fn_qualname) if fn_qualname else None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())


def build_module(
    path: Path, display_path: str, source: str, tree: ast.Module
) -> ModuleInfo:
    """Wrap one already-parsed file as a :class:`ModuleInfo`."""
    attach_parents(tree)
    return ModuleInfo(
        name=_module_name(Path(display_path)),
        path=path,
        display_path=display_path,
        source=source,
        tree=tree,
        imports=ImportMap(tree),
        noqa=noqa_lines(source),
    )


def build_project(modules: Sequence[ModuleInfo]) -> Project:
    """Assemble the symbol table over *modules* (parse errors excluded)."""
    return Project(modules)
