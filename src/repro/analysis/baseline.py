"""Committed-baseline support.

A baseline file records known, accepted findings so that ``repro lint``
fails only on *new* violations.  Entries are stored in human-auditable
form (rule / path / message); matching is count-aware — if the baseline
records one occurrence and the tree now has two, the second one is
reported as new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.analysis.findings import Finding, Severity

PathLike = Union[str, Path]

BASELINE_VERSION = 1

#: Default committed baseline filename, looked up in the current
#: working directory by the CLI.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"


def _entry_fingerprint(rule: str, path: str, message: str) -> str:
    return Finding(
        path=path,
        line=0,
        col=0,
        rule_id=rule,
        severity=Severity.INFO,
        message=message,
    ).fingerprint


class Baseline:
    """An accepted-findings multiset keyed by finding fingerprint."""

    def __init__(self, counts: "Counter[str]" = None) -> None:
        self.counts: Counter = Counter(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint for f in findings))

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        counts: Counter = Counter()
        for entry in data.get("findings", []):
            counts[
                _entry_fingerprint(
                    str(entry["rule"]), str(entry["path"]), str(entry["message"])
                )
            ] += 1
        return cls(counts)

    @staticmethod
    def write(path: PathLike, findings: Iterable[Finding]) -> int:
        """Serialize *findings* as the new baseline; returns entry count."""
        entries = [
            {"rule": f.rule_id, "path": f.path, "message": f.message}
            for f in sorted(findings)
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        return len(entries)

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into ``(new, baselined)``."""
        remaining = Counter(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if remaining.get(finding.fingerprint, 0) > 0:
                remaining[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def unmatched(self, findings: Iterable[Finding]) -> int:
        """Baseline entries the current tree no longer produces.

        Nonzero means accepted debt was paid down but the baseline
        still grants credit for it; prune (``--prune-baseline``) so the
        ratchet cannot regrow — a fixed finding that reappears must
        surface as *new*, not silently re-absorb the stale entry.
        """
        remaining = Counter(self.counts)
        for finding in findings:
            if remaining.get(finding.fingerprint, 0) > 0:
                remaining[finding.fingerprint] -= 1
        return sum(count for count in remaining.values() if count > 0)
