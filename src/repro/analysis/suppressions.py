"""``# repro: noqa[RULE-ID]`` suppression comments.

Syntax (on the line carrying the finding):

* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa[RPR103]`` — suppress one rule;
* ``# repro: noqa[RPR103, RPR105]`` — suppress several.

Suppressions are scanned with :mod:`tokenize` so that ``#`` characters
inside string literals never register as comments; on tokenizer failure
(the linter may be pointed at files the parser itself rejected) a
conservative per-line regex fallback is used.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

from repro.analysis.findings import Finding

#: line -> None (suppress all rules) or the set of suppressed rule ids.
NoqaMap = Dict[int, Optional[FrozenSet[str]]]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9,\s_-]+)\])?",
)


def _parse_comment(line: int, comment: str, result: NoqaMap) -> None:
    match = _NOQA_RE.search(comment)
    if not match:
        return
    rules = match.group("rules")
    if rules is None:
        result[line] = None
        return
    ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
    previous = result.get(line, frozenset())
    if previous is None or not ids:
        result[line] = previous  # blanket noqa already wins
    else:
        result[line] = previous | ids


def noqa_lines(source: str) -> NoqaMap:
    """Map line numbers to their ``repro: noqa`` suppressions."""
    result: NoqaMap = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                _parse_comment(tok.start[0], tok.string, result)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                _parse_comment(lineno, line, result)
    return result


def is_suppressed(finding: Finding, noqa: NoqaMap) -> bool:
    """True when *finding*'s line carries a matching suppression."""
    if finding.line not in noqa:
        return False
    rules = noqa[finding.line]
    return rules is None or finding.rule_id.upper() in rules
