"""Call-graph construction over a :class:`~repro.analysis.project.Project`.

The graph answers the one question every RPR2xx rule asks: *which
function bodies can this call site reach?*  Resolution is deliberately
conservative-but-useful rather than complete:

* plain calls (``extend_stream(...)``) resolve through each module's
  :class:`~repro.analysis.visitors.ImportMap` and the project symbol
  table;
* method calls resolve through a per-function **type environment**:
  ``self`` is the enclosing class, annotated parameters contribute
  their annotation classes, and local variables pick up types from
  constructor calls, annotated-return calls, ``self.attr`` loads
  (using the project's inferred attribute types, including ``@property``
  forwarders), and container subscripts
  (``self._sessions[k]`` → the ``Dict[int, OPIMSession]`` value type);
* anything unresolvable stays an *external* edge carrying only its
  canonical dotted name — enough for rules keyed on stdlib names
  (``time.sleep``, ``multiprocessing.shared_memory.SharedMemory``).

Edges record whether the call site sits inside a loop and whether its
enclosing function is async, which RPR201/RPR203 consume directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.project import (
    MODULE_SCOPE,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.visitors import dotted_name

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_function_scope(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, excluding nested def/lambda
    bodies (each is its own scope and, for RPR203, its own execution
    context — a lambda handed to ``run_in_executor`` never blocks the
    event loop)."""
    return walk_function_scope_body(list(getattr(fn_node, "body", [])))


@dataclass
class CallSite:
    """One call expression, annotated with everything resolution found."""

    caller: str  # qualname of the enclosing function, or "<module>" scope
    module: ModuleInfo
    node: ast.Call
    callee_text: str  # the call target as written (dotted)
    canonical: str  # import-resolved dotted name
    targets: Tuple[str, ...] = ()  # resolved FunctionInfo qualnames
    receiver: Optional[ast.expr] = None  # expr before the final attr, if any
    receiver_classes: Tuple[str, ...] = ()  # inferred receiver class qualnames
    in_loop: bool = False
    in_async: bool = False

    @property
    def method_name(self) -> str:
        return self.canonical.split(".")[-1]


class TypeEnv:
    """Flow-insensitive local-variable typing for one function body."""

    def __init__(self) -> None:
        self.vars: Dict[str, Set[str]] = {}

    def add(self, name: str, classes: Set[str]) -> None:
        if classes:
            self.vars.setdefault(name, set()).update(classes)

    def get(self, name: str) -> Set[str]:
        return self.vars.get(name, set())


class CallGraph:
    """Call sites + resolved edges for every function in a project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.sites: List[CallSite] = []
        self.by_caller: Dict[str, List[CallSite]] = {}
        self.site_by_node: Dict[int, CallSite] = {}
        self._envs: Dict[str, TypeEnv] = {}
        for fn in project.iter_functions():
            self._envs[fn.qualname] = self._build_env(fn)
        for fn in project.iter_functions():
            self._collect_sites(fn)
        for module in project.modules:
            self._collect_module_scope(module)

    # ------------------------------------------------------------------
    # Type environments
    # ------------------------------------------------------------------
    def env(self, qualname: str) -> TypeEnv:
        return self._envs.get(qualname, TypeEnv())

    def _build_env(self, fn: FunctionInfo) -> TypeEnv:
        from repro.analysis.project import _annotation_class_names

        env = TypeEnv()
        if fn.class_qualname:
            env.add("self", {fn.class_qualname})
        args = fn.node.args  # type: ignore[attr-defined]
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            for name in _annotation_class_names(arg.annotation):
                resolved = self.project.resolve_class(fn.module, name)
                if resolved is not None:
                    env.add(arg.arg, {resolved.qualname})
        # Two passes so ``a = make(); b = a`` types ``b``.
        for _ in range(2):
            for node in walk_function_scope(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                types = self._expr_types(fn, env, node.value)
                if not types:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env.add(target.id, types)
        return env

    def _expr_types(
        self, fn: FunctionInfo, env: TypeEnv, expr: ast.expr
    ) -> Set[str]:
        """Classes *expr* may evaluate to, under *env*."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_types(fn, env, expr.value)
            out: Set[str] = set()
            for class_qualname in base:
                info = self.project.classes.get(class_qualname)
                if info is not None:
                    out.update(info.attr_types.get(expr.attr, set()))
            return out
        if isinstance(expr, ast.Subscript):
            container = expr.value
            if isinstance(container, ast.Attribute):
                base = self._expr_types(fn, env, container.value)
                out = set()
                for class_qualname in base:
                    info = self.project.classes.get(class_qualname)
                    if info is not None:
                        out.update(
                            info.attr_value_types.get(container.attr, set())
                        )
                return out
            return set()
        if isinstance(expr, ast.IfExp):
            return self._expr_types(fn, env, expr.body) | self._expr_types(
                fn, env, expr.orelse
            )
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None:
                constructed = self.project.resolve_class(fn.module, dotted)
                if constructed is not None:
                    return {constructed.qualname}
                # Annotated-return resolution, both plain functions and
                # methods on typed receivers.
                for target in self._call_targets(fn, env, expr):
                    target_fn = self.project.functions.get(target)
                    if target_fn is None:
                        continue
                    returns = getattr(target_fn.node, "returns", None)
                    out = set()
                    from repro.analysis.project import _annotation_class_names

                    for name in _annotation_class_names(returns):
                        cls = self.project.resolve_class(
                            target_fn.module, name
                        )
                        if cls is not None:
                            out.add(cls.qualname)
                    if out:
                        return out
            return set()
        return set()

    # ------------------------------------------------------------------
    # Site collection
    # ------------------------------------------------------------------
    def _call_targets(
        self, fn: Optional[FunctionInfo], env: TypeEnv, call: ast.Call
    ) -> List[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return []
        module = fn.module if fn is not None else None
        if isinstance(call.func, ast.Attribute) and fn is not None:
            receiver = call.func.value
            method = call.func.attr
            targets: List[str] = []
            for class_qualname in self._expr_types(fn, env, receiver):
                target = self.project.method(class_qualname, method)
                if target is not None:
                    targets.append(target.qualname)
            if targets:
                return targets
        if module is not None:
            resolved = self.project.resolve_callable(module, dotted)
            if resolved is not None:
                return [resolved.qualname]
        return []

    def _make_site(
        self,
        caller: str,
        module: ModuleInfo,
        fn: Optional[FunctionInfo],
        env: TypeEnv,
        call: ast.Call,
        in_async: bool,
        loop_depth_nodes: Set[int],
    ) -> Optional[CallSite]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        receiver: Optional[ast.expr] = None
        receiver_classes: Tuple[str, ...] = ()
        if isinstance(call.func, ast.Attribute):
            receiver = call.func.value
            if fn is not None:
                receiver_classes = tuple(
                    sorted(self._expr_types(fn, env, receiver))
                )
        site = CallSite(
            caller=caller,
            module=module,
            node=call,
            callee_text=dotted,
            canonical=module.imports.resolve(dotted),
            targets=tuple(self._call_targets(fn, env, call)),
            receiver=receiver,
            receiver_classes=receiver_classes,
            in_loop=id(call) in loop_depth_nodes,
            in_async=in_async,
        )
        self.sites.append(site)
        self.by_caller.setdefault(caller, []).append(site)
        self.site_by_node[id(call)] = site
        return site

    def _collect_scope(
        self,
        caller: str,
        module: ModuleInfo,
        fn: Optional[FunctionInfo],
        env: TypeEnv,
        body: Sequence[ast.stmt],
        in_async: bool,
    ) -> None:
        # One walk marking which call nodes sit under a loop.
        in_loop_ids: Set[int] = set()

        def mark(node: ast.AST, looped: bool) -> None:
            if isinstance(node, ast.Call) and looped:
                in_loop_ids.add(id(node))
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SCOPE_NODES):
                    continue
                mark(child, looped or isinstance(node, _LOOP_NODES))

        for stmt in body:
            if not isinstance(stmt, _SCOPE_NODES):
                mark(stmt, False)

        for node in walk_function_scope_body(body):
            if isinstance(node, ast.Call):
                self._make_site(
                    caller, module, fn, env, node, in_async, in_loop_ids
                )

    def _collect_sites(self, fn: FunctionInfo) -> None:
        env = self._envs[fn.qualname]
        self._collect_scope(
            caller=fn.qualname,
            module=fn.module,
            fn=fn,
            env=env,
            body=list(fn.node.body),  # type: ignore[attr-defined]
            in_async=fn.is_async,
        )

    def _collect_module_scope(self, module: ModuleInfo) -> None:
        body = [
            stmt
            for stmt in module.tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        self._collect_scope(
            caller=f"{module.name}.{MODULE_SCOPE}",
            module=module,
            fn=None,
            env=TypeEnv(),
            body=body,
            in_async=False,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sites_in(self, qualname: str) -> List[CallSite]:
        return self.by_caller.get(qualname, [])

    def site_targets(self, call: ast.Call) -> Tuple[str, ...]:
        """Resolved targets for a call node already collected as a site."""
        site = self.site_by_node.get(id(call))
        return site.targets if site is not None else ()

    def reachable_functions(
        self, start: str, max_depth: int = 8
    ) -> Set[str]:
        """Function qualnames reachable from *start* via resolved edges."""
        seen: Set[str] = {start}
        frontier = [start]
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: List[str] = []
            for caller in frontier:
                for site in self.sites_in(caller):
                    for target in site.targets:
                        if target not in seen:
                            seen.add(target)
                            next_frontier.append(target)
            frontier = next_frontier
            depth += 1
        return seen


def walk_function_scope_body(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk *body* without descending into nested def/lambda scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))
