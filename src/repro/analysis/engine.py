"""Lint engine: file discovery, parsing, rule dispatch, reporting glue.

The engine is deliberately dependency-free (stdlib ``ast`` only) so it
can run in any environment the library itself runs in — including CI
images without the ``lint`` extra installed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import get_rules
from repro.analysis.rules.base import Rule
from repro.analysis.rules.project_base import ProjectRule
from repro.analysis.suppressions import is_suppressed, noqa_lines

PathLike = Union[str, Path]

#: rule id reserved for files the parser rejects.
PARSE_ERROR_RULE = "RPR000"

_SKIP_DIR_PREFIXES = (".",)
_SKIP_DIR_NAMES = {"__pycache__", "build", "dist"}


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module

    @property
    def path_parts(self) -> Tuple[str, ...]:
        return PurePosixPath(self.display_path).parts


@dataclass
class LintReport:
    """Outcome of one engine run.

    ``exit_code`` is the single source of truth for the CLI, whatever
    the output format: 0 — clean (baselined/suppressed findings do not
    count), 1 — new findings, 2 — usage or internal errors (set by the
    CLI layer, never here).  ``stale_baseline`` counts baseline entries
    the tree no longer produces — the ratchet surface: prune them so
    the accepted-debt count can only go down.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    stale_baseline: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _display_path(path: Path) -> str:
    """Stable, cwd-relative posix path for messages and baselines."""
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(Path.cwd())
    except ValueError:
        rel = resolved
    return rel.as_posix()


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                found.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(
                    part in _SKIP_DIR_NAMES
                    or part.startswith(_SKIP_DIR_PREFIXES)
                    for part in parts[:-1]
                ):
                    continue
                found.append(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return found


class LintEngine:
    """Run a set of rules over files, applying noqa suppressions.

    File rules run per parsed file; :class:`ProjectRule` instances run
    once against the whole-program symbol table built from every file
    of the invocation (skipped under ``project_analysis=False`` or
    when only file rules are selected).
    """

    def __init__(
        self,
        rules: Optional[Iterable[Rule]] = None,
        project_analysis: bool = True,
    ) -> None:
        all_rules: List[Rule] = (
            list(rules) if rules is not None else get_rules()
        )
        self.rules: List[Rule] = [
            r for r in all_rules if not isinstance(r, ProjectRule)
        ]
        self.project_rules: List[ProjectRule] = (
            [r for r in all_rules if isinstance(r, ProjectRule)]
            if project_analysis
            else []
        )

    # ------------------------------------------------------------------
    # Single-file interface (used heavily by tests)
    # ------------------------------------------------------------------
    def _lint_source_ctx(
        self, source: str, path: PathLike
    ) -> Tuple[List[Finding], int, Optional[FileContext]]:
        display = (
            _display_path(Path(path))
            if path != "<string>"
            else "<string>"
        )
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            finding = Finding(
                path=display,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule_id=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
            return [finding], 0, None
        ctx = FileContext(
            path=Path(path), display_path=display, source=source, tree=tree
        )
        raw: List[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check(ctx))
        noqa = noqa_lines(source)
        kept = [f for f in raw if not is_suppressed(f, noqa)]
        kept.sort()
        return kept, len(raw) - len(kept), ctx

    def lint_source(
        self, source: str, path: PathLike = "<string>"
    ) -> Tuple[List[Finding], int]:
        """Lint *source* with the file rules; returns
        ``(findings, suppressed_count)``.  Project rules need the whole
        tree and only run through :meth:`run`."""
        findings, suppressed, _ = self._lint_source_ctx(source, path)
        return findings, suppressed

    def lint_file(self, path: PathLike) -> Tuple[List[Finding], int]:
        source = Path(path).read_text(encoding="utf-8")
        return self.lint_source(source, path)

    # ------------------------------------------------------------------
    # Project pass
    # ------------------------------------------------------------------
    def _run_project_rules(
        self, contexts: List[FileContext]
    ) -> Tuple[List[Finding], int]:
        """Run the RPR2xx pass over every parsed file; returns
        ``(findings, suppressed_count)``."""
        from repro.analysis.callgraph import CallGraph
        from repro.analysis.project import build_module, build_project

        modules = [
            build_module(ctx.path, ctx.display_path, ctx.source, ctx.tree)
            for ctx in contexts
        ]
        project = build_project(modules)
        graph = CallGraph(project)
        noqa_by_path = {m.display_path: m.noqa for m in modules}
        findings: List[Finding] = []
        suppressed = 0
        for rule in self.project_rules:
            for finding in rule.check_project(project, graph):
                noqa = noqa_by_path.get(finding.path)
                if noqa is not None and is_suppressed(finding, noqa):
                    suppressed += 1
                else:
                    findings.append(finding)
        return findings, suppressed

    # ------------------------------------------------------------------
    # Tree interface
    # ------------------------------------------------------------------
    def run(
        self,
        paths: Sequence[PathLike],
        baseline: Optional[Baseline] = None,
    ) -> LintReport:
        report = LintReport()
        all_findings: List[Finding] = []
        contexts: List[FileContext] = []
        for path in iter_python_files(paths):
            source = Path(path).read_text(encoding="utf-8")
            findings, suppressed, ctx = self._lint_source_ctx(source, path)
            all_findings.extend(findings)
            report.suppressed += suppressed
            report.files_checked += 1
            if ctx is not None:
                contexts.append(ctx)
        if self.project_rules and contexts:
            project_findings, suppressed = self._run_project_rules(contexts)
            all_findings.extend(project_findings)
            report.suppressed += suppressed
        all_findings.sort()
        if baseline is not None:
            report.findings, report.baselined = baseline.partition(
                all_findings
            )
            report.stale_baseline = baseline.unmatched(all_findings)
        else:
            report.findings = all_findings
        return report


def run_lint(
    paths: Sequence[PathLike],
    baseline_path: Optional[PathLike] = None,
    select: Optional[Iterable[str]] = None,
    project_analysis: bool = True,
) -> LintReport:
    """Convenience wrapper: lint *paths* with an optional baseline file."""
    baseline = None
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = Baseline.load(baseline_path)
    engine = LintEngine(
        rules=get_rules(select), project_analysis=project_analysis
    )
    return engine.run(paths, baseline=baseline)
