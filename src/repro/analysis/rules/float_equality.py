"""RPR104 — float-probability equality hygiene.

Edge probabilities, spreads, and failure budgets are floats produced by
chains of rounding arithmetic; exact ``==`` / ``!=`` against them is
almost always a latent bug (the comparison silently flips when an
upstream formula is re-associated).  The rule flags equality
comparisons where a top-level operand is

* a name or attribute that matches the probability lexicon
  (``prob``/``weight``/``alpha``/``delta``/``epsilon``/... including
  ``*_prob``-style suffixes), compared against anything numeric, or
* a float literal strictly inside ``(0, 1)`` — a bare probability
  constant — compared against anything.

Comparisons against strings, ``None``, or booleans are ignored, as are
attribute accesses like ``probs.shape`` whose final attribute is not
itself probability-named (shape/size checks are integral and exact).
Intentional exact comparisons take ``# repro: noqa[RPR104]``.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule

_PROB_NAME = re.compile(
    r"(?:^|_)(?:p|q|prob|probs|probability|probabilities|weight|weights|"
    r"alpha|delta\d*|epsilon|eps|threshold)$"
)


def _identifier(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_prob_name(node: ast.AST) -> bool:
    return bool(_PROB_NAME.search(_identifier(node)))


def _is_prob_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and 0.0 < node.value < 1.0
    )


def _is_non_numeric_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bytes, bool))
    )


class FloatEqualityRule(Rule):
    rule_id = "RPR104"
    name = "float-probability-equality"
    severity = Severity.WARNING
    description = (
        "No ==/!= on float-typed probability expressions; compare with "
        "tolerances or ordered operators."
    )

    def check(self, ctx) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_non_numeric_constant(op) for op in operands):
                continue
            prob_named = [op for op in operands if _is_prob_name(op)]
            prob_literals = [op for op in operands if _is_prob_literal(op)]
            if not prob_named and not prob_literals:
                continue
            subject = (
                _identifier(prob_named[0])
                if prob_named
                else repr(prob_literals[0].value)  # type: ignore[attr-defined]
            )
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"exact ==/!= on float probability expression "
                    f"{subject!r}; use an ordered comparison or an "
                    "explicit tolerance (math.isclose)",
                )
            )
        return findings
