"""Base class for project-scope (interprocedural) rules.

A :class:`ProjectRule` runs once per lint invocation, after every file
has been parsed, against the whole-program
:class:`~repro.analysis.project.Project` and its
:class:`~repro.analysis.callgraph.CallGraph`.  Its findings carry the
same shape as file findings — same fingerprinting, baselining, and
``# repro: noqa[RPR2xx]`` suppression semantics apply.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.engine import FileContext
    from repro.analysis.project import ModuleInfo, Project


class ProjectRule(Rule):
    """A rule over the whole project rather than one file."""

    scope = "project"

    def check(self, ctx: "FileContext") -> List[Finding]:
        # Project rules contribute nothing in the per-file pass.
        return []

    def check_project(
        self, project: "Project", graph: "CallGraph"
    ) -> List[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
        )
