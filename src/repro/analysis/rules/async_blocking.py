"""RPR203 — blocking call reachable from an async serve handler.

The serve layer's contract (``serve/server.py`` docstring) is that the
event loop only parses HTTP and consults caches; all CPU-bound sketch
work crosses to the single engine thread via ``run_in_executor``.  A
synchronous sampler/pool/engine call — or plain file I/O — executed
directly inside an ``async def`` stalls every in-flight connection for
the duration of the call.

The rule inspects every ``async def`` in ``serve`` modules and flags
non-awaited calls that block: known blocking primitives
(``time.sleep``, ``open``, ``subprocess.*``, ``Path.read_text``-style
I/O) and compute entry points (``fill`` / ``extend`` / ``run_until`` /
``answer`` …) on sampler/engine-typed receivers, including calls that
reach such work transitively through synchronous helpers.  Work routed
through ``run_in_executor`` is exempt by construction: executor jobs
are closures (lambdas / nested defs), which are separate scopes the
analysis does not treat as event-loop code.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.dataflow import blocking_reason
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.project_base import ProjectRule
from repro.analysis.visitors import parent_of


class AsyncBlockingRule(ProjectRule):
    rule_id = "RPR203"
    name = "async-blocking-call"
    severity = Severity.WARNING
    description = (
        "async defs in serve/ must not invoke blocking sampler/engine "
        "work or file I/O directly; route it through run_in_executor."
    )
    rationale = (
        "The asyncio server multiplexes every connection on one event "
        "loop; a single synchronous SamplingPool.fill or engine query "
        "inside an async handler freezes health checks, metrics "
        "scrapes, and all concurrent queries until it returns. The "
        "serving design funnels CPU-bound sketch work through a "
        "one-thread executor — this rule pins that invariant so a "
        "refactor cannot quietly reintroduce a blocking path."
    )
    citation = "Tang et al. SIGMOD 2018, Section 6 (online processing)"

    def check_project(self, project, graph) -> List[Finding]:
        findings: List[Finding] = []
        for fn in project.iter_functions():
            if not fn.is_async or "serve" not in fn.module.name:
                continue
            for site in graph.sites_in(fn.qualname):
                if isinstance(parent_of(site.node), ast.Await):
                    # Awaited: a coroutine (checked on its own) or a
                    # run_in_executor hop — either way not a stall.
                    continue
                reason = blocking_reason(project, site)
                via: Optional[str] = None
                if reason is None:
                    reason, via = self._transitive_reason(project, graph, site)
                if reason is None:
                    continue
                path = f" (via {via})" if via else ""
                findings.append(
                    self.project_finding(
                        site.module,
                        site.node,
                        f"{reason} reachable from async {fn.name}(){path} "
                        "blocks the event loop; run it on the engine "
                        "executor (loop.run_in_executor)",
                    )
                )
        return findings

    @staticmethod
    def _transitive_reason(
        project, graph, site
    ) -> Tuple[Optional[str], Optional[str]]:
        """Blocking work reached through synchronous helper calls."""
        for target in site.targets:
            target_fn = project.functions.get(target)
            if target_fn is None or target_fn.is_async:
                continue
            for qualname in sorted(
                graph.reachable_functions(target, max_depth=6)
            ):
                for inner in graph.sites_in(qualname):
                    reason = blocking_reason(project, inner)
                    if reason is not None:
                        short = qualname.split(".")
                        via = ".".join(short[-2:]) if len(short) > 1 else qualname
                        return reason, f"{via}()"
        return None, None
