"""RPR107 — hot paths take an injected registry, never build their own.

The observability contract (PR 1, docs/observability.md) is that every
instrumented component accepts a registry object and resolves it with
``resolve_registry`` — ``None`` becomes the shared ``NULL_REGISTRY``
and instrumentation costs nothing.  A ``MetricsRegistry()`` constructed
*inside* a hot-path module breaks that contract twice over: the caller
can no longer turn instrumentation off, and the private registry's
counters and spans are invisible to the process-wide ``/metrics``
scrape and trace sink.  Only composition roots (the CLI, tests,
benchmarks) should construct registries; library code in ``sampling/``,
``core/``, ``maxcover/``, and ``serve/`` must receive one.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule
from repro.analysis.visitors import ImportMap

#: canonical names whose construction is reserved for composition roots.
_REGISTRY_CONSTRUCTORS = frozenset(
    {
        "repro.obs.MetricsRegistry",
        "repro.obs.registry.MetricsRegistry",
    }
)

#: a file is "instrumented hot path" when any of these appears in it.
HOT_PATH_PARTS = frozenset({"sampling", "core", "maxcover", "serve"})


class RegistryInjectionRule(Rule):
    rule_id = "RPR107"
    name = "registry-injection"
    severity = Severity.WARNING
    description = (
        "Instrumented hot paths (sampling/, core/, maxcover/, serve/) "
        "must accept an injected registry, not construct MetricsRegistry."
    )

    def check(self, ctx) -> List[Finding]:
        if not HOT_PATH_PARTS & set(ctx.path_parts):
            return []
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve_call(node)
            if canonical not in _REGISTRY_CONSTRUCTORS:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "MetricsRegistry() constructed inside a hot path; "
                    "accept a registry parameter and pass it through "
                    "resolve_registry so callers control instrumentation",
                )
            )
        return findings
