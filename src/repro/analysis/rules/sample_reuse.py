"""RPR201 — adaptive sample reuse without a fresh δ split.

The serve layer shares one R1/R2 RR-sketch across every query via
:meth:`~repro.core.opim.OnlineOPIM.adopt_collections`.  That is sound
*only* if each successive selection on the shared collections runs
under a fresh slice of the failure budget — the simultaneous-guarantee
schedule ``delta / 2^i`` (Section 4, "Discussions").  Re-running a
selection with a *fixed* split (``delta / 2``) on samples that already
influenced a previous answer is adaptive reuse: the martingale
concentration argument no longer applies and the reported guarantees
silently void (Chen, arXiv:1808.09363).

The rule tracks every object that flowed through ``adopt_collections``
(through aliases, attribute stores, and returning functions) and flags
selection calls (``query`` / ``query_all`` / ``run_until``) on adopted
objects that repeat — a second call, or a call in a loop — when no
function reachable from the selection computes an adaptive split (a
δ-named value divided by a non-constant expression).
"""

from __future__ import annotations

from typing import List

from repro.analysis.dataflow import (
    SELECTION_METHODS,
    AdoptionFlow,
    reachable_adaptive_split,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.project_base import ProjectRule


class SampleReuseRule(ProjectRule):
    rule_id = "RPR201"
    name = "adaptive-sample-reuse"
    severity = Severity.ERROR
    description = (
        "RR collections shared via adopt_collections must not be "
        "re-selected under a fixed delta split; repeated queries need "
        "the adaptive delta/2^i schedule."
    )
    rationale = (
        "RR samples that already influenced a reported answer are no "
        "longer independent of the next selection; the OPIM martingale "
        "bounds (Lemma 4.4) assume each query's failure budget covers "
        "fresh randomness. Sharing one sketch across queries is sound "
        "only under a failure schedule whose per-query budgets sum "
        "below delta (e.g. delta/2^i). A fixed delta/2 split re-applied "
        "to the same adopted collections is exactly the adaptivity leak "
        "that breaks IMM-style guarantees."
    )
    citation = "Chen, arXiv:1808.09363; Tang et al. SIGMOD 2018, Section 4"

    def check_project(self, project, graph) -> List[Finding]:
        flow = AdoptionFlow(project, graph)
        if not flow.adoption_sites:
            return []
        findings: List[Finding] = []
        for caller, sites in graph.by_caller.items():
            fn = project.functions.get(caller)
            if fn is None:
                continue
            selections = sorted(
                (
                    site
                    for site in sites
                    if site.method_name in SELECTION_METHODS
                    and site.receiver is not None
                    and flow.expr_adopted(fn, site.receiver)
                ),
                key=lambda s: (s.node.lineno, s.node.col_offset),
            )
            for index, site in enumerate(selections):
                if not (site.in_loop or index >= 1):
                    continue
                if not site.targets:
                    # Unresolvable selection: stay silent rather than
                    # guess (the committed tree resolves everything
                    # that matters).
                    continue
                if reachable_adaptive_split(graph, project, site.targets):
                    continue
                shape = "in a loop" if site.in_loop else "a second time"
                findings.append(
                    self.project_finding(
                        site.module,
                        site.node,
                        f"adopted RR collections are re-selected {shape} "
                        f"via {site.callee_text}() without a fresh delta "
                        "split (no adaptive delta/2^i schedule on the "
                        "selection path); adaptive sample reuse voids "
                        "the martingale guarantee (Chen, arXiv:1808.09363)",
                    )
                )
        return findings
