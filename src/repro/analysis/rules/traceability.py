"""RPR106 — paper traceability of public math functions.

``repro.core`` and ``repro.bounds`` implement numbered equations,
lemmas, and algorithms from the paper; reviewers check an
implementation *against its reference*, so every public module-level
function in those packages must cite one in its docstring — ``Eq. 5``,
``Eqs. 8/13/15``, ``Lemma 4.4``, ``Theorem 1``, ``Algorithm 2``,
``Section 3.3``, ``Table 1``, or ``Figure 6``.  Engineering helpers
with no paper anchor (e.g. checkpoint persistence) are recorded in the
committed baseline instead of being force-fitted with a citation.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule

#: packages whose public functions must cite the paper.
TRACEABLE_PARTS = frozenset({"core", "bounds"})

_TAG = re.compile(
    r"(?:\bEqs?\.\s*\d)"
    r"|(?:\b(?:Lemma|Theorem|Corollary|Algorithm|Section|Table|Figure)\s+\d)"
)


class TraceabilityRule(Rule):
    rule_id = "RPR106"
    name = "paper-traceability"
    severity = Severity.INFO
    description = (
        "Public functions in core/ and bounds/ must cite an Eq./Lemma/"
        "Algorithm/Section tag in their docstring."
    )

    def check(self, ctx) -> List[Finding]:
        if not TRACEABLE_PARTS & set(ctx.path_parts):
            return []
        findings: List[Finding] = []
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            doc = ast.get_docstring(node)
            if doc is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"public function {node.name!r} has no docstring "
                        "(and therefore no paper reference)",
                    )
                )
            elif not _TAG.search(doc):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"public function {node.name!r} cites no paper "
                        "reference (Eq./Lemma/Theorem/Algorithm/Section "
                        "tag) in its docstring",
                    )
                )
        return findings
