"""RPR103 — RNG determinism.

Every stochastic component in this library must draw randomness from an
injected ``numpy.random.Generator`` normalized through
``repro.utils.rng``.  Three patterns break replayability and are
flagged everywhere outside ``repro/utils/rng.py``:

* calls to the legacy global-state API (``np.random.rand``,
  ``np.random.seed``, ...) or to the stdlib ``random`` module's
  module-level functions — hidden global state that cross-contaminates
  independent runs;
* ``np.random.default_rng()`` with no arguments — an OS-seeded
  generator whose entropy is never recorded, so the run can never be
  replayed;
* *any* ``numpy.random`` / ``random`` call executed at module import
  time, including seeded ones — import order becomes part of the seed.

Constructing ``Generator`` / ``SeedSequence`` / bit-generator objects
with explicit arguments inside a function is allowed (that is how
deterministic child streams are derived).  One module-level exception:
an *explicitly seeded* ``SeedSequence`` is a pure function of its
entropy argument, so ``np.random.SeedSequence(2018).spawn(8)`` at
import time is deterministic and permitted; the no-arg form is flagged
everywhere instead.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule
from repro.analysis.visitors import ImportMap, attach_parents, is_module_level

#: numpy.random attributes that construct explicit, seedable objects.
_CONSTRUCTORS = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` attributes that are instances, not global draws.
_STDLIB_OK = frozenset({"Random", "SystemRandom"})


def _exempt(ctx) -> bool:
    return ctx.path_parts[-2:] == ("utils", "rng.py")


class RngDeterminismRule(Rule):
    rule_id = "RPR103"
    name = "rng-determinism"
    severity = Severity.ERROR
    description = (
        "No global-state RNG calls and no unseeded default_rng() "
        "outside repro.utils.rng."
    )

    def check(self, ctx) -> List[Finding]:
        if _exempt(ctx):
            return []
        attach_parents(ctx.tree)
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve_call(node)
            if canonical is None:
                continue
            message = self._classify(node, canonical)
            if message is not None:
                findings.append(self.finding(ctx, node, message))
        return findings

    def _classify(self, node: ast.Call, canonical: str) -> Optional[str]:
        at_import = is_module_level(node)
        if canonical.startswith("numpy.random."):
            attr = canonical[len("numpy.random."):]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    return (
                        "unseeded default_rng(): the entropy is never "
                        "recorded, so the run cannot be replayed; use "
                        "repro.utils.rng.as_generator"
                    )
                if at_import:
                    return (
                        "module-level default_rng(): RNG state created "
                        "at import time; construct generators inside "
                        "the consuming function"
                    )
                return None
            if attr == "SeedSequence":
                # An explicitly-seeded SeedSequence is a pure function of
                # its entropy argument — spawning child streams from it
                # (``SeedSequence(2018).spawn(8)``) is deterministic even
                # at import time.  Only the no-arg form draws unrecorded
                # OS entropy.
                if not node.args and not node.keywords:
                    return (
                        "unseeded SeedSequence(): the OS entropy is never "
                        "recorded, so spawned streams cannot be replayed; "
                        "pass an explicit seed"
                    )
                return None
            if attr in _CONSTRUCTORS:
                if at_import:
                    return (
                        f"module-level numpy.random.{attr}: RNG objects "
                        "must not be created at import time"
                    )
                return None
            return (
                f"legacy global-state call numpy.random.{attr}; inject "
                "a numpy Generator via repro.utils.rng instead"
            )
        if canonical == "random" or canonical.startswith("random."):
            attr = canonical.partition(".")[2]
            if attr.split(".", 1)[0] in _STDLIB_OK and not at_import:
                return None
            return (
                f"stdlib global-state call random.{attr or '()'}; inject "
                "a numpy Generator via repro.utils.rng instead"
            )
        return None
