"""RPR105 — explicit dtypes in hot-path array constructors.

The RR-set kernels store node ids as ``int32``, adjacency offsets as
``int64``, and probabilities as ``float64``; an implicit dtype from
``np.array([...])`` is platform-dependent (``int32`` on Windows,
``int64`` elsewhere) and a silent source of overflow and of 2x memory
blow-ups when a default ``float64`` sneaks into an id array.  Inside
the hot-path packages (``graph/``, ``sampling/``, ``maxcover/``) every
``np.array`` / ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full``
call must pass a dtype, either as ``dtype=`` or in the constructor's
positional dtype slot.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule
from repro.analysis.visitors import ImportMap

#: canonical constructor -> index of its positional dtype slot.
_CONSTRUCTORS = {
    "numpy.array": 1,
    "numpy.zeros": 1,
    "numpy.empty": 1,
    "numpy.ones": 1,
    "numpy.full": 2,
}

#: a file is "hot path" when any of these package names appears in it.
HOT_PATH_PARTS = frozenset({"graph", "sampling", "maxcover"})


class DtypeDisciplineRule(Rule):
    rule_id = "RPR105"
    name = "dtype-discipline"
    severity = Severity.WARNING
    description = (
        "Array constructors in graph/, sampling/, and maxcover/ must "
        "pass an explicit dtype."
    )

    def check(self, ctx) -> List[Finding]:
        if not HOT_PATH_PARTS & set(ctx.path_parts):
            return []
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve_call(node)
            if canonical not in _CONSTRUCTORS:
                continue
            dtype_slot = _CONSTRUCTORS[canonical]
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or (
                len(node.args) > dtype_slot
            )
            if not has_dtype:
                short = canonical.replace("numpy.", "np.")
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{short}(...) in a hot path without an explicit "
                        "dtype; implicit dtypes are platform-dependent",
                    )
                )
        return findings
