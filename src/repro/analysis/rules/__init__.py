"""Rule registry.

``ALL_RULES`` is the ordered tuple of rule classes the engine runs by
default: the RPR1xx family checks one parsed file at a time, the
RPR2xx family (subclasses of
:class:`~repro.analysis.rules.project_base.ProjectRule`) runs once
over the whole-program symbol table and call graph.  Adding a rule
means writing a :class:`~repro.analysis.rules.base.Rule` (or
``ProjectRule``) subclass and appending it here; :func:`get_rules`
instantiates an optionally-filtered subset of either kind.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Type

from repro.analysis.rules.aliasing import AliasingRule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.budget_flow import BudgetFlowRule
from repro.analysis.rules.delta_budget import DeltaBudgetRule
from repro.analysis.rules.dtype_discipline import DtypeDisciplineRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.label_cardinality import LabelCardinalityRule
from repro.analysis.rules.project_base import ProjectRule
from repro.analysis.rules.registry_injection import RegistryInjectionRule
from repro.analysis.rules.rng_determinism import RngDeterminismRule
from repro.analysis.rules.sample_reuse import SampleReuseRule
from repro.analysis.rules.shm_lifecycle import ShmLifecycleRule
from repro.analysis.rules.traceability import TraceabilityRule

#: Per-file rules (RPR1xx).
FILE_RULES: Tuple[Type[Rule], ...] = (
    AliasingRule,
    DeltaBudgetRule,
    RngDeterminismRule,
    FloatEqualityRule,
    DtypeDisciplineRule,
    TraceabilityRule,
    RegistryInjectionRule,
)

#: Whole-program rules (RPR2xx).
PROJECT_RULES: Tuple[Type[Rule], ...] = (
    SampleReuseRule,
    BudgetFlowRule,
    AsyncBlockingRule,
    ShmLifecycleRule,
    LabelCardinalityRule,
)

ALL_RULES: Tuple[Type[Rule], ...] = FILE_RULES + PROJECT_RULES


def get_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the default rules, optionally filtered by id."""
    if select is None:
        return [cls() for cls in ALL_RULES]
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - {cls.rule_id for cls in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return [cls() for cls in ALL_RULES if cls.rule_id in wanted]


__all__ = [
    "ALL_RULES",
    "FILE_RULES",
    "PROJECT_RULES",
    "AliasingRule",
    "AsyncBlockingRule",
    "BudgetFlowRule",
    "DeltaBudgetRule",
    "DtypeDisciplineRule",
    "FloatEqualityRule",
    "LabelCardinalityRule",
    "ProjectRule",
    "RegistryInjectionRule",
    "RngDeterminismRule",
    "Rule",
    "SampleReuseRule",
    "ShmLifecycleRule",
    "TraceabilityRule",
    "get_rules",
]
