"""Rule registry.

``ALL_RULES`` is the ordered tuple of rule classes the engine runs by
default; :func:`get_rules` instantiates an optionally-filtered subset.
Adding a rule means writing a :class:`~repro.analysis.rules.base.Rule`
subclass and appending it here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Type

from repro.analysis.rules.aliasing import AliasingRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.delta_budget import DeltaBudgetRule
from repro.analysis.rules.dtype_discipline import DtypeDisciplineRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.registry_injection import RegistryInjectionRule
from repro.analysis.rules.rng_determinism import RngDeterminismRule
from repro.analysis.rules.traceability import TraceabilityRule

ALL_RULES: Tuple[Type[Rule], ...] = (
    AliasingRule,
    DeltaBudgetRule,
    RngDeterminismRule,
    FloatEqualityRule,
    DtypeDisciplineRule,
    TraceabilityRule,
    RegistryInjectionRule,
)


def get_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the default rules, optionally filtered by id."""
    if select is None:
        return [cls() for cls in ALL_RULES]
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - {cls.rule_id for cls in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return [cls() for cls in ALL_RULES if cls.rule_id in wanted]


__all__ = [
    "ALL_RULES",
    "AliasingRule",
    "DeltaBudgetRule",
    "DtypeDisciplineRule",
    "FloatEqualityRule",
    "RegistryInjectionRule",
    "RngDeterminismRule",
    "Rule",
    "TraceabilityRule",
    "get_rules",
]
