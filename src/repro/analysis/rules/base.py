"""Rule plug-in protocol.

A rule is a class with a unique ``rule_id``, a default ``severity``,
and a :meth:`Rule.check` method that inspects one parsed file
(:class:`~repro.analysis.engine.FileContext`) and returns findings.
Rules register themselves in :data:`repro.analysis.rules.ALL_RULES`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import FileContext


class Rule:
    """Base class for reprolint rules."""

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    #: analysis granularity: "file" rules see one parsed file at a
    #: time; "project" rules run once over the whole symbol table.
    scope: str = "file"
    #: longer prose for ``--explain``: why the rule exists (falls back
    #: to ``description`` when empty) and the paper it traces to.
    rationale: str = ""
    citation: str = ""

    def check(self, ctx: "FileContext") -> List[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "FileContext",
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
        )
