"""RPR205 — unbounded metric label cardinality.

Every distinct label value materializes a new time series in the
metrics registry and in whatever scrapes it; labelling
``serve.latency`` with a trace id or a raw request field turns a
handful of histograms into one per request and eventually OOMs the
registry.  Label values must come from a finite set.

The rule inspects ``labels={...}`` dict literals passed to registry
methods (``histogram`` / ``counter`` / ``gauge`` / ``observe`` …) and
flags values that are provably unbounded: f-string interpolation of
runtime values, request parameters passed through, payload subscripts,
string arithmetic, and calls to functions that can return unboundedly
many strings.  Calls whose resolved implementation returns only string
literals (the ``_query_outcome`` outcome-classifier pattern) are
bounded and pass.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.dataflow import finite_string_returns
from repro.analysis.callgraph import walk_function_scope
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.project_base import ProjectRule

#: Registry entry points that accept a ``labels=`` keyword.
METRIC_METHODS = frozenset(
    {
        "histogram",
        "counter",
        "gauge",
        "count",
        "observe",
        "set_gauge",
        "increment",
    }
)


class LabelCardinalityRule(ProjectRule):
    rule_id = "RPR205"
    name = "metric-label-cardinality"
    severity = Severity.WARNING
    description = (
        "Metric label values must come from a finite set; request-"
        "derived values create unbounded time series."
    )
    rationale = (
        "The registry keeps one series per (metric, label-values) "
        "combination for the life of the process, and the Prometheus "
        "exporter renders all of them on every scrape. A label fed "
        "from a request id, user input, or an f-string over runtime "
        "state grows without bound — a slow memory leak plus "
        "ever-larger scrape payloads. Classify outcomes into a fixed "
        "vocabulary first (the _query_outcome pattern) and label with "
        "that."
    )
    citation = "Tang et al. SIGMOD 2018, Section 6 (serving telemetry)"

    def check_project(self, project, graph) -> List[Finding]:
        findings: List[Finding] = []
        for site in graph.sites:
            if site.method_name not in METRIC_METHODS:
                continue
            labels_kw = next(
                (kw for kw in site.node.keywords if kw.arg == "labels"),
                None,
            )
            if labels_kw is None or not isinstance(labels_kw.value, ast.Dict):
                continue
            fn = project.functions.get(site.caller)
            for key, value in zip(
                labels_kw.value.keys, labels_kw.value.values
            ):
                reason = self._unbounded_reason(project, graph, fn, value)
                if reason is None:
                    continue
                label = (
                    repr(key.value)
                    if isinstance(key, ast.Constant)
                    else "<dynamic>"
                )
                findings.append(
                    self.project_finding(
                        site.module,
                        value,
                        f"metric label {label} {reason}; label values "
                        "must come from a finite vocabulary",
                    )
                )
        return findings

    def _unbounded_reason(
        self, project, graph, fn, expr: ast.expr, depth: int = 0
    ) -> Optional[str]:
        if depth > 3 or isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.JoinedStr):
            for part in expr.values:
                if isinstance(part, ast.FormattedValue) and not isinstance(
                    part.value, ast.Constant
                ):
                    return "interpolates a runtime value into an f-string"
            return None
        if isinstance(expr, ast.Subscript):
            return "indexes request/payload data"
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Add, ast.Mod)
        ):
            return "builds the value with string arithmetic"
        if isinstance(expr, ast.Call):
            return self._call_reason(project, graph, fn, expr, depth)
        if isinstance(expr, ast.Name) and fn is not None:
            if expr.id in fn.params:
                return f"passes parameter '{expr.id}' straight through"
            for node in walk_function_scope(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == expr.id
                ):
                    reason = self._unbounded_reason(
                        project, graph, fn, node.value, depth + 1
                    )
                    if reason is not None:
                        return reason
            return None
        return None

    def _call_reason(
        self, project, graph, fn, call: ast.Call, depth: int
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "str" and call.args:
            inner = self._unbounded_reason(
                project, graph, fn, call.args[0], depth + 1
            )
            if inner is not None:
                return inner
            if isinstance(call.args[0], ast.Name) and fn is not None:
                if call.args[0].id in fn.params:
                    return (
                        "stringifies request parameter "
                        f"'{call.args[0].id}'"
                    )
            return None
        targets = graph.site_targets(call)
        if not targets:
            return None  # unresolved: assume the author knows
        for target in targets:
            target_fn = project.functions.get(target)
            if target_fn is None or not finite_string_returns(target_fn):
                name = target.split(".")[-1]
                return (
                    f"takes its value from {name}(), which does not "
                    "return a fixed set of string literals"
                )
        return None
