"""RPR102 — δ failure-budget discipline.

OPIM-C's correctness argument splits the caller's failure probability
``delta`` into ``delta_1 = delta_2 = delta / (3 i_max)`` per iteration
(paper, Algorithm 2); the online algorithm uses ``delta / 2`` per side
(Lemma 4.4).  These splits are exact budget accounting: a function that
receives ``delta`` and then compares or rescales it against a hardcoded
probability constant (``delta * 0.5``, ``if delta > 0.05``) silently
changes the guarantee the caller believes it is buying.

The rule flags any binary operation or comparison in which a
``delta``-named parameter of the enclosing function appears as a
top-level operand together with a float literal in ``[1e-9, 1)``.
Literals below ``1e-9`` are treated as numerical tolerances (e.g.
``delta1 + delta2 <= delta + 1e-12``) and exempted; integral factors
like ``delta / 2`` are derived splits, not probabilities, and pass.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule
from repro.analysis.visitors import walk_scope

_DELTA_PARAM = re.compile(r"^delta\d*$")

#: Literals below this are numerical tolerances, not probabilities.
TOLERANCE_CUTOFF = 1e-9


def _delta_params(node: ast.AST) -> List[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    args = node.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    return [n for n in names if _DELTA_PARAM.match(n)]


def _is_probability_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and TOLERANCE_CUTOFF <= node.value < 1.0
    )


def _operands(node: ast.AST) -> List[ast.AST]:
    if isinstance(node, ast.BinOp):
        return [node.left, node.right]
    if isinstance(node, ast.Compare):
        return [node.left, *node.comparators]
    return []


class DeltaBudgetRule(Rule):
    rule_id = "RPR102"
    name = "delta-budget"
    severity = Severity.ERROR
    description = (
        "delta parameters must be split symbolically, never combined "
        "with hardcoded probability literals."
    )

    def check(self, ctx) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            params = _delta_params(node)
            if not params:
                continue
            findings.extend(self._check_body(ctx, node.body, params))
        return findings

    def _check_body(self, ctx, body, params: List[str]) -> List[Finding]:
        findings: List[Finding] = []
        wanted = set(params)
        for node in walk_scope(list(body)):
            operands = _operands(node)
            if not operands:
                continue
            delta_names = [
                op.id
                for op in operands
                if isinstance(op, ast.Name) and op.id in wanted
            ]
            literals = [
                op.value for op in operands if _is_probability_literal(op)
            ]
            if delta_names and literals:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"failure budget {delta_names[0]!r} combined with "
                        f"hardcoded probability literal {literals[0]!r}; "
                        "derive sub-budgets symbolically "
                        "(delta/2, delta/(3*i_max))",
                    )
                )
        return findings
