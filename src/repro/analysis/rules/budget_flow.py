"""RPR202 — δ-budget over-spend along call paths.

Every confidence statement the reproduction makes is bought with a
fraction of a failure budget δ: ``sigma_lower_bound`` /
``sigma_upper_bound`` each consume the δ they are handed, and the
union bound only covers the caller when the fractions handed out sum
to at most 1 (the paper's ``delta/2`` split in Lemma 4.4 is the
canonical example).  A function that passes ``delta/2`` to three
consumers has spent 1.5δ — its advertised ``1 - delta`` guarantee is
silently wrong.

The rule runs the δ-fraction lattice of
:func:`repro.analysis.dataflow.compute_delta_spend` to a fixpoint over
the call graph and flags any function whose summed constant fractions
exceed 1.  Schedule-shaped fractions (non-constant divisors such as
``delta / 2**i`` or ``delta / (3 * i_max)``) are by-construction
convergent and contribute nothing.
"""

from __future__ import annotations

from typing import List

from repro.analysis.dataflow import BASE_CONSUMERS, compute_delta_spend
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.project_base import ProjectRule

#: Tolerance: exactly-1.0 spends (delta/2 + delta/2) are the sanctioned
#: split; only strictly-greater sums are over-spends.
_EPSILON = 1e-6


class BudgetFlowRule(ProjectRule):
    rule_id = "RPR202"
    name = "delta-budget-overspend"
    severity = Severity.ERROR
    description = (
        "Constant delta fractions handed to sigma bounds along any "
        "call path must sum to <= 1 of the caller's budget."
    )
    rationale = (
        "Guarantees compose by the union bound: a caller advertising "
        "failure probability delta may distribute at most delta across "
        "the concentration bounds it invokes (directly or through "
        "callees). Summed constant fractions above 1 mean the "
        "advertised confidence is overstated — the exact failure mode "
        "the delta/2 split of Lemma 4.4 exists to prevent. Adaptive "
        "schedules (delta/2^i) telescope below delta and are exempt."
    )
    citation = (
        "Tang et al. SIGMOD 2018, Lemma 4.4; Chen, arXiv:1808.09363"
    )

    def check_project(self, project, graph) -> List[Finding]:
        summaries = compute_delta_spend(project, graph)
        findings: List[Finding] = []
        for qualname, summary in sorted(summaries.items()):
            fn = project.functions.get(qualname)
            if fn is None or fn.name in BASE_CONSUMERS:
                continue
            for param, spend in sorted(summary.items()):
                if spend.amount <= 1.0 + _EPSILON:
                    continue
                findings.append(
                    self.project_finding(
                        fn.module,
                        fn.node,
                        f"{fn.name}() spends {spend.amount:.2f}x its "
                        f"'{param}' failure budget across call paths "
                        "(fractions handed to sigma bounds must sum to "
                        "<= 1; split the budget as in Lemma 4.4)",
                    )
                )
        return findings
