"""RPR204 — SharedMemory segments must be closed *and* unlinked.

``multiprocessing.shared_memory.SharedMemory(create=True, ...)``
allocates a named POSIX segment that outlives the process unless some
owner calls both ``close()`` (drop the mapping) and ``unlink()``
(remove the name).  The sampling service hands segments to worker
processes, so a leak is not hypothetical: a crashed run leaves graph
CSR arrays pinned in ``/dev/shm`` until reboot.

For every ``create=True`` call the rule requires a release path:

* ``close()`` **and** ``unlink()`` both appear in the creating
  function, or — when the segment escapes into ``self`` state — in the
  owning class (the pool-lifecycle pattern, released by
  ``SamplingPool.close``);
* when the release is local, some ``try`` in the function must release
  in a handler or ``finally`` — straight-line create → use → release
  leaks the segment on any exception in between.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.callgraph import walk_function_scope_body
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.project_base import ProjectRule


def _release_calls(nodes: Iterable[ast.AST]) -> set:
    """Which of ``{"close", "unlink"}`` are invoked anywhere in *nodes*."""
    seen = set()
    for node in nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "unlink")
        ):
            seen.add(node.func.attr)
    return seen


class ShmLifecycleRule(ProjectRule):
    rule_id = "RPR204"
    name = "sharedmemory-lifecycle"
    severity = Severity.WARNING
    description = (
        "SharedMemory(create=True) must be released with close()+"
        "unlink() on all paths, including exception edges."
    )
    rationale = (
        "A created shared-memory segment is a named kernel object; "
        "close() alone drops this process's mapping but leaves the "
        "segment allocated, and an exception between creation and "
        "release leaks it entirely. The sampling service's own idiom — "
        "create inside try, release every segment in the BaseException "
        "handler, transfer ownership to the pool for steady-state "
        "teardown — is the accepted shape; this rule flags departures."
    )
    citation = "Tang et al. SIGMOD 2018, Section 6 (shared-sketch service)"

    def check_project(self, project, graph) -> List[Finding]:
        findings: List[Finding] = []
        for site in graph.sites:
            if site.canonical.split(".")[-1] != "SharedMemory":
                continue
            if not any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in site.node.keywords
            ):
                continue
            finding = self._check_site(project, site)
            if finding is not None:
                findings.append(finding)
        return findings

    def _check_site(self, project, site) -> Optional[Finding]:
        fn = project.functions.get(site.caller)
        if fn is not None:
            scope_body = list(fn.node.body)
        else:
            scope_body = [
                stmt
                for stmt in site.module.tree.body
                if not isinstance(stmt, ast.ClassDef)
            ]
        local = _release_calls(walk_function_scope_body(scope_body))

        class_release = set()
        if fn is not None and fn.class_qualname:
            info = project.classes.get(fn.class_qualname)
            if info is not None:
                class_release = _release_calls(ast.walk(info.node))

        released = local | class_release
        missing = {"close", "unlink"} - released
        if missing:
            what = " and ".join(f"{name}()" for name in sorted(missing))
            return self.project_finding(
                site.module,
                site.node,
                f"SharedMemory segment created here is never released "
                f"with {what}; the named segment outlives the process "
                "(leaks into /dev/shm)",
            )
        # Exception edges: when the release lives in this function, it
        # must sit in a handler/finally of some try; a class-level
        # release (pool teardown) owns the segment past this scope.
        if {"close", "unlink"} <= local:
            protected = any(
                {"close", "unlink"}
                <= _release_calls(
                    walk_function_scope_body(
                        [
                            stmt
                            for handler in node.handlers
                            for stmt in handler.body
                        ]
                        + list(node.finalbody)
                    )
                )
                for node in walk_function_scope_body(scope_body)
                if isinstance(node, ast.Try)
            )
            if not protected and not ({"close", "unlink"} <= class_release):
                return self.project_finding(
                    site.module,
                    site.node,
                    "SharedMemory release is straight-line only; an "
                    "exception between create and close()/unlink() "
                    "leaks the segment — release in a finally/except "
                    "handler",
                )
        return None
