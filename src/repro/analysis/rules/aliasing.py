"""RPR101 — R1/R2 sample-independence (nominator/judge aliasing).

OPIM's instance-specific guarantee (paper, Section 4.1) requires two
*disjoint* RR-set collections: greedy selects the seed set on the
nominators ``R1``; the spread lower bound judges that seed set on
``R2``.  Reusing one collection for both roles invalidates the
martingale analysis — exactly the bug class documented in Chen,
"An Issue in the Martingale Analysis of IMM" (arXiv:1808.09363).

The rule performs a light per-scope dataflow:

* any expression passed as the collection argument of a registered
  *nominator* call (``greedy_max_coverage``) is a nominator;
* the receiver ``X`` of ``X.coverage(...)`` whose result reaches the
  ``coverage`` argument of a registered *judge* call
  (``sigma_lower_bound``) — directly or through one local assignment —
  is a judge;
* a structurally identical expression appearing in both roles within
  one scope is flagged, as is any single call passing the same
  expression to a paired nominator/judge keyword (``r1=``/``r2=``...).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.base import Rule
from repro.analysis.visitors import (
    dotted_name,
    expr_key,
    iter_scopes,
    walk_scope,
)

#: function base name -> (positional index, keyword) of the nominator
#: collection argument.
NOMINATOR_CALLS: Dict[str, Tuple[int, str]] = {
    "greedy_max_coverage": (0, "collection"),
}

#: function base name -> (positional index, keyword) of the judge
#: coverage argument (a value derived from the judge collection).
JUDGE_COVERAGE_CALLS: Dict[str, Tuple[int, str]] = {
    "sigma_lower_bound": (0, "coverage"),
}

#: keyword spellings for paired nominator/judge parameters on one call.
NOMINATOR_KEYWORDS = frozenset({"r1", "nominators", "nominator_collection"})
JUDGE_KEYWORDS = frozenset({"r2", "judges", "judge_collection"})


def _base_name(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _argument(
    call: ast.Call, position: int, keyword: str
) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _coverage_receiver(expr: ast.AST) -> Optional[str]:
    """``X.coverage(...)`` (possibly behind an IfExp) -> key of ``X``."""
    if isinstance(expr, ast.IfExp):
        return _coverage_receiver(expr.body) or _coverage_receiver(expr.orelse)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "coverage"
    ):
        return expr_key(expr.func.value)
    return None


class AliasingRule(Rule):
    rule_id = "RPR101"
    name = "r1-r2-aliasing"
    severity = Severity.ERROR
    description = (
        "The same RR-set collection must not serve as both nominator "
        "(greedy selection) and judge (spread lower bound)."
    )

    def check(self, ctx) -> List[Finding]:
        findings: List[Finding] = []
        for _scope, body in iter_scopes(ctx.tree):
            findings.extend(self._check_scope(ctx, body))
        return findings

    def _check_scope(self, ctx, body: List[ast.stmt]) -> List[Finding]:
        nominators: Dict[str, ast.AST] = {}
        coverage_sources: Dict[str, str] = {}
        judge_args: List[Tuple[ast.Call, ast.AST]] = []
        findings: List[Finding] = []
        seen: Set[int] = set()

        # Pass 1: collect assignments, nominator uses, and judge call
        # sites.  Resolution happens afterwards, so statement order
        # within the scope does not matter.
        for node in walk_scope(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                receiver = _coverage_receiver(node.value)
                if isinstance(target, ast.Name) and receiver is not None:
                    coverage_sources[target.id] = receiver
            if not isinstance(node, ast.Call) or id(node) in seen:
                continue
            seen.add(id(node))
            base = _base_name(node)
            if base in NOMINATOR_CALLS:
                arg = _argument(node, *NOMINATOR_CALLS[base])
                if arg is not None:
                    nominators.setdefault(expr_key(arg), node)
            if base in JUDGE_COVERAGE_CALLS:
                arg = _argument(node, *JUDGE_COVERAGE_CALLS[base])
                if arg is not None:
                    judge_args.append((node, arg))
            findings.extend(self._check_paired_keywords(ctx, node))

        # Pass 2: resolve each judge coverage argument to the
        # collection it was computed from and compare roles.
        judge_calls: List[Tuple[ast.Call, str]] = []
        for call, arg in judge_args:
            receiver = _coverage_receiver(arg)
            if receiver is None and isinstance(arg, ast.Name):
                receiver = coverage_sources.get(arg.id)
            if receiver is not None:
                judge_calls.append((call, receiver))

        for call, receiver in judge_calls:
            if receiver in nominators:
                findings.append(
                    self.finding(
                        ctx,
                        call,
                        f"R1/R2 aliasing: collection {receiver!r} feeds "
                        "both the nominator (greedy selection) and the "
                        "judge (sigma_lower_bound); use disjoint "
                        "collections (cf. arXiv:1808.09363)",
                    )
                )
        return findings

    def _check_paired_keywords(self, ctx, call: ast.Call) -> List[Finding]:
        nom = {
            kw.arg: expr_key(kw.value)
            for kw in call.keywords
            if kw.arg in NOMINATOR_KEYWORDS
        }
        jud = {
            kw.arg: expr_key(kw.value)
            for kw in call.keywords
            if kw.arg in JUDGE_KEYWORDS
        }
        findings: List[Finding] = []
        for nom_name, nom_key in nom.items():
            for jud_name, jud_key in jud.items():
                if nom_key == jud_key:
                    findings.append(
                        self.finding(
                            ctx,
                            call,
                            f"R1/R2 aliasing: the same expression "
                            f"{nom_key!r} is passed to both "
                            f"{nom_name}= and {jud_name}=",
                        )
                    )
        return findings
