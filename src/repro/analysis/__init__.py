"""reprolint — AST-based invariant linter for statistical correctness.

The type system cannot see the invariants OPIM's guarantee rests on:
R1/R2 sample independence, the ``delta/(3 i_max)`` failure-budget
split, injected deterministic RNGs.  This package checks them
statically, at review time:

* a pluggable rule engine (:class:`LintEngine`) with six repo-specific
  rules (``RPR101``-``RPR106``; catalog in ``docs/static-analysis.md``);
* ``# repro: noqa[RULE-ID]`` line suppressions;
* a committed baseline (``.reprolint-baseline.json``) so only *new*
  violations fail CI;
* text and JSON reporters.

Entry points: ``python -m repro.analysis [paths]`` and
``repro-opim lint [paths]``.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.engine import (
    FileContext,
    LintEngine,
    LintReport,
    run_lint,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_text, report_to_dict
from repro.analysis.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "Severity",
    "get_rules",
    "main",
    "render_json",
    "render_text",
    "report_to_dict",
    "run_lint",
]
