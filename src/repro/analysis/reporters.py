"""Text and JSON renderers for :class:`~repro.analysis.engine.LintReport`."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import LintReport


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    # ``summary.exit_code`` mirrors what the CLI returns for this run
    # (0 clean / 1 findings); both renderers derive it from the same
    # LintReport property so text and JSON can never disagree.
    return {
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "summary": {
            "files_checked": report.files_checked,
            "new": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
            "stale_baseline": report.stale_baseline,
            "exit_code": report.exit_code,
        },
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2)


def render_text(report: LintReport, show_baselined: bool = False) -> str:
    lines = [f.render() for f in report.findings]
    if show_baselined and report.baselined:
        lines.append("-- baselined (accepted) --")
        lines.extend(f.render() for f in report.baselined)
    summary = (
        f"reprolint: {report.files_checked} file(s) checked, "
        f"{len(report.findings)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed"
    )
    if report.stale_baseline:
        summary += (
            f", {report.stale_baseline} stale baseline entr"
            f"{'y' if report.stale_baseline == 1 else 'ies'} "
            "(run --prune-baseline)"
        )
    lines.append(summary)
    return "\n".join(lines)
