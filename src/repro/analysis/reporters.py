"""Text and JSON renderers for :class:`~repro.analysis.engine.LintReport`."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import LintReport


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    return {
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "summary": {
            "files_checked": report.files_checked,
            "new": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
            "exit_code": report.exit_code,
        },
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2)


def render_text(report: LintReport, show_baselined: bool = False) -> str:
    lines = [f.render() for f in report.findings]
    if show_baselined and report.baselined:
        lines.append("-- baselined (accepted) --")
        lines.extend(f.render() for f in report.baselined)
    lines.append(
        f"reprolint: {report.files_checked} file(s) checked, "
        f"{len(report.findings)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed"
    )
    return "\n".join(lines)
