"""Findings model for reprolint.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line number so
that baseline entries survive unrelated edits that shift code around;
two findings with the same rule, file, and message are considered the
same defect wherever it currently lives.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.IntEnum):
    """Ordered severity levels (higher is worse)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used for baseline matching (line-independent)."""
        payload = f"{self.rule_id}|{self.path}|{self.message}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=str(data["rule"]),
            severity=Severity.from_name(str(data["severity"])),
            message=str(data["message"]),
        )

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
