"""Shared AST utilities for reprolint rules.

Rules in this package lean on three capabilities:

* **parent links** (:func:`attach_parents`) — ``ast`` has no upward
  pointers, but several rules need to know whether a call executes at
  module import time or inside a function body;
* **import-aware name resolution** (:class:`ImportMap`) — ``np.random
  .default_rng`` / ``numpy.random.default_rng`` / ``from numpy.random
  import default_rng`` must all resolve to the same canonical dotted
  name, regardless of aliasing;
* **scope iteration** (:func:`iter_scopes`) — dataflow-ish rules (e.g.
  R1/R2 aliasing) reason per function body, excluding nested function
  bodies which form their own scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

_PARENT = "_reprolint_parent"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a pointer to its parent."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, _PARENT, parent)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, _PARENT, None)


def is_module_level(node: ast.AST) -> bool:
    """True when *node* executes at import time (no enclosing function).

    Class bodies count as module level: a call in a class body runs
    when the module is imported.
    """
    current = parent_of(node)
    while current is not None:
        if isinstance(current, _FUNCTION_NODES):
            return False
        current = parent_of(current)
    return True


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def expr_key(node: ast.AST) -> str:
    """Normalized textual key for structural expression comparison."""
    return ast.unparse(node)


class ImportMap:
    """Resolve local call names to canonical dotted module paths."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        canonical = self.aliases.get(head)
        if canonical is None:
            return dotted
        return f"{canonical}.{rest}" if rest else canonical

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        name = dotted_name(call.func)
        return self.resolve(name) if name else None


def iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function.

    Bodies are the scope's own statements; nested functions appear as
    statements of their enclosing scope but their *bodies* are only
    yielded with the nested scope itself.
    """
    yield tree, list(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, list(node.body)


def walk_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements of one scope without descending into nested defs."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # The nested function is its own scope; iter_scopes yields
            # its body separately.
            continue
        stack.extend(ast.iter_child_nodes(node))
