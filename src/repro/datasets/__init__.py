"""Dataset registry: synthetic stand-ins for the paper's SNAP graphs."""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    table2_rows,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "table2_rows",
]
