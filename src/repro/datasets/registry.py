"""Synthetic stand-ins for the paper's evaluation datasets (Table 2).

The paper evaluates on four SNAP graphs:

====== ============ ===== ======= ============ ===========
 Name   Dataset      n      m      Type         Avg. degree
====== ============ ===== ======= ============ ===========
 [25]   Pokec        1.6M  30.6M   directed     37.5
 [25]   Orkut        3.1M  117.2M  undirected   76.3
 [25]   LiveJournal  4.8M  69.0M   directed     28.5
 [21]   Twitter      41.7M 1.5G    directed     70.5
====== ============ ===== ======= ============ ===========

Those are unavailable offline and exceed pure-Python scale, so the
registry builds deterministic scaled-down stand-ins that preserve the
properties the experiments actually exercise (DESIGN.md, Section 4):
the graph *type*, the *relative size ordering*, the *average degree*,
and a heavy-tailed (power-law) degree distribution, which under
weighted-cascade probabilities governs the RR-set size distribution.

Every stand-in is produced with a fixed seed, so two processes loading
``"twitter-sim"`` get byte-identical graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.build import from_edge_array
from repro.graph.digraph import DiGraph
from repro.graph.generators import power_law_graph
from repro.graph.stats import summarize
from repro.graph.weights import assign_wc_weights


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in."""

    name: str
    paper_name: str
    n: int
    avg_degree: float
    directed: bool
    exponent: float
    seed: int
    paper_n: str
    paper_m: str
    paper_avg_degree: float

    def build(self, scale: float = 1.0) -> DiGraph:
        """Materialize the stand-in graph (optionally size-scaled).

        ``scale`` multiplies the node count — benchmarks use < 1.0 for
        quick runs; properties other than size are preserved.
        """
        if scale <= 0:
            raise ParameterError(f"scale must be positive, got {scale}")
        n = max(64, int(self.n * scale))
        if self.directed:
            graph = power_law_graph(
                n,
                self.avg_degree,
                exponent=self.exponent,
                seed=self.seed,
                name=self.name,
                reciprocal=0.15,
            )
        else:
            # Undirected origin (Orkut): generate half the arcs,
            # canonicalize each pair to (low, high) and de-duplicate,
            # then symmetrize — how SNAP's undirected lists are used.
            half = power_law_graph(
                n,
                self.avg_degree / 2.0,
                exponent=self.exponent,
                seed=self.seed,
                name=self.name,
            )
            sources, targets, _ = half.edge_array()
            low = np.minimum(sources, targets)
            high = np.maximum(sources, targets)
            codes = np.unique(low * np.int64(n) + high)
            graph = from_edge_array(
                codes // n, codes % n, n=n, name=self.name, undirected=True
            )
        return assign_wc_weights(graph)


#: The four stand-ins, sizes scaled ~1:500000 in node count but with the
#: paper's average degrees and size ordering preserved.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="pokec-sim",
            paper_name="Pokec",
            n=3_200,
            avg_degree=19.0,
            directed=True,
            exponent=2.3,
            seed=101,
            paper_n="1.6M",
            paper_m="30.6M",
            paper_avg_degree=37.5,
        ),
        DatasetSpec(
            name="orkut-sim",
            paper_name="Orkut",
            n=6_200,
            avg_degree=38.0,
            directed=False,
            exponent=2.4,
            seed=102,
            paper_n="3.1M",
            paper_m="117.2M",
            paper_avg_degree=76.3,
        ),
        DatasetSpec(
            name="livejournal-sim",
            paper_name="LiveJournal",
            n=9_600,
            avg_degree=14.0,
            directed=True,
            exponent=2.4,
            seed=103,
            paper_n="4.8M",
            paper_m="69.0M",
            paper_avg_degree=28.5,
        ),
        DatasetSpec(
            name="twitter-sim",
            paper_name="Twitter",
            n=20_000,
            avg_degree=35.0,
            directed=True,
            exponent=2.2,
            seed=104,
            paper_n="41.7M",
            paper_m="1.5G",
            paper_avg_degree=70.5,
        ),
    )
}

#: The per-dataset average degrees are halved relative to the paper
#: (19 vs 37.5 etc.) because at 1/500000 scale a power-law graph with
#: the paper's density would be nearly complete at the hub; the halved
#: values keep the degree-distribution *shape* while preserving the
#: cross-dataset ordering (orkut > twitter > pokec > livejournal).


def dataset_names() -> Tuple[str, ...]:
    """Registered stand-in names, in the paper's Table 2 order."""
    return tuple(DATASETS)


def load_dataset(name: str, scale: float = 1.0) -> DiGraph:
    """Build the named stand-in (WC-weighted, deterministic)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise ParameterError(f"unknown dataset {name!r}; known: {known}")
    return spec.build(scale=scale)


def table2_rows(scale: float = 1.0) -> List[dict]:
    """Regenerate the paper's Table 2 for the stand-ins.

    Each row contains the stand-in's measured numbers alongside the
    paper's originals so EXPERIMENTS.md can show them side by side.
    """
    rows = []
    for spec in DATASETS.values():
        graph = spec.build(scale=scale)
        summary = summarize(graph)
        row = summary.as_row()
        row.update(
            {
                "Paper dataset": spec.paper_name,
                "Paper n": spec.paper_n,
                "Paper m": spec.paper_m,
                "Paper avg. degree": spec.paper_avg_degree,
            }
        )
        rows.append(row)
    return rows
