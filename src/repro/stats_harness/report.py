"""Datatypes and formatting for the statistical acceptance harness.

The harness's unit of accounting is the **claim group**: a set of
``(seeds, factor)`` claims that the algorithm asserts hold *jointly*
with probability at least ``1 - delta`` (e.g. every snapshot one
per-``k`` session reported under the ``delta / 2^i`` schedule).  A
group *fails* when any claim in it is violated against the exact
oracle, so each group is one Bernoulli observation of the guarantee's
failure probability.

Groups with the same label across trials are i.i.d. (each trial runs
from an independent seed), which is what licenses the per-label
Clopper–Pearson bound; groups inside one trial share RR sets and are
*not* independent, so the report never pools them into one interval —
the headline statistic is the worst per-label upper bound.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Claim:
    """One checkable guarantee: ``sigma(seeds) >= factor * OPT(|seeds|)``.

    ``factor`` is either the conventional threshold ``1 - 1/e - eps``
    (OPIM-C's Theorem 6.2 claim) or a reported online ``alpha``
    (OPIM's instance-specific claim, Section 4).
    """

    seeds: Tuple[int, ...]
    factor: float
    source: str = ""


@dataclass(frozen=True)
class ClaimGroup:
    """Claims asserted to hold jointly w.p. >= ``1 - delta``."""

    label: str
    delta: float
    claims: Tuple[Claim, ...]


@dataclass(frozen=True)
class TrialResult:
    """What one scenario trial produced: claim groups + sampling cost."""

    groups: Tuple[ClaimGroup, ...]
    rr_sets: int


@dataclass(frozen=True)
class ClaimFailure:
    """A violated claim, with enough context to replay the trial."""

    trial: int
    seed: int
    label: str
    seeds: Tuple[int, ...]
    factor: float
    spread: float
    opt: float
    source: str


@dataclass
class LabelStats:
    """Per-label failure statistics over all trials (i.i.d. units)."""

    label: str
    trials: int
    failures: int
    failure_rate: float
    cp_upper: float
    cp_low: float
    cp_high: float


@dataclass
class ScenarioReport:
    """Statistical verdict of one scenario.

    ``passed`` means: for every claim-group label, the one-sided
    Clopper–Pearson upper bound on the failure rate (at ``confidence``)
    does not exceed the ``delta`` the algorithm promised — a
    statistical statement, not a vibe.
    """

    scenario: str
    trials: int
    delta: float
    epsilon: float
    confidence: float
    labels: List[LabelStats]
    max_cp_upper: float
    passed: bool
    rr_sets_mean: float
    rr_sets_max: int
    params: Dict[str, Any] = field(default_factory=dict)
    failures: List[ClaimFailure] = field(default_factory=list)

    @property
    def total_failures(self) -> int:
        return sum(stats.failures for stats in self.labels)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (consumed by BENCH_guarantees)."""
        payload = asdict(self)
        payload["total_failures"] = self.total_failures
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def format_report(report: ScenarioReport) -> str:
    """One human-readable block per scenario (used by the benchmark)."""
    lines = [
        f"scenario {report.scenario}: trials={report.trials} "
        f"delta={report.delta} epsilon={report.epsilon} "
        f"confidence={report.confidence}",
        f"  rr_sets per trial: mean={report.rr_sets_mean:.1f} "
        f"max={report.rr_sets_max}",
    ]
    for stats in report.labels:
        lines.append(
            f"  [{stats.label}] failures {stats.failures}/{stats.trials} "
            f"rate={stats.failure_rate:.4f} "
            f"CP-upper={stats.cp_upper:.4f} "
            f"CI=({stats.cp_low:.4f}, {stats.cp_high:.4f})"
        )
    verdict = "PASS" if report.passed else "FAIL"
    lines.append(
        f"  verdict: {verdict} (max CP-upper {report.max_cp_upper:.4f} "
        f"{'<=' if report.passed else '>'} delta {report.delta})"
    )
    return "\n".join(lines)


def format_reports(reports: Sequence[ScenarioReport]) -> str:
    return "\n".join(format_report(r) for r in reports)
