"""Serve-path scenarios for the statistical acceptance harness.

Each scenario runs ONE independent trial of a serving pattern that the
static analyzer (reprolint RPR201/RPR202 and the runtime
``DeltaLedger``) can only guard structurally, and returns the
guarantees that pattern emitted as claim groups:

* ``cold_opimc`` — the single-query Algorithm 2 path (the only path
  the pre-existing ``test_guarantee_stats`` covered); also the referee
  for ``stopping="sadeh"``.
* ``warm_index`` — answer, persist the sketch, restart a fresh engine
  from the on-disk index, answer again: the post-restart claims ride
  on RR sets sampled by a *previous process*.
* ``multi_k`` — one shared sketch adopted (``adopt_collections``) by
  several per-``k`` sessions; each ``k``'s claims are a group.
* ``repeated_queries`` — identical queries against one ``k``, so every
  claim leans on the ``delta / 2^i`` simultaneous-guarantee schedule.
* ``serial_stream`` / ``pool_stream`` — the same session loop driven
  by the serial sampler vs. the shared-memory ``SamplingPool`` (whose
  chunk-seeded stream is a different RR-set ordering, the thing the
  harness must show does not change the guarantee).
* ``cluster_path`` — the full sharded tier: trials go through the
  :class:`~repro.serve.cluster.frontend.ClusterFrontend` HTTP API into
  a worker process, then evict + requery so the checked claims ride a
  worker engine warm-restarted from the persistent index.  The
  guarantee must match ``warm_index`` — the cluster adds transport and
  process boundaries, never statistics.

A trial never asserts anything itself — it reports claims; the runner
checks them against the exact oracle and aggregates failure rates.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.opimc import opim_c
from repro.core.session import OPIMSession
from repro.graph.digraph import DiGraph
from repro.serve.engine import SeedQueryEngine
from repro.stats_harness.report import Claim, ClaimGroup, TrialResult


@dataclass
class TrialContext:
    """Everything one trial needs; built by the runner per trial."""

    graph: DiGraph
    seed: int
    trial: int
    model: str = "IC"
    epsilon: float = 0.3
    delta: float = 0.25
    k: int = 2
    ks: Tuple[int, ...] = (1, 2, 3)
    queries: int = 3
    step: int = 200
    rr_budget: int = 6000
    stopping: str = "paper"
    index_dir: Optional[Path] = None
    pool: Optional[Any] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def alpha_target(self) -> float:
        """The conventional ``1 - 1/e - epsilon`` acceptance level."""
        return 1.0 - 1.0 / math.e - self.epsilon


@dataclass(frozen=True)
class Scenario:
    """A named trial recipe plus the resources it needs."""

    name: str
    description: str
    run: Callable[[TrialContext], TrialResult]
    needs_pool: bool = False
    needs_index_dir: bool = False


def _session_group(
    session: OPIMSession, label: str, source: str
) -> ClaimGroup:
    """One session's history as a jointly-guaranteed claim group."""
    claims = tuple(
        Claim(
            seeds=tuple(claim["seeds"]),
            factor=claim["alpha"],
            source=f"{source}:query-{claim['query']}",
        )
        for claim in session.guarantee_claims()
    )
    return ClaimGroup(label=label, delta=session.delta, claims=claims)


def _engine_groups(engine: SeedQueryEngine, source: str) -> List[ClaimGroup]:
    """Per-``k`` claim groups from everything an engine answered."""
    groups = []
    for k, claims in engine.guarantee_claims().items():
        groups.append(
            ClaimGroup(
                label=f"k={k}",
                delta=engine.delta,
                claims=tuple(
                    Claim(
                        seeds=tuple(claim["seeds"]),
                        factor=claim["alpha"],
                        source=f"{source}:k={k}:query-{claim['query']}",
                    )
                    for claim in claims
                ),
            )
        )
    return groups


def _make_engine(ctx: TrialContext, **overrides: Any) -> SeedQueryEngine:
    kwargs: Dict[str, Any] = dict(
        model=ctx.model,
        seed=ctx.seed,
        delta=ctx.delta,
        step=ctx.step,
        max_rr_sets=ctx.rr_budget,
    )
    kwargs.update(overrides)
    return SeedQueryEngine(ctx.graph, **kwargs)


# ----------------------------------------------------------------------
# Scenario bodies
# ----------------------------------------------------------------------
def run_cold_opimc(ctx: TrialContext) -> TrialResult:
    result = opim_c(
        ctx.graph,
        ctx.model,
        k=ctx.k,
        epsilon=ctx.epsilon,
        delta=ctx.delta,
        seed=ctx.seed,
        fast=True,
        stopping=ctx.stopping,
    )
    group = ClaimGroup(
        label=f"opim_c[{ctx.stopping}] k={ctx.k}",
        delta=ctx.delta,
        claims=(
            Claim(
                seeds=tuple(result.seeds),
                factor=ctx.alpha_target,
                source=f"opim_c:{ctx.stopping}",
            ),
        ),
    )
    return TrialResult(groups=(group,), rr_sets=result.num_rr_sets)


def run_warm_index(ctx: TrialContext) -> TrialResult:
    assert ctx.index_dir is not None, "warm_index needs an index_dir"
    with _make_engine(ctx, index_dir=ctx.index_dir) as engine:
        engine.answer(ctx.k, epsilon=ctx.epsilon)
        engine.save_index()
        sampled_cold = int(engine.sampler.sets_generated)
    with _make_engine(ctx, index_dir=ctx.index_dir) as warm:
        assert warm.loaded_from_index, "engine did not warm-start"
        warm.answer(ctx.k, epsilon=ctx.epsilon)
        groups = _engine_groups(warm, "warm")
        sampled_total = int(warm.sampler.sets_generated)
    # The post-restart engine's stream position includes the cold
    # engine's sets; both phases belong to the trial's sampling cost.
    return TrialResult(
        groups=tuple(groups), rr_sets=max(sampled_total, sampled_cold)
    )


def run_multi_k(ctx: TrialContext) -> TrialResult:
    with _make_engine(ctx) as engine:
        for k in ctx.ks:
            engine.answer(k, epsilon=ctx.epsilon)
        groups = _engine_groups(engine, "multi_k")
        sampled = int(engine.sampler.sets_generated)
    return TrialResult(groups=tuple(groups), rr_sets=sampled)


def run_repeated_queries(ctx: TrialContext) -> TrialResult:
    with _make_engine(ctx) as engine:
        for _ in range(ctx.queries):
            engine.answer(ctx.k, epsilon=ctx.epsilon)
        groups = _engine_groups(engine, "repeated")
        sampled = int(engine.sampler.sets_generated)
    return TrialResult(groups=tuple(groups), rr_sets=sampled)


def _run_stream_session(ctx: TrialContext, sampler: Optional[Any]) -> TrialResult:
    kind = "pool" if sampler is not None else "serial"
    session = OPIMSession(
        ctx.graph,
        ctx.model,
        k=ctx.k,
        delta=ctx.delta,
        seed=None if sampler is not None else ctx.seed,
        sampler=sampler,
    )
    try:
        session.run_until(
            alpha_target=ctx.alpha_target,
            rr_budget=ctx.rr_budget,
            step=ctx.step,
        )
        group = _session_group(session, f"{kind} k={ctx.k}", kind)
        rr_sets = session.num_rr_sets
    finally:
        # No-op for an injected pool (the runner owns its lifetime)
        # and for the serial sampler; kept for symmetry with OPIMC.
        session.close()
    return TrialResult(groups=(group,), rr_sets=rr_sets)


def run_serial_stream(ctx: TrialContext) -> TrialResult:
    return _run_stream_session(ctx, None)


async def _cluster_trial(ctx: TrialContext) -> TrialResult:
    from repro.serve.cluster import ClusterFrontend
    from repro.serve.http import ServeClient

    front = ClusterFrontend(
        port=0, workers=2, state_dir=ctx.index_dir, drain_timeout=60.0
    )
    await front.start()
    client: Optional[ServeClient] = None
    headers = {"X-Tenant": "stats"}
    try:
        front.register_graph(
            ctx.graph,
            "trial",
            tenant="stats",
            seed=ctx.seed,
            delta=ctx.delta,
            step=ctx.step,
            max_rr_sets=ctx.rr_budget,
        )
        client = await ServeClient.connect(front.host, front.port)

        async def run_job() -> Dict[str, Any]:
            status, _, body = await client.request_raw(
                "POST",
                "/jobs",
                payload={
                    "graph": "trial",
                    "k": ctx.k,
                    "epsilon": ctx.epsilon,
                    "rr_budget": ctx.rr_budget,
                },
                headers=headers,
            )
            assert status == 202, f"submit failed: {status} {body}"
            job_id = body["job_id"]
            status, _, body = await client.request_raw(
                "GET", f"/jobs/{job_id}/result?wait=120", headers=headers
            )
            assert status == 200, f"job failed: {status} {body}"
            return body

        await run_job()
        status, _, body = await client.request_raw(
            "POST", "/graphs/trial/evict", headers=headers
        )
        assert status == 200, f"evict failed: {status} {body}"
        warm = await run_job()
    finally:
        if client is not None:
            await client.close()
        await front.close(drain=True)
    assert warm["engine"]["loaded_from_index"], (
        "worker engine did not warm-start from the persistent index"
    )
    groups = []
    for k_text, claims in warm["claims"].items():
        k = int(k_text)  # JSON object keys arrive as strings
        groups.append(
            ClaimGroup(
                label=f"k={k}",
                delta=ctx.delta,
                claims=tuple(
                    Claim(
                        seeds=tuple(claim["seeds"]),
                        factor=claim["alpha"],
                        source=f"cluster:k={k}:query-{claim['query']}",
                    )
                    for claim in claims
                ),
            )
        )
    return TrialResult(
        groups=tuple(groups),
        rr_sets=int(warm["engine"]["sets_generated"]),
    )


def run_cluster_path(ctx: TrialContext) -> TrialResult:
    assert ctx.index_dir is not None, "cluster_path needs an index_dir"
    return asyncio.run(_cluster_trial(ctx))


def run_pool_stream(ctx: TrialContext) -> TrialResult:
    assert ctx.pool is not None, "pool_stream needs a shared SamplingPool"
    # Trials share one pool: each trial adopts fresh collections and
    # consumes the next slice of the pool's deterministic stream, so
    # trials stay independent without paying a pool spin-up each time.
    return _run_stream_session(ctx, ctx.pool)


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "cold_opimc",
            "single-query Algorithm 2 (threshold claim vs. OPT)",
            run_cold_opimc,
        ),
        Scenario(
            "warm_index",
            "save/restart/load the persistent sketch index, then answer",
            run_warm_index,
            needs_index_dir=True,
        ),
        Scenario(
            "multi_k",
            "one shared sketch adopted across several per-k sessions",
            run_multi_k,
        ),
        Scenario(
            "repeated_queries",
            "identical queries under the delta/2^i schedule",
            run_repeated_queries,
        ),
        Scenario(
            "serial_stream",
            "session loop on the serial RR sampler",
            run_serial_stream,
        ),
        Scenario(
            "pool_stream",
            "session loop on the shared-memory SamplingPool stream",
            run_pool_stream,
            needs_pool=True,
        ),
        Scenario(
            "cluster_path",
            "HTTP front end -> worker process -> evict -> warm requery",
            run_cluster_path,
            needs_index_dir=True,
        ),
    )
}
