"""Statistical acceptance harness for the serve-path guarantees.

The paper's value proposition is the ``(1 - 1/e - eps, 1 - delta)``
guarantee (Theorem 6.2 and the online Section 4 analogue).  This
package verifies it **empirically on the paths production traffic
actually takes** — warm-index restarts, the adopted-sketch multi-``k``
serving layer, repeated identical queries under the ``delta / 2^i``
schedule, and pool-vs-serial sampler streams — by running hundreds of
independent trials against brute-force ``OPT`` oracles and reporting
Clopper–Pearson confidence bounds on the observed failure rates.

It is also the referee for the ``stopping="sadeh"`` sample-complexity
early-stopping rule (:func:`repro.core.theta.theta_sadeh`): the rule
must cut RR sets sampled *and* keep the empirical failure rate within
``delta``.

Entry points:

* :func:`run_scenario` — N trials of one scenario, CP verdict;
* :func:`compare_stopping` — paired paper-vs-sadeh sampling cost;
* :data:`SCENARIOS` — the scenario registry;
* :class:`ExactOracle` — the exact spread / brute-force OPT oracle.
"""

from repro.stats_harness.oracle import ExactOracle
from repro.stats_harness.report import (
    Claim,
    ClaimFailure,
    ClaimGroup,
    LabelStats,
    ScenarioReport,
    TrialResult,
    format_report,
    format_reports,
)
from repro.stats_harness.runner import (
    compare_stopping,
    run_scenario,
    trial_seed,
)
from repro.stats_harness.scenarios import SCENARIOS, Scenario, TrialContext

__all__ = [
    "Claim",
    "ClaimFailure",
    "ClaimGroup",
    "ExactOracle",
    "LabelStats",
    "SCENARIOS",
    "Scenario",
    "ScenarioReport",
    "TrialContext",
    "TrialResult",
    "compare_stopping",
    "format_report",
    "format_reports",
    "run_scenario",
    "trial_seed",
]
