"""Trial runner: empirical verification of the serving guarantees.

:func:`run_scenario` executes N independent trials of one scenario
(each from a deterministically derived seed), checks every emitted
claim group against the exact oracle, and aggregates per-label failure
counts into Clopper–Pearson bounds: the scenario *passes* when the
upper confidence bound on every label's failure rate stays within the
``delta`` the algorithm promised.

:func:`compare_stopping` is the paired referee for the Sadeh et al.
early-stopping rule: same seeds, same graphs, ``stopping="paper"`` vs
``stopping="sadeh"``, reporting RR-set counts against the paper's
``theta_max`` (Eq. 16) worst case.

Seeding: trial ``t`` of a run with entropy ``e`` draws its seed from
``numpy.random.SeedSequence([e, t])`` — replaying a failed trial needs
only ``(e, t)``, which every failure record carries.
"""

from __future__ import annotations

import statistics
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.bounds.binomial import clopper_pearson_interval, clopper_pearson_upper
from repro.core.opimc import opim_c
from repro.core.theta import theta_max
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.service import SamplingPool
from repro.stats_harness.oracle import ExactOracle
from repro.stats_harness.report import (
    ClaimFailure,
    ClaimGroup,
    LabelStats,
    ScenarioReport,
)
from repro.stats_harness.scenarios import SCENARIOS, Scenario, TrialContext

#: Slack absorbing float round-off in spread comparisons — claims are
#: about real-valued spreads, not float representations.
CLAIM_TOLERANCE = 1e-9


def trial_seed(entropy: int, trial: int) -> int:
    """Deterministic per-trial seed: ``SeedSequence([entropy, trial])``."""
    return int(np.random.SeedSequence([entropy, trial]).generate_state(1)[0])


def _check_group(
    oracle: ExactOracle,
    group: ClaimGroup,
    trial: int,
    seed: int,
) -> Optional[ClaimFailure]:
    """First violated claim in the group, or None when all hold."""
    for claim in group.claims:
        spread = oracle.spread(claim.seeds)
        opt = oracle.opt(len(claim.seeds))
        if spread < claim.factor * opt - CLAIM_TOLERANCE:
            return ClaimFailure(
                trial=trial,
                seed=seed,
                label=group.label,
                seeds=claim.seeds,
                factor=claim.factor,
                spread=spread,
                opt=opt,
                source=claim.source,
            )
    return None


def run_scenario(
    scenario: Union[str, Scenario],
    graph: DiGraph,
    *,
    trials: int,
    entropy: int = 0,
    model: str = "IC",
    epsilon: float = 0.3,
    delta: float = 0.25,
    k: int = 2,
    ks: tuple = (1, 2, 3),
    queries: int = 3,
    step: int = 200,
    rr_budget: int = 6000,
    stopping: str = "paper",
    confidence: float = 0.95,
    workers: int = 2,
    tmp_dir: Optional[Union[str, Path]] = None,
    max_recorded_failures: int = 20,
) -> ScenarioReport:
    """Run ``trials`` independent trials and return the verdict.

    Parameters mirror :class:`~repro.stats_harness.scenarios
    .TrialContext`; ``entropy`` roots the per-trial seed derivation,
    ``confidence`` sets the Clopper–Pearson level, ``workers`` sizes
    the shared pool for pool scenarios, and ``tmp_dir`` hosts
    per-trial index directories for warm-index trials (a temporary
    directory is created and cleaned up when omitted).
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ParameterError(
                f"unknown scenario {scenario!r}; "
                f"available: {sorted(SCENARIOS)}"
            ) from None
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")

    oracle = ExactOracle(graph)
    pool: Optional[SamplingPool] = None
    own_tmp: Optional[tempfile.TemporaryDirectory] = None
    base_dir: Optional[Path] = None
    if scenario.needs_index_dir:
        if tmp_dir is None:
            own_tmp = tempfile.TemporaryDirectory(prefix="stats-harness-")
            base_dir = Path(own_tmp.name)
        else:
            base_dir = Path(tmp_dir)

    label_trials: Dict[str, int] = {}
    label_failures: Dict[str, int] = {}
    failures: List[ClaimFailure] = []
    rr_counts: List[int] = []
    try:
        if scenario.needs_pool:
            # The pool's stream is shared by every trial (each consumes
            # the next slice); its seed is derived one step past the
            # trial range so it never collides with a trial seed.
            pool = SamplingPool(
                graph,
                model,
                workers=workers,
                seed=trial_seed(entropy, trials) % (2**31),
            )
        for trial in range(trials):
            seed = trial_seed(entropy, trial)
            ctx = TrialContext(
                graph=graph,
                seed=seed,
                trial=trial,
                model=model,
                epsilon=epsilon,
                delta=delta,
                k=k,
                ks=tuple(ks),
                queries=queries,
                step=step,
                rr_budget=rr_budget,
                stopping=stopping,
                index_dir=(
                    base_dir / f"trial-{trial}" if base_dir is not None else None
                ),
                pool=pool,
            )
            result = scenario.run(ctx)
            rr_counts.append(int(result.rr_sets))
            for group in result.groups:
                label_trials[group.label] = label_trials.get(group.label, 0) + 1
                failure = _check_group(oracle, group, trial, seed)
                if failure is not None:
                    label_failures[group.label] = (
                        label_failures.get(group.label, 0) + 1
                    )
                    if len(failures) < max_recorded_failures:
                        failures.append(failure)
    finally:
        if pool is not None:
            pool.close()
        if own_tmp is not None:
            own_tmp.cleanup()

    labels: List[LabelStats] = []
    for label in sorted(label_trials):
        n_units = label_trials[label]
        n_failed = label_failures.get(label, 0)
        low, high = clopper_pearson_interval(n_failed, n_units, confidence)
        labels.append(
            LabelStats(
                label=label,
                trials=n_units,
                failures=n_failed,
                failure_rate=n_failed / n_units,
                cp_upper=clopper_pearson_upper(n_failed, n_units, confidence),
                cp_low=low,
                cp_high=high,
            )
        )
    max_cp_upper = max((stats.cp_upper for stats in labels), default=0.0)
    return ScenarioReport(
        scenario=scenario.name,
        trials=trials,
        delta=delta,
        epsilon=epsilon,
        confidence=confidence,
        labels=labels,
        max_cp_upper=max_cp_upper,
        passed=max_cp_upper <= delta + CLAIM_TOLERANCE,
        rr_sets_mean=statistics.fmean(rr_counts) if rr_counts else 0.0,
        rr_sets_max=max(rr_counts, default=0),
        params={
            "entropy": entropy,
            "model": model,
            "k": k,
            "ks": list(ks),
            "queries": queries,
            "step": step,
            "rr_budget": rr_budget,
            "stopping": stopping,
            "workers": workers if scenario.needs_pool else None,
            "graph": graph.name,
            "n": graph.n,
            "m": graph.m,
        },
        failures=failures,
    )


def compare_stopping(
    graph: DiGraph,
    *,
    trials: int,
    entropy: int = 0,
    model: str = "IC",
    k: int = 2,
    epsilon: float = 0.3,
    delta: float = 0.25,
    bound: str = "greedy",
) -> Dict[str, Any]:
    """Paired paper-vs-sadeh stopping comparison on one graph.

    Runs ``opim_c`` twice per trial seed — once per stopping rule —
    and reports RR-set counts against Eq. 16's ``theta_max``.  The
    statistical guarantee of the "sadeh" runs is *not* asserted here
    (that needs an exact oracle, i.e. a tiny graph and
    :func:`run_scenario` with ``stopping="sadeh"``); this function
    measures the sampling saving on realistically sized graphs.
    """
    t_max = theta_max(graph.n, k, epsilon, delta)
    rows: List[Dict[str, Any]] = []
    for trial in range(trials):
        seed = trial_seed(entropy, trial)
        per_rule: Dict[str, int] = {}
        for rule in ("paper", "sadeh"):
            result = opim_c(
                graph,
                model,
                k=k,
                epsilon=epsilon,
                delta=delta,
                bound=bound,
                seed=seed,
                fast=True,
                stopping=rule,
            )
            per_rule[rule] = int(result.num_rr_sets)
        rows.append({"trial": trial, "seed": seed, **per_rule})
    paper_counts = [row["paper"] for row in rows]
    sadeh_counts = [row["sadeh"] for row in rows]
    return {
        "graph": graph.name,
        "n": graph.n,
        "m": graph.m,
        "k": k,
        "epsilon": epsilon,
        "delta": delta,
        "bound": bound,
        "trials": trials,
        "entropy": entropy,
        "theta_max": t_max,
        "paper": {
            "rr_mean": statistics.fmean(paper_counts),
            "rr_max": max(paper_counts),
        },
        "sadeh": {
            "rr_mean": statistics.fmean(sadeh_counts),
            "rr_max": max(sadeh_counts),
        },
        "rr_ratio_sadeh_vs_paper": (
            statistics.fmean(sadeh_counts) / statistics.fmean(paper_counts)
        ),
        "rr_ratio_sadeh_vs_theta_max": max(sadeh_counts) / t_max,
        "rows": rows,
    }
