"""Brute-force ground-truth oracles for tiny graphs.

The harness turns the paper's probabilistic guarantee into a countable
event, which requires *exact* values on both sides of

    ``sigma(S*) >= factor * OPT_k``:

* ``sigma(S)`` via :func:`~repro.diffusion.spread.exact_spread_ic`
  (enumeration of all ``2^m`` live-edge worlds);
* ``OPT_k`` by exhaustive search over all ``C(n, k)`` seed sets.

Both are exponential, so the oracle refuses graphs beyond a small
edge/node budget instead of silently taking minutes.  Results are
memoized: one oracle instance amortizes its enumeration across the
hundreds of trials of a scenario run.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Tuple

from repro.diffusion.spread import exact_spread_ic
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph

#: Enumeration budgets: 2^m live-edge worlds and C(n, k) seed sets.
MAX_EDGES = 20
MAX_NODES = 16


class ExactOracle:
    """Memoized exact-spread and brute-force-OPT oracle (IC model)."""

    def __init__(self, graph: DiGraph) -> None:
        if graph.m > MAX_EDGES or graph.n > MAX_NODES:
            raise ParameterError(
                f"graph {graph.name!r} (n={graph.n}, m={graph.m}) is too "
                f"large for exact enumeration (limits: n<={MAX_NODES}, "
                f"m<={MAX_EDGES})"
            )
        self.graph = graph
        self._spread_cache: Dict[Tuple[int, ...], float] = {}
        self._opt_cache: Dict[int, Tuple[float, Tuple[int, ...]]] = {}

    def spread(self, seeds: Iterable[int]) -> float:
        """Exact ``sigma(S)`` under IC."""
        key = tuple(sorted({int(s) for s in seeds}))
        cached = self._spread_cache.get(key)
        if cached is None:
            cached = float(exact_spread_ic(self.graph, key))
            self._spread_cache[key] = cached
        return cached

    def opt(self, k: int) -> float:
        """Exact ``OPT_k = max_{|S| = k} sigma(S)``."""
        return self.opt_with_set(k)[0]

    def opt_with_set(self, k: int) -> Tuple[float, Tuple[int, ...]]:
        """``OPT_k`` together with one maximizing seed set."""
        if not 1 <= k <= self.graph.n:
            raise ParameterError(
                f"k must be in [1, {self.graph.n}], got {k}"
            )
        cached = self._opt_cache.get(k)
        if cached is None:
            best, best_set = -1.0, ()
            for combo in itertools.combinations(range(self.graph.n), k):
                value = self.spread(combo)
                if value > best:
                    best, best_set = value, combo
            cached = (best, best_set)
            self._opt_cache[k] = cached
        return cached
