"""Plain-text rendering of experiment results (tables and series).

The paper presents line plots; an offline terminal reproduction prints
the same data as aligned tables — one row per x value, one column per
algorithm — which is also what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.harness import ExperimentResult


def format_table(rows: Sequence[dict], columns: Sequence[str] = None) -> str:
    """Render dict-rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0])
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_series(
    result: ExperimentResult, x_format: str = "g", show_err: bool = False
) -> str:
    """Render one experiment panel as an x-by-algorithm table.

    ``show_err=True`` appends ``±std`` (across repetitions) to each
    cell when the series carries error bars.
    """
    labels = result.labels()
    if not labels:
        return f"{result.title}\n(no series)"
    xs = result.series[labels[0]].x
    rows: List[dict] = []
    for i, x in enumerate(xs):
        row = {result.x_label: format(x, x_format)}
        for label in labels:
            series = result.series[label]
            if i >= len(series.y):
                row[label] = ""
                continue
            cell = _fmt(series.y[i])
            if show_err and i < len(series.y_err) and series.y_err[i] > 0:
                cell = f"{cell} ±{_fmt(series.y_err[i])}"
            row[label] = cell
        rows.append(row)
    table = format_table(rows, [result.x_label] + labels)
    return f"{result.title}\n{table}"


def save_results_json(results, path) -> None:
    """Write a result / dict / list of results as JSON for external
    plotting tools.

    The format is stable: each panel carries ``experiment_id``,
    ``title``, axis labels, metadata, and its series as
    ``{label, x, y[, y_err]}``.
    """
    import json
    from pathlib import Path

    if isinstance(results, ExperimentResult):
        payload = results.to_dict()
    elif isinstance(results, dict):
        payload = {key: panel.to_dict() for key, panel in results.items()}
    else:
        payload = [panel.to_dict() for panel in results]
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def format_result(results, x_format: str = "g") -> str:
    """Render a result, a dict of results, or an iterable of results."""
    if isinstance(results, ExperimentResult):
        return format_series(results, x_format)
    if isinstance(results, dict):
        parts: Iterable[str] = (
            format_series(panel, x_format) for panel in results.values()
        )
    else:
        parts = (format_series(panel, x_format) for panel in results)
    return "\n\n".join(parts)
