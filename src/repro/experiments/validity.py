"""Empirical validity of the reported guarantees.

The paper's central statistical claim is that a returned pair
``(S*, alpha)`` satisfies ``sigma(S*) >= alpha * OPT`` with probability
at least ``1 - delta``.  This experiment measures the *actual* failure
frequency on instances small enough to brute-force ``OPT`` and compute
``sigma`` exactly, sweeping ``delta``.  Two regimes matter:

* failures must stay below ``delta`` (soundness), and
* because the concentration bounds are conservative, the observed
  frequency is typically far below ``delta`` (the guarantee is valid,
  not tight) — both visible in the output series.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.core.opim import OnlineOPIM
from repro.diffusion.spread import exact_spread_ic
from repro.exceptions import ParameterError
from repro.experiments.harness import ExperimentResult, Series
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, spawn_generators


def brute_force_optimum(graph: DiGraph, k: int) -> float:
    """Exact ``OPT = max_{|S| = k} sigma(S)`` by enumeration (IC)."""
    best = 0.0
    for combo in itertools.combinations(range(graph.n), k):
        best = max(best, exact_spread_ic(graph, combo))
    return best


def guarantee_validity_experiment(
    graph: DiGraph,
    k: int = 2,
    deltas: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
    trials: int = 100,
    rr_sets: int = 400,
    seed: SeedLike = None,
    opt: Optional[float] = None,
) -> ExperimentResult:
    """Measure ``Pr[sigma(S*) < alpha * OPT]`` for each delta.

    Parameters
    ----------
    graph:
        A tiny IC-weighted graph (``m <= 20`` for exact enumeration).
    opt:
        Pre-computed optimum (skips the brute force when given).
    """
    if graph.m > 20:
        raise ParameterError("validity experiment needs m <= 20 (exact OPT)")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if rr_sets % 2:
        raise ParameterError("rr_sets must be even")
    if opt is None:
        opt = brute_force_optimum(graph, k)

    result = ExperimentResult(
        experiment_id="guarantee-validity",
        title=f"Guarantee failure frequency ({graph.name}, IC, k={k})",
        x_label="delta",
        y_label="observed failure frequency",
        metadata={"k": k, "trials": trials, "rr_sets": rr_sets, "opt": opt},
    )
    observed = Series("observed")
    bound = Series("delta (allowed)")
    rngs = spawn_generators(seed, trials)

    for delta in deltas:
        failures = 0
        for rng in rngs:
            algo = OnlineOPIM(graph, "IC", k=k, delta=delta, seed=rng)
            algo.extend(rr_sets)
            snap = algo.query()
            achieved = exact_spread_ic(graph, snap.seeds)
            if achieved < snap.alpha * opt - 1e-12:
                failures += 1
        observed.add(delta, failures / trials)
        bound.add(delta, delta)

    result.series["observed"] = observed
    result.series["delta (allowed)"] = bound
    return result
