"""Spread-versus-k curves (extension experiment).

A standard IM evaluation the paper's related work reports: expected
spread as the seed budget grows.  Greedy's prefix property gives the
whole curve from a *single* OPIM run (seeds selected at the maximum k;
prefixes are the smaller-budget solutions), and the common-random-
numbers evaluator scores all prefixes and all comparison heuristics on
shared live-edge samples, so the curves are directly comparable.

The curve's concavity is submodularity made visible — each additional
seed buys less than the previous one — and the gap to the degree
heuristics quantifies what guarantee-carrying selection is worth.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.heuristics import max_degree, random_seeds
from repro.core.opim import OnlineOPIM
from repro.diffusion.batch_sim import compare_seed_sets
from repro.exceptions import ParameterError
from repro.experiments.harness import ExperimentResult, Series
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike


def spread_vs_k_experiment(
    graph: DiGraph,
    model: str,
    ks: Sequence[int] = (1, 2, 5, 10, 20, 50),
    rr_sets: int = 20_000,
    eval_samples: int = 500,
    seed: SeedLike = None,
    delta: Optional[float] = None,
) -> ExperimentResult:
    """Expected spread vs. seed budget for OPIM, MaxDegree and Random.

    Parameters
    ----------
    ks:
        Seed budgets (ascending); the largest drives seed selection.
    rr_sets:
        RR budget for the single OPIM selection run.
    eval_samples:
        Shared live-edge samples per spread estimate (CRN).
    """
    ks = sorted(int(k) for k in ks)
    if not ks or ks[0] < 1 or ks[-1] > graph.n:
        raise ParameterError(f"ks must be within [1, n], got {ks}")
    if rr_sets % 2:
        raise ParameterError("rr_sets must be even")

    k_max = ks[-1]
    algo = OnlineOPIM(graph, model, k=k_max, delta=delta, seed=seed)
    algo.extend(rr_sets)
    opim_seeds = algo.query().seeds
    degree_seeds = max_degree(graph, k_max).seeds
    random_result = random_seeds(graph, k_max, seed=seed)

    candidates = {}
    for k in ks:
        candidates[f"OPIM+:{k}"] = opim_seeds[:k]
        candidates[f"MaxDegree:{k}"] = degree_seeds[:k]
        candidates[f"Random:{k}"] = random_result.seeds[:k]
    estimates = compare_seed_sets(
        graph, candidates, model, num_samples=eval_samples, seed=seed
    )

    result = ExperimentResult(
        experiment_id="spread-vs-k",
        title=f"Expected spread vs. k ({graph.name}, {model})",
        x_label="k",
        y_label="expected spread",
        metadata={
            "rr_sets": rr_sets,
            "eval_samples": eval_samples,
            "dataset": graph.name,
            "model": model,
        },
    )
    for label in ("OPIM+", "MaxDegree", "Random"):
        series = Series(label)
        for k in ks:
            estimate = estimates[f"{label}:{k}"]
            series.add(k, estimate.mean, estimate.std_error)
        result.series[label] = series
    return result
