"""Experiment harness reproducing every table and figure in Section 8."""

from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
)
from repro.experiments.harness import (
    ExperimentResult,
    Series,
    conventional_comparison,
    online_guarantee_curves,
)
from repro.experiments.reporting import (
    format_result,
    format_series,
    format_table,
    save_results_json,
)
from repro.experiments.reproduce import experiment_ids, run_all
from repro.experiments.spread_curve import spread_vs_k_experiment
from repro.experiments.time_curves import online_time_curves

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "table1",
    "table2",
    "ExperimentResult",
    "Series",
    "online_guarantee_curves",
    "conventional_comparison",
    "format_result",
    "format_series",
    "format_table",
    "save_results_json",
    "run_all",
    "experiment_ids",
    "spread_vs_k_experiment",
    "online_time_curves",
]
