"""One-command reproduction driver.

``run_all`` regenerates every table, figure and ablation at a chosen
preset and writes the plain-text results plus a manifest to an output
directory — the programmatic core of ``repro-opim reproduce``.

Presets
-------
``"smoke"``
    Minutes on a laptop: the benchmark-suite scales.
``"paper"``
    The paper's grid shape (11 checkpoints to ~1M RR sets, epsilon to
    0.05, more repetitions) on the full-size stand-ins.  Hours in pure
    Python; intended for overnight runs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.experiments.ablations import (
    collection_split_ablation,
    delta_split_ablation,
)
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
)
from repro.experiments.harness import checkpoint_grid
from repro.experiments.reporting import format_result, format_table
from repro.datasets.registry import load_dataset
from repro.exceptions import ParameterError

PathLike = Union[str, Path]

PRESETS: Dict[str, dict] = {
    "smoke": {
        "online_scale": 0.12,
        "online_checkpoints": 5,
        "repetitions": 1,
        "conventional_scale": 0.06,
        "epsilons": (0.15, 0.3, 0.5),
        "spread_samples": 500,
    },
    "paper": {
        "online_scale": 1.0,
        "online_checkpoints": 11,
        "repetitions": 5,
        "conventional_scale": 0.5,
        "epsilons": (0.05, 0.1, 0.2, 0.3, 0.5),
        "spread_samples": 2000,
    },
}


def _experiment_registry(preset: dict, seed: int) -> Dict[str, Callable[[], str]]:
    checkpoints = checkpoint_grid(1000, preset["online_checkpoints"])
    online = dict(
        checkpoints=checkpoints,
        repetitions=preset["repetitions"],
        scale=preset["online_scale"],
        seed=seed,
    )
    conventional = dict(
        epsilons=preset["epsilons"],
        repetitions=preset["repetitions"],
        scale=preset["conventional_scale"],
        seed=seed,
        spread_samples=preset["spread_samples"],
    )

    def ablation(runner):
        graph = load_dataset("pokec-sim", scale=preset["online_scale"])
        return format_result(
            runner(graph, "IC", k=20, repetitions=preset["repetitions"], seed=seed)
        )

    return {
        "figure1": lambda: format_result(figure1(), x_format=".3g"),
        "figure2": lambda: format_result(figure2(**online)),
        "figure3": lambda: format_result(figure3(ks=(1, 10, 100), **online)),
        "figure4": lambda: format_result(figure4(**online)),
        "figure5": lambda: format_result(figure5(ks=(1, 10, 100), **online)),
        "figure6": lambda: format_result(figure6(**conventional)),
        "figure7": lambda: format_result(figure7(**conventional)),
        "table1": lambda: format_table(
            table1(scale=preset["online_scale"] * 2, seed=seed)
        ),
        "table2": lambda: format_table(table2()),
        "ablation_delta_split": lambda: ablation(delta_split_ablation),
        "ablation_collection_split": lambda: ablation(collection_split_ablation),
    }


def run_all(
    output_dir: PathLike,
    preset: str = "smoke",
    seed: int = 2018,
    only: List[str] = None,
) -> Dict[str, float]:
    """Regenerate experiments into *output_dir*; returns runtimes.

    Parameters
    ----------
    only:
        Optional subset of experiment ids (see :func:`experiment_ids`).
    """
    if preset not in PRESETS:
        raise ParameterError(f"preset must be one of {tuple(PRESETS)}, got {preset!r}")
    registry = _experiment_registry(PRESETS[preset], seed)
    if only is not None:
        unknown = set(only) - set(registry)
        if unknown:
            raise ParameterError(f"unknown experiment ids: {sorted(unknown)}")
        registry = {name: registry[name] for name in only}

    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    runtimes: Dict[str, float] = {}
    for name, runner in registry.items():
        started = time.perf_counter()
        text = runner()
        runtimes[name] = time.perf_counter() - started
        (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    manifest = {
        "preset": preset,
        "seed": seed,
        "experiments": list(registry),
        "runtimes_seconds": {k: round(v, 3) for k, v in runtimes.items()},
    }
    (output_dir / "manifest.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return runtimes


def experiment_ids() -> List[str]:
    """All experiment ids ``run_all`` knows about."""
    return list(_experiment_registry(PRESETS["smoke"], 0))
