"""Per-figure experiment definitions (paper, Section 8 + Figure 1).

Every public function regenerates one table or figure of the paper.
Defaults are sized for a pure-Python run in seconds-to-minutes; pass
larger ``checkpoints`` / ``scale`` / ``repetitions`` to approach the
paper's full grid (RR budgets ``1000 * 2^i, i = 0..10``, 50 reps).
The mapping from figures to functions is indexed in DESIGN.md §3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bounds.concentration import delta_split_ratio
from repro.core.opim import OnlineOPIM
from repro.datasets.registry import dataset_names, load_dataset, table2_rows
from repro.experiments.harness import (
    ExperimentResult,
    Series,
    checkpoint_grid,
    conventional_comparison,
    online_guarantee_curves,
)
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer

#: Scales that keep each stand-in proportionate when shrunk for tests.
_DEFAULT_DATASETS = dataset_names()


# ----------------------------------------------------------------------
# Figure 1 — near-optimality of the delta/2 split (Lemma 4.4)
# ----------------------------------------------------------------------
def figure1(
    coverage_r2: float = 100.0,
    deltas: Sequence[float] = (1e-1, 1e-2, 1e-4, 1e-8),
    coverage_r1_grid: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """The ratio ``f(ln 2/d) g(ln 1/d) / (f(ln 1/d) g(ln 2/d))``.

    The paper fixes ``Lambda_2(S*) = 100`` and varies ``delta`` and
    ``Lambda_1(S*)``; the ratio staying near 1 shows the fixed
    ``delta/2`` split is near-optimal.
    """
    if coverage_r1_grid is None:
        coverage_r1_grid = np.logspace(2, 6, num=9)
    result = ExperimentResult(
        experiment_id="figure1",
        title=f"Lemma 4.4 split ratio (Lambda2 = {coverage_r2:g})",
        x_label="Lambda1(S*)",
        y_label="alpha / alpha' lower bound",
        metadata={"coverage_r2": coverage_r2},
    )
    for delta in deltas:
        series = Series(f"delta={delta:g}")
        for coverage_r1 in coverage_r1_grid:
            series.add(
                coverage_r1,
                delta_split_ratio(delta, float(coverage_r1), coverage_r2),
            )
        result.series[series.label] = series
    return result


# ----------------------------------------------------------------------
# Figures 2–5 — online guarantees vs. RR budget
# ----------------------------------------------------------------------
def _online_figure(
    figure_id: str,
    model: str,
    datasets: Sequence[str],
    ks: Sequence[int],
    checkpoints: Sequence[int],
    repetitions: int,
    scale: float,
    seed: SeedLike,
    include_adoptions: bool,
    registry=None,
) -> Dict[str, ExperimentResult]:
    panels: Dict[str, ExperimentResult] = {}
    for dataset in datasets:
        graph = load_dataset(dataset, scale=scale)
        for k in ks:
            k_eff = min(k, graph.n)
            panel = online_guarantee_curves(
                graph,
                model,
                k=k_eff,
                checkpoints=checkpoints,
                repetitions=repetitions,
                seed=seed,
                include_adoptions=include_adoptions,
                registry=registry,
            )
            key = f"{dataset}:k={k_eff}" if len(ks) > 1 else dataset
            panel.experiment_id = f"{figure_id}:{key}"
            panels[key] = panel
    return panels


def figure2(
    checkpoints: Optional[Sequence[int]] = None,
    datasets: Sequence[str] = _DEFAULT_DATASETS,
    k: int = 50,
    repetitions: int = 3,
    scale: float = 1.0,
    seed: SeedLike = 2018,
    include_adoptions: bool = True,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Figure 2: guarantee vs. #RR sets, LT model, k=50, four graphs."""
    checkpoints = checkpoints or checkpoint_grid(1000, 7)
    return _online_figure(
        "figure2", "LT", datasets, [k], checkpoints,
        repetitions, scale, seed, include_adoptions, registry=registry,
    )


def figure3(
    checkpoints: Optional[Sequence[int]] = None,
    ks: Sequence[int] = (1, 10, 100, 1000),
    repetitions: int = 3,
    scale: float = 1.0,
    seed: SeedLike = 2018,
    include_adoptions: bool = True,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Figure 3: guarantee vs. #RR sets on Twitter-sim, LT, varying k."""
    checkpoints = checkpoints or checkpoint_grid(1000, 7)
    return _online_figure(
        "figure3", "LT", ["twitter-sim"], ks, checkpoints,
        repetitions, scale, seed, include_adoptions, registry=registry,
    )


def figure4(
    checkpoints: Optional[Sequence[int]] = None,
    datasets: Sequence[str] = _DEFAULT_DATASETS,
    k: int = 50,
    repetitions: int = 3,
    scale: float = 1.0,
    seed: SeedLike = 2018,
    include_adoptions: bool = True,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Figure 4: the Figure 2 experiment under the IC model."""
    checkpoints = checkpoints or checkpoint_grid(1000, 7)
    return _online_figure(
        "figure4", "IC", datasets, [k], checkpoints,
        repetitions, scale, seed, include_adoptions, registry=registry,
    )


def figure5(
    checkpoints: Optional[Sequence[int]] = None,
    ks: Sequence[int] = (1, 10, 100, 1000),
    repetitions: int = 3,
    scale: float = 1.0,
    seed: SeedLike = 2018,
    include_adoptions: bool = True,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Figure 5: the Figure 3 experiment under the IC model."""
    checkpoints = checkpoints or checkpoint_grid(1000, 7)
    return _online_figure(
        "figure5", "IC", ["twitter-sim"], ks, checkpoints,
        repetitions, scale, seed, include_adoptions, registry=registry,
    )


# ----------------------------------------------------------------------
# Figures 6–7 — conventional influence maximization vs. epsilon
# ----------------------------------------------------------------------
def figure6(
    epsilons: Sequence[float] = (0.1, 0.2, 0.3, 0.5),
    k: int = 50,
    repetitions: int = 1,
    scale: float = 0.1,
    seed: SeedLike = 2018,
    spread_samples: int = 2000,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Figure 6: conventional IM on Twitter-sim under LT.

    Panel (a) = ``"spread"``; panel (b) = ``"time"`` (with
    ``"rr_sets"`` as the hardware-independent companion).  The paper
    sweeps epsilon in [0.01, 0.1] on 41.7M nodes in C++; the default
    grid here is shifted right to keep IMM's ``1/eps^2`` sample count
    feasible in Python — the relative shapes are preserved.
    """
    graph = load_dataset("twitter-sim", scale=scale)
    return conventional_comparison(
        graph,
        "LT",
        k=min(k, graph.n),
        epsilons=epsilons,
        repetitions=repetitions,
        seed=seed,
        spread_samples=spread_samples,
        registry=registry,
    )


def figure7(
    epsilons: Sequence[float] = (0.1, 0.2, 0.3, 0.5),
    k: int = 50,
    repetitions: int = 1,
    scale: float = 0.1,
    seed: SeedLike = 2018,
    spread_samples: int = 2000,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Figure 7: the Figure 6 experiment under the IC model."""
    graph = load_dataset("twitter-sim", scale=scale)
    return conventional_comparison(
        graph,
        "IC",
        k=min(k, graph.n),
        epsilons=epsilons,
        repetitions=repetitions,
        seed=seed,
        spread_samples=spread_samples,
        registry=registry,
    )


# ----------------------------------------------------------------------
# Table 1 — guarantee-derivation time of the three OPIM variants
# ----------------------------------------------------------------------
def table1(
    dataset: str = "pokec-sim",
    model: str = "IC",
    k: int = 50,
    num_rr_sets: int = 20_000,
    scale: float = 1.0,
    seed: SeedLike = 2018,
    repeats: int = 3,
) -> List[dict]:
    """Measure the per-query cost of each OPIM bound variant.

    Table 1 in the paper states asymptotic complexities; this measures
    the corresponding wall-clock cost of deriving ``S*`` plus its
    guarantee from a fixed pair of collections, per variant.
    """
    graph = load_dataset(dataset, scale=scale)
    online = OnlineOPIM(graph, model, k=min(k, graph.n), seed=seed)
    online.extend(num_rr_sets)
    online.r1.build()
    online.r2.build()

    complexities = {
        "OPIM0": "O(sum |R|)",
        "OPIM+": "O(kn + sum |R|)",
        "OPIM'": "O(n + sum |R|)",
    }
    bound_of = {"OPIM0": "vanilla", "OPIM+": "greedy", "OPIM'": "leskovec"}

    rows = []
    for label, variant in bound_of.items():
        timer = Timer()
        for _ in range(repeats):
            online._greedy_cache = None  # force a fresh greedy pass
            with timer:
                online.query(bound=variant)
        rows.append(
            {
                "Algorithm": label,
                "Time complexity": complexities[label],
                "Measured query time (s)": timer.elapsed / repeats,
                "RR sets": online.num_rr_sets,
                "k": online.k,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — dataset summary
# ----------------------------------------------------------------------
def table2(scale: float = 1.0) -> List[dict]:
    """Regenerate Table 2 (stand-in vs. paper dataset statistics)."""
    return table2_rows(scale=scale)
