"""Generic experiment runners shared by all figures.

Two workloads cover the paper's whole evaluation:

* :func:`online_guarantee_curves` — the OPIM experiments (Figures 2–5):
  drive every online algorithm through the same RR-set checkpoints
  ``base * 2^i`` and record the approximation guarantee each reports.
* :func:`conventional_comparison` — the influence-maximization
  experiments (Figures 6–7): run every conventional algorithm across an
  ``epsilon`` grid and record seed-set spread, RR-set count, and time.

Both average over ``repetitions`` independent seeds (the paper uses 50;
defaults here are small so tests and benches stay fast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dssa import dssa_fix
from repro.baselines.imm import imm
from repro.baselines.ssa import ssa_fix
from repro.core.adoption import OPIMAdoption
from repro.core.borgs import BorgsOnline
from repro.core.opim import OnlineOPIM
from repro.core.opimc import opim_c
from repro.diffusion.spread import monte_carlo_spread
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.obs import resolve_registry
from repro.utils.rng import SeedLike, spawn_generators

#: Display names matching the paper's figure legends.
OPIM_VARIANT_LABELS = {
    "vanilla": "OPIM0",
    "greedy": "OPIM+",
    "leskovec": "OPIM'",
}

ADOPTED_ALGORITHMS: Dict[str, Callable] = {
    "IMM": imm,
    "SSA-Fix": ssa_fix,
    "D-SSA-Fix": dssa_fix,
}


@dataclass
class Series:
    """One plotted line: label, (x, y) points, optional error bars.

    ``y_err`` holds the standard deviation across repetitions when the
    harness ran more than one (empty otherwise).
    """

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    y_err: List[float] = field(default_factory=list)

    def add(self, x: float, y: float, y_err: float = None) -> None:
        self.x.append(float(x))
        self.y.append(float(y))
        if y_err is not None:
            self.y_err.append(float(y_err))

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.x, self.y))

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        payload = {"label": self.label, "x": list(self.x), "y": list(self.y)}
        if self.y_err:
            payload["y_err"] = list(self.y_err)
        return payload


@dataclass
class ExperimentResult:
    """One figure panel: id, axis labels, and its series."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def get(self, label: str) -> Series:
        return self.series[label]

    def labels(self) -> List[str]:
        return list(self.series)

    def to_dict(self) -> dict:
        """JSON-serializable representation (for external plotting)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "metadata": dict(self.metadata),
            "series": [s.to_dict() for s in self.series.values()],
        }


def checkpoint_grid(base: int = 1000, num: int = 11) -> List[int]:
    """The paper's RR-set checkpoints ``base * 2^i, i = 0..num-1``."""
    if base < 2 or num < 1:
        raise ParameterError("base must be >= 2 and num >= 1")
    return [base * (2**i) for i in range(num)]


def online_guarantee_curves(
    graph: DiGraph,
    model: str,
    k: int,
    checkpoints: Sequence[int],
    delta: Optional[float] = None,
    repetitions: int = 3,
    seed: SeedLike = None,
    include_adoptions: bool = True,
    include_borgs: bool = True,
    registry=None,
) -> ExperimentResult:
    """Reported guarantee vs. #RR sets for all seven online algorithms.

    Algorithms evaluated (paper Figures 2–5): Borgs et al., OPIM0,
    OPIM+, OPIM', and the OPIM-adoptions of IMM / SSA-Fix / D-SSA-Fix.
    Every algorithm is checkpointed at exactly the budgets in
    *checkpoints* and every repetition uses an independent RNG stream;
    curves carry the mean over repetitions.

    ``registry`` (optional :class:`~repro.obs.MetricsRegistry`) is
    threaded into the OPIM runners and wraps each repetition in a
    ``harness/online/rep_<i>`` span.
    """
    if delta is None:
        delta = 1.0 / graph.n
    obs = resolve_registry(registry)
    checkpoints = sorted(int(c) for c in checkpoints)
    labels = list(OPIM_VARIANT_LABELS.values())
    if include_borgs:
        labels.append("Borgs")
    if include_adoptions:
        labels.extend(ADOPTED_ALGORITHMS)

    samples = {
        label: np.zeros((repetitions, len(checkpoints))) for label in labels
    }
    rep_rngs = spawn_generators(seed, repetitions)
    for rep, rep_rng in enumerate(rep_rngs):
        rngs = spawn_generators(rep_rng, 2 + len(ADOPTED_ALGORITHMS))

        with obs.trace(f"harness/online/rep_{rep}"):
            # Our OPIM family shares one sampling stream across variants.
            online = OnlineOPIM(
                graph, model, k=k, delta=delta, seed=rngs[0], registry=obs
            )
            for idx, budget in enumerate(checkpoints):
                online.extend_to(budget)
                snapshots = online.query_all()
                for variant, label in OPIM_VARIANT_LABELS.items():
                    samples[label][rep, idx] = snapshots[variant].alpha

            if include_borgs:
                borgs = BorgsOnline(graph, model, k=k, delta=delta, seed=rngs[1])
                for idx, budget in enumerate(checkpoints):
                    borgs.extend_to(budget)
                    samples["Borgs"][rep, idx] = borgs.query().alpha

            if include_adoptions:
                max_budget = checkpoints[-1]
                for alg_idx, (name, run) in enumerate(ADOPTED_ALGORITHMS.items()):
                    alg_rng = rngs[2 + alg_idx]

                    def invoke(epsilon: float, rr_cap: Optional[int], _run=run):
                        return _run(
                            graph,
                            model,
                            k,
                            epsilon,
                            delta=delta,
                            seed=alg_rng,
                            rr_budget=rr_cap,
                        )

                    curve = OPIMAdoption(name, invoke).run(max_budget)
                    for idx, budget in enumerate(checkpoints):
                        samples[name][rep, idx] = curve.guarantee_at(budget)

    result = ExperimentResult(
        experiment_id="online-guarantees",
        title=f"Approximation guarantee ({graph.name}, {model}, k={k})",
        x_label="number of RR sets",
        y_label="approximation guarantee",
        metadata={
            "dataset": graph.name,
            "model": model,
            "k": k,
            "delta": delta,
            "repetitions": repetitions,
        },
    )
    for label in labels:
        series = Series(label)
        means = samples[label].mean(axis=0)
        stds = (
            samples[label].std(axis=0, ddof=1)
            if repetitions > 1
            else np.zeros(len(checkpoints))
        )
        for idx, budget in enumerate(checkpoints):
            series.add(budget, means[idx], stds[idx])
        result.series[label] = series
    return result


CONVENTIONAL_ALGORITHMS = (
    "OPIM-C0", "OPIM-C'", "OPIM-C+", "IMM", "SSA-Fix", "D-SSA-Fix"
)

_OPIMC_BOUNDS = {"OPIM-C0": "vanilla", "OPIM-C'": "leskovec", "OPIM-C+": "greedy"}


def conventional_comparison(
    graph: DiGraph,
    model: str,
    k: int,
    epsilons: Sequence[float],
    delta: Optional[float] = None,
    repetitions: int = 3,
    seed: SeedLike = None,
    spread_samples: int = 2000,
    algorithms: Sequence[str] = CONVENTIONAL_ALGORITHMS,
    registry=None,
) -> Dict[str, ExperimentResult]:
    """Spread / RR-set count / runtime vs. epsilon (Figures 6–7).

    Returns three panels keyed ``"spread"``, ``"rr_sets"`` and
    ``"time"``.  The paper's panel (b) plots running time; RR-set
    counts are included as the hardware-independent equivalent.

    ``registry`` is threaded into the OPIM-C runs and wraps every
    ``(algorithm, epsilon)`` cell in a ``harness/conventional/...`` span.
    """
    if delta is None:
        delta = 1.0 / graph.n
    obs = resolve_registry(registry)
    for name in algorithms:
        if name not in CONVENTIONAL_ALGORITHMS:
            raise ParameterError(f"unknown algorithm {name!r}")
    epsilons = [float(e) for e in epsilons]

    shape = (repetitions, len(epsilons))
    spread_values = {a: np.zeros(shape) for a in algorithms}
    rr_values = {a: np.zeros(shape) for a in algorithms}
    time_values = {a: np.zeros(shape) for a in algorithms}

    rep_rngs = spawn_generators(seed, repetitions)
    for rep, rep_rng in enumerate(rep_rngs):
        rngs = spawn_generators(rep_rng, len(algorithms) + 1)
        eval_rng = rngs[-1]
        for alg_idx, name in enumerate(algorithms):
            alg_rng = rngs[alg_idx]
            for eps_idx, epsilon in enumerate(epsilons):
                with obs.trace(
                    f"harness/conventional/{name}/eps_{epsilon:g}"
                ):
                    if name in _OPIMC_BOUNDS:
                        result = opim_c(
                            graph,
                            model,
                            k,
                            epsilon,
                            delta=delta,
                            bound=_OPIMC_BOUNDS[name],
                            seed=alg_rng,
                            registry=obs,
                        )
                    else:
                        result = ADOPTED_ALGORITHMS[name](
                            graph, model, k, epsilon, delta=delta, seed=alg_rng
                        )
                estimate = monte_carlo_spread(
                    graph,
                    result.seeds,
                    model,
                    num_samples=spread_samples,
                    seed=eval_rng,
                )
                spread_values[name][rep, eps_idx] = estimate.mean
                rr_values[name][rep, eps_idx] = result.num_rr_sets
                time_values[name][rep, eps_idx] = result.elapsed

    def make_panel(panel_id: str, y_label: str, values: Dict[str, np.ndarray]):
        panel = ExperimentResult(
            experiment_id=panel_id,
            title=f"{y_label} ({graph.name}, {model}, k={k})",
            x_label="epsilon",
            y_label=y_label,
            metadata={
                "dataset": graph.name,
                "model": model,
                "k": k,
                "delta": delta,
                "repetitions": repetitions,
            },
        )
        for name in algorithms:
            series = Series(name)
            means = values[name].mean(axis=0)
            stds = (
                values[name].std(axis=0, ddof=1)
                if repetitions > 1
                else np.zeros(len(epsilons))
            )
            for eps_idx, epsilon in enumerate(epsilons):
                series.add(epsilon, means[eps_idx], stds[eps_idx])
            panel.series[name] = series
        return panel

    return {
        "spread": make_panel(
            "conventional-spread", "expected spread", spread_values
        ),
        "rr_sets": make_panel("conventional-rr", "RR sets generated", rr_values),
        "time": make_panel("conventional-time", "running time (s)", time_values),
    }
