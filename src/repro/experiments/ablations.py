"""Ablations of OPIM's design choices.

The paper fixes two free parameters of its quality-assessment scheme
and argues each briefly; these ablations measure them empirically:

* **delta split** (Lemma 4.4 / Figure 1): the failure budget is split
  ``delta_1 = delta_2 = delta / 2`` between the optimum's upper bound
  and the seed set's lower bound.  :func:`delta_split_ablation` sweeps
  the split on a live instance and reports the achieved alpha — the
  empirical counterpart of Figure 1's analytical ratio.

* **collection split** (Section 4.1): the RR-set stream is divided
  *evenly* between the nominators ``R1`` and the judges ``R2``.
  :func:`collection_split_ablation` sweeps the R1 fraction and reports
  alpha at a fixed total budget, showing the even split sits near the
  empirical optimum.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bounds.concentration import (
    approximation_guarantee,
    sigma_lower_bound,
    sigma_upper_bound,
)
from repro.exceptions import ParameterError
from repro.experiments.harness import ExperimentResult, Series
from repro.graph.digraph import DiGraph
from repro.maxcover.bounds import coverage_upper_bound_greedy
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike, spawn_generators


def delta_split_ablation(
    graph: DiGraph,
    model: str,
    k: int,
    num_rr_sets: int = 10_000,
    delta: Optional[float] = None,
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    repetitions: int = 3,
    seed: SeedLike = None,
) -> ExperimentResult:
    """alpha as a function of the fraction of delta given to delta_1.

    ``fractions[i]`` sets ``delta_1 = f * delta`` and
    ``delta_2 = (1 - f) * delta``; ``f = 0.5`` is the paper's choice.
    """
    if delta is None:
        delta = 1.0 / graph.n
    for f in fractions:
        if not 0.0 < f < 1.0:
            raise ParameterError(f"fractions must lie in (0, 1), got {f}")
    if num_rr_sets % 2:
        raise ParameterError("num_rr_sets must be even")

    half = num_rr_sets // 2
    sums = [0.0] * len(fractions)
    for rep_rng in spawn_generators(seed, repetitions):
        sampler = RRSampler(graph, model, seed=rep_rng)
        r1 = sampler.new_collection(half)
        r2 = sampler.new_collection(half)
        greedy = greedy_max_coverage(r1, k)
        coverage_r2 = r2.coverage(greedy.seeds)
        upper = coverage_upper_bound_greedy(greedy)
        for i, f in enumerate(fractions):
            low = sigma_lower_bound(coverage_r2, half, graph.n, (1 - f) * delta)
            up = sigma_upper_bound(upper, half, graph.n, f * delta)
            sums[i] += approximation_guarantee(low, up)

    result = ExperimentResult(
        experiment_id="ablation-delta-split",
        title=f"alpha vs delta_1 fraction ({graph.name}, {model}, k={k})",
        x_label="delta_1 / delta",
        y_label="reported alpha",
        metadata={"num_rr_sets": num_rr_sets, "delta": delta, "k": k},
    )
    series = Series("OPIM+")
    for f, total in zip(fractions, sums):
        series.add(f, total / repetitions)
    result.series["OPIM+"] = series
    return result


def collection_split_ablation(
    graph: DiGraph,
    model: str,
    k: int,
    num_rr_sets: int = 10_000,
    delta: Optional[float] = None,
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    repetitions: int = 3,
    seed: SeedLike = None,
) -> ExperimentResult:
    """alpha as a function of the fraction of samples given to R1.

    ``fractions[i]`` allocates ``f * num_rr_sets`` samples to the
    nominator collection and the rest to the judges; ``f = 0.5`` is the
    paper's even split (Section 4.1).
    """
    if delta is None:
        delta = 1.0 / graph.n
    for f in fractions:
        if not 0.0 < f < 1.0:
            raise ParameterError(f"fractions must lie in (0, 1), got {f}")

    sums = [0.0] * len(fractions)
    for rep_rng in spawn_generators(seed, repetitions):
        rngs = spawn_generators(rep_rng, len(fractions))
        for i, (f, rng) in enumerate(zip(fractions, rngs)):
            theta1 = max(1, int(round(f * num_rr_sets)))
            theta2 = max(1, num_rr_sets - theta1)
            sampler = RRSampler(graph, model, seed=rng)
            r1 = sampler.new_collection(theta1)
            r2 = sampler.new_collection(theta2)
            greedy = greedy_max_coverage(r1, k)
            low = sigma_lower_bound(
                r2.coverage(greedy.seeds), theta2, graph.n, delta / 2
            )
            up = sigma_upper_bound(
                coverage_upper_bound_greedy(greedy), theta1, graph.n, delta / 2
            )
            sums[i] += approximation_guarantee(low, up)

    result = ExperimentResult(
        experiment_id="ablation-collection-split",
        title=f"alpha vs R1 fraction ({graph.name}, {model}, k={k})",
        x_label="|R1| / (|R1| + |R2|)",
        y_label="reported alpha",
        metadata={"num_rr_sets": num_rr_sets, "delta": delta, "k": k},
    )
    series = Series("OPIM+")
    for f, total in zip(fractions, sums):
        series.add(f, total / repetitions)
    result.series["OPIM+"] = series
    return result
