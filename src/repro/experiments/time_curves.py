"""Guarantee-versus-wall-clock-time curves.

The paper's motivation is a *time* budget ("the user can pause the
algorithm at any time"), while its figures use RR-set counts as the
hardware-independent x-axis.  This experiment provides the
time-denominated view: drive each online algorithm until its own
accumulated processing time crosses each checkpoint, then query.

Adoptions are excluded — an in-flight invocation of a conventional
algorithm cannot be paused mid-way, so time-checkpointing them would
need asynchronous execution; the RR-budget curves already capture
their step behaviour.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.borgs import BorgsOnline
from repro.core.opim import OnlineOPIM
from repro.exceptions import ParameterError
from repro.experiments.harness import (
    ExperimentResult,
    OPIM_VARIANT_LABELS,
    Series,
)
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, spawn_generators


def _drive_to_time(algo, target_seconds: float, chunk: int = 200) -> None:
    """Extend *algo* until its own timer passes *target_seconds*."""
    while algo.timer.elapsed < target_seconds:
        algo.extend(chunk)
        # Adapt the chunk so we overshoot by at most ~10%.
        elapsed = algo.timer.elapsed
        if elapsed > 0:
            rate = algo.num_rr_sets / elapsed
            remaining = target_seconds - elapsed
            chunk = max(2, int(rate * max(remaining, 0.01) * 0.5))
            chunk += chunk % 2


def online_time_curves(
    graph: DiGraph,
    model: str,
    k: int,
    time_checkpoints: Sequence[float],
    delta: Optional[float] = None,
    repetitions: int = 1,
    seed: SeedLike = None,
    include_borgs: bool = True,
) -> ExperimentResult:
    """Reported guarantee vs. processing time for the online algorithms.

    ``time_checkpoints`` are seconds of *algorithm* time (sampling +
    querying), not wall time of the harness.
    """
    checkpoints = sorted(float(t) for t in time_checkpoints)
    if not checkpoints or checkpoints[0] <= 0:
        raise ParameterError("time checkpoints must be positive")
    if delta is None:
        delta = 1.0 / graph.n

    labels = list(OPIM_VARIANT_LABELS.values())
    if include_borgs:
        labels.append("Borgs")
    samples = {label: np.zeros((repetitions, len(checkpoints))) for label in labels}

    for rep, rep_rng in enumerate(spawn_generators(seed, repetitions)):
        rngs = spawn_generators(rep_rng, 2)
        online = OnlineOPIM(graph, model, k=k, delta=delta, seed=rngs[0])
        for idx, target in enumerate(checkpoints):
            _drive_to_time(online, target)
            snapshots = online.query_all()
            for variant, label in OPIM_VARIANT_LABELS.items():
                samples[label][rep, idx] = snapshots[variant].alpha
        if include_borgs:
            borgs = BorgsOnline(graph, model, k=k, delta=delta, seed=rngs[1])
            for idx, target in enumerate(checkpoints):
                while borgs.timer.elapsed < target:
                    borgs.extend(200)
                samples["Borgs"][rep, idx] = borgs.query().alpha

    result = ExperimentResult(
        experiment_id="online-time-curves",
        title=f"Guarantee vs. processing time ({graph.name}, {model}, k={k})",
        x_label="processing time (s)",
        y_label="approximation guarantee",
        metadata={
            "dataset": graph.name,
            "model": model,
            "k": k,
            "delta": delta,
            "repetitions": repetitions,
        },
    )
    for label in labels:
        series = Series(label)
        means = samples[label].mean(axis=0)
        stds = (
            samples[label].std(axis=0, ddof=1)
            if repetitions > 1
            else np.zeros(len(checkpoints))
        )
        for idx, target in enumerate(checkpoints):
            series.add(target, means[idx], stds[idx])
        result.series[label] = series
    return result
