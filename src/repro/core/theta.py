"""Sample-size formulas for OPIM-C (paper, Eqs. 16–17).

``theta_max`` upper-bounds the number of RR sets guaranteeing a
``(1 - 1/e - epsilon)``-approximation w.p. ``1 - delta/3`` (Lemma 6.1
instantiated with ``delta/3``); ``theta_0`` is the starting collection
size; OPIM-C doubles from ``theta_0`` at most ``i_max`` times before it
reaches ``theta_max``.
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError
from repro.utils.validation import check_delta, check_epsilon, check_k


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma, stable for large ``n`` (the
    ``ln binom(n, k)`` term of Eq. 16)."""
    if k < 0 or k > n:
        raise ParameterError(f"require 0 <= k <= n, got k={k}, n={n}")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def theta_max(n: int, k: int, epsilon: float, delta: float) -> float:
    """Eq. 16: RR sets sufficient for ``(1-1/e-eps)`` w.p. ``1-delta/3``.

    ``theta_max = 2n ((1-1/e) sqrt(ln 6/delta)
    + sqrt((1-1/e)(ln C(n,k) + ln 6/delta)))^2 / (eps^2 k)``
    """
    check_k(k, n)
    check_epsilon(epsilon)
    check_delta(delta)
    c = 1.0 - 1.0 / math.e
    log_term = math.log(6.0 / delta)
    numerator = (
        c * math.sqrt(log_term)
        + math.sqrt(c * (log_binomial(n, k) + log_term))
    ) ** 2
    return 2.0 * n * numerator / (epsilon * epsilon * k)


def theta_0(n: int, k: int, epsilon: float, delta: float) -> float:
    """Eq. 17: ``theta_0 = theta_max * eps^2 k / n``.

    Algebraically this is the Eq. 16 numerator alone — a size
    independent of ``n/eps^2 k`` that keeps the first iteration cheap.
    """
    return theta_max(n, k, epsilon, delta) * epsilon * epsilon * k / n


def i_max_iterations(n: int, k: int, epsilon: float, delta: float) -> int:
    """``i_max = ceil(log2(theta_max / theta_0))`` — the doubling-
    iteration cap of Algorithm 2; equals ``ceil(log2(n / (eps^2 k)))``."""
    t_max = theta_max(n, k, epsilon, delta)
    t_0 = theta_0(n, k, epsilon, delta)
    return max(1, math.ceil(math.log2(t_max / t_0)))
