"""Sample-size formulas for OPIM-C (paper, Eqs. 16–17).

``theta_max`` upper-bounds the number of RR sets guaranteeing a
``(1 - 1/e - epsilon)``-approximation w.p. ``1 - delta/3`` (Lemma 6.1
instantiated with ``delta/3``); ``theta_0`` is the starting collection
size; OPIM-C doubles from ``theta_0`` at most ``i_max`` times before it
reaches ``theta_max``.

``theta_sadeh`` is a tighter stopping cap following the
sample-complexity analysis of Sadeh, Cohen & Kaplan (arXiv:1907.13301):
Eq. 16's union bound over all ``C(n, k)`` candidate seed sets
(``ln C(n, k) ~ k ln n``) is replaced by a term linear in ``k``, and
the pessimistic ``OPT >= k`` floor in the denominator by any valid
lower bound on ``OPT`` — e.g. the Eq. 5 lower bound the algorithm has
already certified for its current greedy solution.  OPIM-C consumes it
through ``OPIMC(stopping="sadeh")``; the statistical acceptance
harness (:mod:`repro.stats_harness`) is the referee that the cheaper
cap preserves the empirical ``(1 - 1/e - eps, 1 - delta)`` guarantee.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.exceptions import ParameterError
from repro.utils.validation import check_delta, check_epsilon, check_k

#: Constant of the linear-in-k union-bound term of the Sadeh et al.
#: analysis (their Theorem 1 counts candidate sets through a
#: per-element argument rather than ``C(n, k)``; ``1 + ln 2`` makes the
#: k-term an explicit-constant analogue of ``ln C(n, k)`` that no
#: longer grows with ``n``).
SADEH_K_CONSTANT = 1.0 + math.log(2.0)


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma, stable for large ``n`` (the
    ``ln binom(n, k)`` term of Eq. 16)."""
    if k < 0 or k > n:
        raise ParameterError(f"require 0 <= k <= n, got k={k}, n={n}")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def theta_max(n: int, k: int, epsilon: float, delta: float) -> float:
    """Eq. 16: RR sets sufficient for ``(1-1/e-eps)`` w.p. ``1-delta/3``.

    ``theta_max = 2n ((1-1/e) sqrt(ln 6/delta)
    + sqrt((1-1/e)(ln C(n,k) + ln 6/delta)))^2 / (eps^2 k)``
    """
    check_k(k, n)
    check_epsilon(epsilon)
    check_delta(delta)
    c = 1.0 - 1.0 / math.e
    log_term = math.log(6.0 / delta)
    numerator = (
        c * math.sqrt(log_term)
        + math.sqrt(c * (log_binomial(n, k) + log_term))
    ) ** 2
    return 2.0 * n * numerator / (epsilon * epsilon * k)


def theta_0(n: int, k: int, epsilon: float, delta: float) -> float:
    """Eq. 17: ``theta_0 = theta_max * eps^2 k / n``.

    Algebraically this is the Eq. 16 numerator alone — a size
    independent of ``n/eps^2 k`` that keeps the first iteration cheap.
    """
    return theta_max(n, k, epsilon, delta) * epsilon * epsilon * k / n


def i_max_iterations(n: int, k: int, epsilon: float, delta: float) -> int:
    """``i_max = ceil(log2(theta_max / theta_0))`` — the doubling-
    iteration cap of Algorithm 2; equals ``ceil(log2(n / (eps^2 k)))``."""
    t_max = theta_max(n, k, epsilon, delta)
    t_0 = theta_0(n, k, epsilon, delta)
    return max(1, math.ceil(math.log2(t_max / t_0)))


def theta_sadeh(
    n: int,
    k: int,
    epsilon: float,
    delta: float,
    opt_lower: Optional[float] = None,
) -> float:
    """Sample-complexity stopping cap after Sadeh et al. (Theorem 1 of
    arXiv:1907.13301), as an explicit-constant analogue of Eq. 16.

    Two tightenings over the paper's ``theta_max``:

    * the union-bound term ``ln C(n, k)`` (which grows like
      ``k ln n``) is replaced by ``min(ln C(n, k), k (1 + ln 2))`` —
      the Sadeh et al. dependence on the *size* of the optimal seed
      set rather than on the number of candidate sets; the ``min``
      guarantees the cap never exceeds Eq. 16 on any input;
    * the denominator's pessimistic ``OPT >= k`` floor may be raised
      by ``opt_lower``, any lower bound on ``OPT`` that holds within
      the caller's failure budget — OPIM-C passes the Eq. 5 certified
      lower bound of its current greedy seed set, which is a valid
      bound on ``sigma(S*) <= OPT`` on the very same high-probability
      event the alpha guarantee already spends.

    With ``opt_lower=None`` the result is at most ``theta_max`` and
    the dependence is monotone: non-increasing in ``epsilon``,
    ``delta``, and ``opt_lower``.
    """
    check_k(k, n)
    check_epsilon(epsilon)
    check_delta(delta)
    if opt_lower is not None and opt_lower < 0.0:
        raise ParameterError(f"opt_lower must be >= 0, got {opt_lower}")
    c = 1.0 - 1.0 / math.e
    log_term = math.log(6.0 / delta)
    union_term = min(log_binomial(n, k), SADEH_K_CONSTANT * k)
    numerator = (
        c * math.sqrt(log_term)
        + math.sqrt(c * (union_term + log_term))
    ) ** 2
    # OPT >= max(k, opt_lower): a seed set reaches at least itself, and
    # opt_lower (when given) certifies more.  OPT never exceeds n, so
    # the denominator is clamped there to keep the cap a valid bound.
    opt_floor = float(k) if opt_lower is None else max(float(k), opt_lower)
    opt_floor = min(opt_floor, float(n))
    return 2.0 * n * numerator / (epsilon * epsilon * opt_floor)
