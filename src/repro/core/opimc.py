"""OPIM-C: conventional influence maximization via OPIM (Algorithm 2).

Given ``(G, k, epsilon, delta)``, OPIM-C returns a seed set that is a
``(1 - 1/e - epsilon)``-approximation with probability >= ``1 - delta``:

1. compute ``theta_max`` (Eq. 16) and ``theta_0`` (Eq. 17), and
   ``i_max = ceil(log2(theta_max / theta_0))``;
2. sample ``|R1| = |R2| = theta_0``;
3. for ``i = 1 .. i_max``: run greedy on ``R1``; compute
   ``alpha = sigma_l(S*) / sigma_u_hat(S^o)`` with
   ``delta_1 = delta_2 = delta / (3 i_max)``; return ``S*`` once
   ``alpha >= 1 - 1/e - epsilon`` (or unconditionally at ``i_max``,
   where ``|R1| >= theta_max`` makes Lemma 6.1 apply); otherwise double
   both collections.

Correctness budget: each early iteration errs w.p. at most
``2 delta/(3 i_max)`` (union over ``i_max - 1`` early exits: ``2/3
delta``); the final iteration errs w.p. at most ``delta / 3``.

The three variants mirror the online algorithm's bound choices:
``OPIM-C+`` (default, Eq. 13), ``OPIM-C0`` (Eq. 8), ``OPIM-C'``
(Eq. 15).  They differ only in how many RR sets they need before the
early-exit test fires — the quantity Figures 6(b)/7(b) compare.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.bounds.concentration import (
    approximation_guarantee,
    sigma_lower_bound,
    sigma_upper_bound,
)
from repro.core.results import IMResult
from repro.core.theta import i_max_iterations, theta_0, theta_max, theta_sadeh
from repro.exceptions import BudgetExceededError, ParameterError
from repro.graph.digraph import DiGraph
from repro.maxcover.bounds import (
    coverage_upper_bound_greedy,
    coverage_upper_bound_leskovec,
)
from repro.maxcover.greedy import GreedyResult, greedy_max_coverage
from repro.obs import resolve_registry
from repro.sampling.generator import RRSampler
from repro.sampling.service import SamplingPool
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k

_VARIANT_NAMES = {
    "vanilla": "OPIM-C0",
    "greedy": "OPIM-C+",
    "leskovec": "OPIM-C'",
}

#: Stopping rules: the paper's Eq. 16 worst case, or the Sadeh et al.
#: sample-complexity cap (see :func:`repro.core.theta.theta_sadeh`).
STOPPING_RULES = ("paper", "sadeh")


class OPIMC:
    """Reusable OPIM-C runner bound to a graph and diffusion model.

    ``registry`` is an optional :class:`~repro.obs.MetricsRegistry`;
    when given, every run emits nested phase spans
    (``opimc/iter_<i>/sampling`` / ``greedy`` / ``bounds``), sampling
    counters, and one ``alpha_row`` event per doubling iteration.

    ``workers > 1`` runs all sampling through a persistent
    :class:`~repro.sampling.service.SamplingPool` that stays warm
    across every doubling iteration of a run (Algorithm 2 regenerates
    RR sets each iteration, so amortizing the pool setup is what makes
    the parallel path pay off).  Alternatively an already-open ``pool``
    may be injected and shared across multiple runs; the caller owns
    its lifetime.

    ``stopping`` selects the unconditional-acceptance cap on ``|R1|``:
    ``"paper"`` (Eq. 16's ``theta_max``) or ``"sadeh"`` (the
    sample-complexity bound of arXiv:1907.13301, refined each
    iteration with the Eq. 5 certified lower bound on ``OPT`` — see
    :func:`~repro.core.theta.theta_sadeh`).
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        bound: str = "greedy",
        seed: SeedLike = None,
        fast: bool = False,
        registry: Optional[object] = None,
        workers: Optional[int] = None,
        pool: Optional[SamplingPool] = None,
        stopping: str = "paper",
    ) -> None:
        if bound not in _VARIANT_NAMES:
            raise ParameterError(
                f"bound must be one of {tuple(_VARIANT_NAMES)}, got {bound!r}"
            )
        if stopping not in STOPPING_RULES:
            raise ParameterError(
                f"stopping must be one of {STOPPING_RULES}, got {stopping!r}"
            )
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if pool is not None and pool.graph is not graph:
            raise ParameterError("pool must be bound to the same graph")
        self.graph = graph
        self.model = model
        self.bound = bound
        self.stopping = stopping
        self.fast = bool(fast)
        self.obs = resolve_registry(registry)
        self.workers = workers
        self.pool = pool
        self._seed = seed

    def _make_sampler(self) -> Any:
        if self.pool is not None:
            return self.pool
        if self.workers is not None and self.workers > 1:
            return SamplingPool(
                self.graph,
                self.model,
                workers=self.workers,
                seed=self._seed,
                fast=True,
                registry=self.obs,
            )
        if self.fast:
            from repro.sampling.batch import BatchRRSampler

            return BatchRRSampler(
                self.graph, self.model, seed=self._seed, registry=self.obs
            )
        return RRSampler(
            self.graph, self.model, seed=self._seed, registry=self.obs
        )

    def _coverage_upper(
        self, greedy_result: GreedyResult, variant: str
    ) -> float:
        if variant == "vanilla":
            return greedy_result.coverage / (1.0 - 1.0 / math.e)
        if variant == "greedy":
            return coverage_upper_bound_greedy(greedy_result)
        return coverage_upper_bound_leskovec(greedy_result)

    def run(
        self,
        k: int,
        epsilon: float,
        delta: Optional[float] = None,
        rr_budget: Optional[int] = None,
    ) -> IMResult:
        """Execute Algorithm 2.

        Parameters
        ----------
        rr_budget:
            Optional hard cap on total RR sets; exceeded caps raise
            :class:`BudgetExceededError` (used by the OPIM-adoption
            wrapper and by tests).
        """
        graph = self.graph
        check_k(k, graph.n)
        check_epsilon(epsilon)
        if delta is None:
            delta = 1.0 / graph.n
        check_delta(delta)

        obs = self.obs
        algorithm = _VARIANT_NAMES[self.bound]
        trajectory = []
        timer = Timer()
        sampler = self._make_sampler()
        # A pool injected via ``pool=`` may carry counts from earlier
        # runs; account in deltas so num_rr_sets stays per-run.
        base_sets = sampler.sets_generated
        base_edges = sampler.edges_examined
        owns_pool = isinstance(sampler, SamplingPool) and sampler is not self.pool
        try:
            with timer, obs.trace("opimc"):
                t_max = theta_max(graph.n, k, epsilon, delta)
                t_0 = max(1, math.ceil(theta_0(graph.n, k, epsilon, delta)))
                i_max = i_max_iterations(graph.n, k, epsilon, delta)
                delta_iter = delta / (3.0 * i_max)
                target = 1.0 - 1.0 / math.e - epsilon
                # The stopping cap on |R1|: Eq. 16 for the paper rule;
                # the Sadeh et al. sample-complexity bound (refined
                # each iteration with the certified OPT lower bound)
                # for stopping="sadeh".  theta_sadeh <= theta_max
                # always, so the cap only ever shrinks.
                cap = t_max
                if self.stopping == "sadeh":
                    cap = min(cap, theta_sadeh(graph.n, k, epsilon, delta))

                r1 = sampler.new_collection()
                r2 = sampler.new_collection()

                size = t_0
                alpha = 0.0
                greedy_result = None
                stopped_by = "i_max"
                for iteration in range(1, i_max + 1):
                    with obs.trace(f"iter_{iteration}"):
                        grow = size - len(r1)
                        generated = sampler.sets_generated - base_sets
                        if rr_budget is not None and (
                            generated + 2 * grow > rr_budget
                        ):
                            raise BudgetExceededError(
                                f"OPIM-C would exceed the RR budget of "
                                f"{rr_budget}",
                                num_rr_sets=generated,
                            )
                        with obs.trace("sampling"):
                            sampler.fill(r1, grow)
                            sampler.fill(r2, grow)

                        with obs.trace("greedy"):
                            greedy_result = greedy_max_coverage(
                                r1, k, registry=obs
                            )
                        with obs.trace("bounds"):
                            coverage_r2 = r2.coverage(greedy_result.seeds)
                            sigma_low = sigma_lower_bound(
                                coverage_r2, len(r2), graph.n, delta_iter
                            )
                            coverage_upper = self._coverage_upper(
                                greedy_result, self.bound
                            )
                            sigma_up = sigma_upper_bound(
                                coverage_upper, len(r1), graph.n, delta_iter
                            )
                            alpha = approximation_guarantee(sigma_low, sigma_up)

                        if self.stopping == "sadeh":
                            # sigma_low <= sigma(S*) <= OPT holds on
                            # the same high-probability event already
                            # budgeted for this iteration's alpha test,
                            # so refining the cap spends no extra delta
                            # (the martingale-reuse caveat of
                            # arXiv:1808.09363 concerns reusing *RR
                            # sets* across adaptive decisions, which
                            # Algorithm 2's per-iteration budget
                            # already accounts for).
                            cap = min(
                                cap,
                                theta_sadeh(
                                    graph.n, k, epsilon, delta,
                                    opt_lower=sigma_low,
                                ),
                            )

                        row = {
                            "algorithm": algorithm,
                            "iteration": iteration,
                            "theta1": len(r1),
                            "theta2": len(r2),
                            "sigma_low": sigma_low,
                            "sigma_up": sigma_up,
                            "alpha": alpha,
                            "target": target,
                            "theta_cap": cap,
                        }
                        trajectory.append(row)
                        obs.record("alpha_row", **row)
                    if alpha >= target:
                        stopped_by = "alpha"
                        break
                    if iteration == i_max:
                        break
                    if self.stopping == "sadeh" and len(r1) >= cap:
                        stopped_by = "theta_cap"
                        break
                    size = min(size * 2, max(1, math.ceil(cap)))
        finally:
            if owns_pool:
                sampler.close()

        obs.set_gauge("opimc.alpha_achieved", alpha)
        return IMResult(
            algorithm=algorithm,
            seeds=list(greedy_result.seeds),
            k=k,
            epsilon=epsilon,
            delta=delta,
            num_rr_sets=sampler.sets_generated - base_sets,
            elapsed=timer.elapsed,
            iterations=iteration,
            alpha_achieved=alpha,
            edges_examined=sampler.edges_examined - base_edges,
            extra={
                "theta_max": t_max,
                "theta_0": t_0,
                "i_max": i_max,
                "target_alpha": target,
                "alpha_trajectory": trajectory,
                "stopping": self.stopping,
                "theta_cap": cap,
                "stopped_by": stopped_by,
            },
        )


def opim_c(
    graph: DiGraph,
    model: str,
    k: int,
    epsilon: float,
    delta: Optional[float] = None,
    bound: str = "greedy",
    seed: SeedLike = None,
    rr_budget: Optional[int] = None,
    fast: bool = False,
    registry: Optional[object] = None,
    workers: Optional[int] = None,
    pool: Optional[SamplingPool] = None,
    stopping: str = "paper",
) -> IMResult:
    """One-shot functional interface to :class:`OPIMC` (Algorithm 2).

    ``fast=True`` swaps in the batched RR sampler
    (:class:`~repro.sampling.batch.BatchRRSampler`) — same output
    distribution, roughly 3-5x faster sampling.  ``registry`` injects a
    :class:`~repro.obs.MetricsRegistry` for phase tracing and counters.
    ``workers > 1`` samples through a persistent
    :class:`~repro.sampling.service.SamplingPool` kept warm across the
    doubling iterations (pass an open ``pool`` instead to share one
    across calls).  ``stopping="sadeh"`` caps the doubling loop at the
    Sadeh et al. sample-complexity bound
    (:func:`~repro.core.theta.theta_sadeh`) instead of Eq. 16's
    ``theta_max``, sampling strictly fewer RR sets when the bound
    binds; the empirical guarantee is refereed by
    :mod:`repro.stats_harness`.
    """
    return OPIMC(
        graph,
        model,
        bound=bound,
        seed=seed,
        fast=fast,
        registry=registry,
        workers=workers,
        pool=pool,
        stopping=stopping,
    ).run(k, epsilon, delta=delta, rr_budget=rr_budget)
