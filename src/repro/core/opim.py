"""The paper's online OPIM algorithm (Sections 4–5).

:class:`OnlineOPIM` streams random RR sets into two disjoint
collections of equal size — ``R1`` (the *nominators*, from which the
seed set is selected greedily) and ``R2`` (the *judges*, on which the
seed set's spread is lower-bounded).  At any point the user may call
:meth:`OnlineOPIM.query` to obtain a seed set and an instance-specific
approximation guarantee

    ``alpha = sigma_l(S*) / sigma_u(S^o)``

that holds with probability at least ``1 - delta``, where

* ``sigma_l`` is Eq. 5 evaluated on ``R2`` with ``delta_2 = delta/2``;
* ``sigma_u`` is Eq. 8 / 13 / 15 evaluated on ``R1`` with
  ``delta_1 = delta/2``, depending on the *bound variant*:

  - ``"vanilla"``  (OPIM⁰): pessimistic ``Lambda_1(S*)/(1 - 1/e)``;
  - ``"greedy"``   (OPIM⁺): Eq. 10 greedy-history bound — the default;
  - ``"leskovec"`` (OPIM′): Leskovec-style final-prefix bound.

The three variants share the sampling stream and the greedy pass, so
:meth:`query_all` evaluates all of them for the cost of one.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from repro.bounds.concentration import (
    approximation_guarantee,
    sigma_lower_bound,
    sigma_upper_bound,
)
from repro.core.results import OnlineSnapshot
from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.maxcover.bounds import (
    coverage_upper_bound_greedy,
    coverage_upper_bound_leskovec,
)
from repro.maxcover.greedy import GreedyResult, greedy_max_coverage
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.generator import RRSampler
from repro.sampling.service import SamplingPool
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_k

#: Bound variants in the paper's naming: OPIM0, OPIM+, OPIM'.
BOUND_VARIANTS = ("vanilla", "greedy", "leskovec")


class OnlineOPIM:
    """Pause-anytime influence maximization (the paper's main algorithm).

    Parameters
    ----------
    graph:
        Weighted directed graph.
    model:
        Diffusion model, ``"IC"`` or ``"LT"``.
    k:
        Seed-set size.
    delta:
        Per-query failure probability (paper default ``1/n``).
    bound:
        Default bound variant for :meth:`query`.
    seed:
        RNG seed / generator for the sampling stream.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` for phase tracing
        and counters; every query also appends one telemetry row to
        :attr:`alpha_trajectory` and emits an ``alpha_row`` event.
    workers:
        When ``> 1``, stream RR sets through a persistent
        :class:`~repro.sampling.service.SamplingPool` owned by this
        instance — the worker pool and the shared-memory graph stay
        warm across every ``extend``/``query`` pause/resume step.
        Call :meth:`close` (or use the instance as a context manager)
        when done; an externally managed pool can be passed via
        ``sampler=`` instead.

    Examples
    --------
    >>> from repro.graph import power_law_graph, assign_wc_weights
    >>> g = assign_wc_weights(power_law_graph(300, 6, seed=7))
    >>> algo = OnlineOPIM(g, "IC", k=5, delta=1/300, seed=7)
    >>> algo.extend(2000)
    >>> snap = algo.query()
    >>> 0.0 <= snap.alpha <= 1.0
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        k: int,
        delta: Optional[float] = None,
        bound: str = "greedy",
        seed: SeedLike = None,
        sampler: Optional[Any] = None,
        registry: Optional[object] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_k(k, graph.n)
        if delta is None:
            delta = 1.0 / graph.n
        check_delta(delta)
        if bound not in BOUND_VARIANTS:
            raise ParameterError(
                f"bound must be one of {BOUND_VARIANTS}, got {bound!r}"
            )
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if sampler is not None and workers is not None and workers > 1:
            raise ParameterError(
                "pass either a custom sampler or workers > 1, not both"
            )
        self.graph = graph
        self.k = k
        self.delta = float(delta)
        self.bound = bound
        self.obs = resolve_registry(registry)
        self._owns_pool = False
        if sampler is not None:
            # Custom sampler injection (e.g. a TriggeringRRSampler for
            # a non-IC/LT triggering model, per the paper's Section 6,
            # or an externally managed SamplingPool).
            if sampler.graph is not graph:
                raise ParameterError("sampler must be bound to the same graph")
            self.sampler = sampler
        elif workers is not None and workers > 1:
            self.sampler = SamplingPool(
                graph,
                model,
                workers=workers,
                seed=seed,
                fast=True,
                registry=self.obs,
            )
            self._owns_pool = True
        else:
            self.sampler = RRSampler(graph, model, seed=seed, registry=self.obs)
        self.r1 = self.sampler.new_collection()
        self.r2 = self.sampler.new_collection()
        self.timer = Timer()
        #: Telemetry rows (one dict per snapshot taken), in query order.
        self.alpha_trajectory: list = []
        self._greedy_cache: Optional[Tuple[int, GreedyResult]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the owned sampling pool, if ``workers > 1`` created
        one (no-op otherwise; Section 4's pause/resume loop holds the
        pool open until the session is over)."""
        if self._owns_pool:
            self.sampler.close()

    def __enter__(self) -> "OnlineOPIM":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    @property
    def num_rr_sets(self) -> int:
        """Total RR sets generated so far (``theta_1 + theta_2``)."""
        return len(self.r1) + len(self.r2)

    def extend(self, count: int) -> None:
        """Generate *count* more RR sets, split evenly over R1 and R2.

        An odd *count* is rejected so ``|R1| == |R2|`` always holds, as
        the paper's analysis assumes.
        """
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if count % 2 != 0:
            raise ParameterError(
                f"count must be even to keep |R1| == |R2|, got {count}"
            )
        with self.timer, self.obs.trace("opim/extend"):
            self.sampler.fill(self.r1, count // 2)
            self.sampler.fill(self.r2, count // 2)

    def extend_to(self, total: int) -> None:
        """Grow the stream until ``num_rr_sets`` reaches *total*."""
        missing = total - self.num_rr_sets
        if missing > 0:
            self.extend(missing + (missing % 2))

    def adopt_collections(self, r1: RRCollection, r2: RRCollection) -> None:
        """Adopt externally owned nominator/judge collections.

        The serving layer (:mod:`repro.serve`) keeps **one** RR-sketch
        stream per ``(graph, model, seed)`` and shares it across many
        per-``k`` algorithm instances: RR sets are ``k``-independent
        (Section 3.1), so only the greedy pass and the Eq. 5 / Eq. 8
        bound evaluations are per query.  Adopting replaces this
        instance's collections with the shared pair; subsequent
        ``extend`` calls grow the shared pair through this instance's
        sampler.

        The collections must be distinct objects (the nominator/judge
        role split of Section 4.1 is what the guarantee rests on) and
        defined over this graph's node universe.
        """
        if r1 is r2:
            raise ParameterError(
                "R1 and R2 must be distinct collections (the guarantee "
                "requires disjoint nominator/judge samples)"
            )
        if r1.n != self.graph.n or r2.n != self.graph.n:
            raise ParameterError(
                f"collections are over {r1.n}/{r2.n} nodes; "
                f"graph has {self.graph.n}"
            )
        self.r1 = r1
        self.r2 = r2
        self._greedy_cache = None

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _run_greedy(self) -> GreedyResult:
        """Greedy over R1, cached per collection size."""
        if len(self.r1) == 0:
            raise ParameterError(
                "no RR sets generated yet; call extend() before query()"
            )
        size = len(self.r1)
        if self._greedy_cache is None or self._greedy_cache[0] != size:
            with self.obs.trace("greedy"):
                result = greedy_max_coverage(self.r1, self.k, registry=self.obs)
            self._greedy_cache = (size, result)
        return self._greedy_cache[1]

    def _coverage_upper(self, greedy: GreedyResult, variant: str) -> float:
        if variant == "vanilla":
            # The paper's Eq. 6/8 uses the asymptotic 1 - 1/e ratio.
            return greedy.coverage / (1.0 - 1.0 / math.e)
        if variant == "greedy":
            return coverage_upper_bound_greedy(greedy)
        if variant == "leskovec":
            return coverage_upper_bound_leskovec(greedy)
        raise ParameterError(f"unknown bound variant {variant!r}")

    def query(
        self,
        bound: Optional[str] = None,
        delta1: Optional[float] = None,
        delta2: Optional[float] = None,
    ) -> OnlineSnapshot:
        """Pause and report ``(S*, alpha)`` for one bound variant.

        ``delta1``/``delta2`` default to ``delta/2`` each (the
        near-optimal split per Lemma 4.4); custom values must satisfy
        ``delta1 + delta2 <= delta`` for the guarantee to hold.
        """
        variant = bound or self.bound
        if variant not in BOUND_VARIANTS:
            raise ParameterError(
                f"bound must be one of {BOUND_VARIANTS}, got {variant!r}"
            )
        if delta1 is None and delta2 is None:
            delta1 = delta2 = self.delta / 2.0
        elif delta1 is None or delta2 is None:
            raise ParameterError("provide both delta1 and delta2 or neither")
        elif delta1 + delta2 > self.delta + 1e-12:
            raise ParameterError(
                f"delta1 + delta2 = {delta1 + delta2} exceeds delta = {self.delta}"
            )

        with self.timer, self.obs.trace("opim/query"):
            greedy = self._run_greedy()
            snapshot = self._snapshot(greedy, variant, delta1, delta2)
        return snapshot

    def query_all(self) -> Dict[str, OnlineSnapshot]:
        """Evaluate all three bound variants on the shared greedy pass."""
        with self.timer, self.obs.trace("opim/query_all"):
            greedy = self._run_greedy()
            d = self.delta / 2.0
            snapshots = {
                variant: self._snapshot(greedy, variant, d, d)
                for variant in BOUND_VARIANTS
            }
        return snapshots

    def _snapshot(
        self,
        greedy: GreedyResult,
        variant: str,
        delta1: float,
        delta2: float,
    ) -> OnlineSnapshot:
        # "n" in the paper's formulas is the universe scale factor; a
        # weighted-root sampler substitutes the total node weight W.
        n = self.sampler.universe_weight
        theta1 = len(self.r1)
        theta2 = len(self.r2)
        coverage_r2 = self.r2.coverage(greedy.seeds) if theta2 else 0
        sigma_low = (
            sigma_lower_bound(coverage_r2, theta2, n, delta2) if theta2 else 0.0
        )
        coverage_upper = self._coverage_upper(greedy, variant)
        sigma_up = sigma_upper_bound(coverage_upper, theta1, n, delta1)
        alpha = approximation_guarantee(sigma_low, sigma_up)
        row = {
            "algorithm": "OPIM",
            "variant": variant,
            "query": len(self.alpha_trajectory) + 1,
            "theta1": theta1,
            "theta2": theta2,
            "sigma_low": sigma_low,
            "sigma_up": sigma_up,
            "alpha": alpha,
        }
        self.alpha_trajectory.append(row)
        self.obs.record("alpha_row", **row)
        return OnlineSnapshot(
            seeds=list(greedy.seeds),
            alpha=alpha,
            variant=variant,
            num_rr_sets=self.num_rr_sets,
            theta1=theta1,
            theta2=theta2,
            sigma_low=sigma_low,
            sigma_up=sigma_up,
            coverage_r1=greedy.coverage,
            coverage_r2=coverage_r2,
            edges_examined=self.sampler.edges_examined,
            elapsed=self.timer.elapsed,
            metadata={
                "alpha_row": row,
                "alpha_trajectory": list(self.alpha_trajectory),
            },
        )
