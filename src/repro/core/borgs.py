"""Borgs et al.'s online algorithm for OPIM (paper, Section 3.2).

The algorithm streams RR sets while counting the total number of edges
examined, ``gamma``.  Whenever ``gamma`` crosses a power of two it
freezes a checkpoint: the greedy seed set over everything sampled so
far, with reported guarantee

    ``min(1/4, beta)``,   ``beta = gamma / (1492992 (n + m) ln n)``.

A user query returns the latest checkpoint.  The constant ``1492992``
comes from Borgs et al.'s analysis; it is why the reported guarantee is
essentially zero at any practical budget (the paper's Figures 2–5 show
the flat-zero curves this reproduces).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.results import OnlineSnapshot
from repro.exceptions import ParameterError, StateError
from repro.graph.digraph import DiGraph
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.generator import RRSampler
from repro.utils.rng import SeedLike
from repro.utils.timer import Timer
from repro.utils.validation import check_k

#: The constant in Borgs et al.'s beta formula.
BORGS_CONSTANT = 1_492_992

#: The hard cap on the reported approximation ratio.
BORGS_CAP = 0.25


def borgs_beta(gamma: int, n: int, m: int) -> float:
    """``beta = gamma / (1492992 (n + m) ln n)`` — Borgs et al.'s
    reported-guarantee formula as used in the paper's Section 3.2."""
    if n < 2:
        raise ParameterError("Borgs' beta needs n >= 2 (ln n > 0)")
    return gamma / (BORGS_CONSTANT * (n + m) * math.log(n))


class BorgsOnline:
    """Streaming Borgs et al. online algorithm.

    The reproduction exposes the same driving interface as
    :class:`~repro.core.opim.OnlineOPIM` (``extend`` / ``extend_to`` /
    ``query``) so the experiment harness can checkpoint all online
    algorithms at identical RR-set budgets.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        k: int,
        delta: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        check_k(k, graph.n)
        self.graph = graph
        self.k = k
        # delta is accepted for interface parity; Borgs et al.'s base
        # guarantee holds w.p. 3/5 and is boosted by repetition, which
        # the reported beta does not depend on.
        self.delta = delta if delta is not None else 1.0 / graph.n
        self.sampler = RRSampler(graph, model, seed=seed)
        self.collection = self.sampler.new_collection()
        self.timer = Timer()
        self._checkpoint: Optional[OnlineSnapshot] = None
        self._next_gamma_power = 1

    @property
    def num_rr_sets(self) -> int:
        return len(self.collection)

    @property
    def gamma(self) -> int:
        """Total edges examined during RR-set construction."""
        return self.sampler.edges_examined

    def extend(self, count: int) -> None:
        """Generate *count* more RR sets, freezing power-of-two checkpoints."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        with self.timer:
            for _ in range(count):
                self.collection.append(self.sampler.sample_one())
                if self.gamma >= self._next_gamma_power:
                    self._freeze_checkpoint()
                    while self._next_gamma_power <= self.gamma:
                        self._next_gamma_power *= 2

    def extend_to(self, total: int) -> None:
        missing = total - self.num_rr_sets
        if missing > 0:
            self.extend(missing)

    def _freeze_checkpoint(self) -> None:
        greedy = greedy_max_coverage(self.collection, self.k)
        beta = borgs_beta(self.gamma, self.graph.n, self.graph.m)
        self._checkpoint = OnlineSnapshot(
            seeds=list(greedy.seeds),
            alpha=min(BORGS_CAP, beta),
            variant="borgs",
            num_rr_sets=self.num_rr_sets,
            coverage_r1=greedy.coverage,
            edges_examined=self.gamma,
            elapsed=self.timer.elapsed,
        )

    def query(self) -> OnlineSnapshot:
        """Return the most recent power-of-two checkpoint."""
        if self._checkpoint is None:
            raise StateError(
                "no checkpoint frozen yet; call extend() before query()"
            )
        return self._checkpoint
