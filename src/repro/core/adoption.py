"""OPIM-adoption of conventional IM algorithms (paper, Section 3.3).

Given an influence-maximization algorithm ``A`` that returns a
``(1 - 1/e - eps)``-approximation w.p. ``1 - delta``, the adoption runs
``A`` repeatedly with a geometrically shrinking error target

    ``eps_i = (1 - 1/e) / 2^(i-1)``,   i = 1, 2, 3, ...

(starting at ``eps_1 = 1 - 1/e``, below which the guarantee is vacuous).
A user query arriving during the ``j``-th execution is answered with
the seed set of execution ``j - 1`` and the guarantee

    ``(1 - 1/e) (1 - 1 / 2^(j-2))``

— i.e. ``1 - 1/e - eps_(j-1)``.  The paper's Figures 2–5 plot exactly
this step function against the cumulative RR-set budget; its two
structural inefficiencies (stale seed sets, discarded samples from
earlier executions) are what OPIM eliminates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.results import IMResult
from repro.exceptions import BudgetExceededError, ParameterError

#: ``A(epsilon, rr_budget) -> IMResult``; raises BudgetExceededError when
#: the invocation would exceed ``rr_budget`` RR sets.
AlgorithmInvoker = Callable[[float, Optional[int]], IMResult]


def adoption_epsilon(invocation: int) -> float:
    """``eps_i = (1 - 1/e) / 2^(i-1)`` for the i-th execution (1-based),
    per the OPIM-adoption schedule of Section 3.3."""
    if invocation < 1:
        raise ParameterError(f"invocation index must be >= 1, got {invocation}")
    return (1.0 - 1.0 / math.e) / (2.0 ** (invocation - 1))


def adoption_guarantee(completed_invocations: int) -> float:
    """Reported guarantee after *completed_invocations* executions
    (paper, Section 3.3).

    ``(1 - 1/e)(1 - 1/2^(i-1))`` for the best completed execution
    ``i``; 0.0 before any execution completes.
    """
    if completed_invocations < 1:
        return 0.0
    return (1.0 - 1.0 / math.e) * (1.0 - 1.0 / 2.0 ** (completed_invocations - 1))


@dataclass(frozen=True)
class AdoptionStep:
    """One completed execution of the adopted algorithm."""

    invocation: int
    epsilon: float
    guarantee: float
    seeds: List[int]
    rr_sets_this_run: int
    cumulative_rr_sets: int


@dataclass(frozen=True)
class AdoptionCurve:
    """The step function mapping RR-set budgets to reported guarantees."""

    algorithm: str
    steps: List[AdoptionStep]
    exhausted_budget: Optional[int] = None

    def guarantee_at(self, rr_budget: int) -> float:
        """Guarantee reported when *rr_budget* RR sets have been spent.

        This is the guarantee of the last execution that *completed*
        within the budget (the next execution is still in flight).
        """
        best = 0.0
        for step in self.steps:
            if step.cumulative_rr_sets <= rr_budget:
                best = step.guarantee
            else:
                break
        return best

    def seeds_at(self, rr_budget: int) -> Optional[List[int]]:
        """Seed set available at *rr_budget*, or None before the first
        execution completes."""
        seeds = None
        for step in self.steps:
            if step.cumulative_rr_sets <= rr_budget:
                seeds = step.seeds
            else:
                break
        return seeds


class OPIMAdoption:
    """Drives the Section 3.3 adoption of one IM algorithm."""

    def __init__(
        self,
        algorithm: str,
        invoke: AlgorithmInvoker,
        max_invocations: int = 24,
    ) -> None:
        if max_invocations < 1:
            raise ParameterError("max_invocations must be >= 1")
        self.algorithm = algorithm
        self.invoke = invoke
        self.max_invocations = max_invocations

    def run(self, rr_budget: int) -> AdoptionCurve:
        """Run successive executions until *rr_budget* RR sets are spent.

        The execution that would cross the budget is aborted (its
        samples are wasted — faithfully to Section 3.3's analysis) and
        the curve records the budget as exhausted.
        """
        if rr_budget < 0:
            raise ParameterError(f"rr_budget must be non-negative, got {rr_budget}")
        steps: List[AdoptionStep] = []
        cumulative = 0
        for i in range(1, self.max_invocations + 1):
            epsilon = adoption_epsilon(i)
            remaining = rr_budget - cumulative
            if remaining <= 0:
                return AdoptionCurve(self.algorithm, steps, exhausted_budget=cumulative)
            try:
                result = self.invoke(epsilon, remaining)
            except BudgetExceededError as exc:
                return AdoptionCurve(
                    self.algorithm,
                    steps,
                    exhausted_budget=cumulative + exc.num_rr_sets,
                )
            cumulative += result.num_rr_sets
            steps.append(
                AdoptionStep(
                    invocation=i,
                    epsilon=epsilon,
                    guarantee=adoption_guarantee(i),
                    seeds=list(result.seeds),
                    rr_sets_this_run=result.num_rr_sets,
                    cumulative_rr_sets=cumulative,
                )
            )
        return AdoptionCurve(self.algorithm, steps, exhausted_budget=cumulative)
