"""The paper's algorithms: online OPIM, OPIM-C, and the baselines it
compares against for online processing (Borgs et al., OPIM-adoption)."""

from repro.core.adoption import AdoptionCurve, OPIMAdoption
from repro.core.borgs import BorgsOnline
from repro.core.opim import BOUND_VARIANTS, OnlineOPIM
from repro.core.opimc import OPIMC, STOPPING_RULES, opim_c
from repro.core.persistence import load_opim, save_opim
from repro.core.results import IMResult, OnlineSnapshot
from repro.core.session import OPIMSession, SessionResult, StopReason
from repro.core.theta import (
    i_max_iterations,
    log_binomial,
    theta_0,
    theta_max,
    theta_sadeh,
)

__all__ = [
    "OnlineOPIM",
    "OPIMSession",
    "SessionResult",
    "StopReason",
    "save_opim",
    "load_opim",
    "BOUND_VARIANTS",
    "OPIMC",
    "opim_c",
    "BorgsOnline",
    "OPIMAdoption",
    "AdoptionCurve",
    "OnlineSnapshot",
    "IMResult",
    "theta_max",
    "theta_0",
    "theta_sadeh",
    "i_max_iterations",
    "log_binomial",
    "STOPPING_RULES",
]
