"""High-level online-processing sessions on top of :class:`OnlineOPIM`.

Two features the paper describes around its core algorithm:

* **Simultaneous guarantees** (Section 4, "Discussions"): when the user
  queries at multiple timestamps, each snapshot individually holds
  w.p. >= 1 - delta, but not jointly.  The paper's fix is a failure
  schedule: give the i-th query failure budget ``delta / 2^i`` so the
  union over all queries stays within ``delta``.
  :class:`OPIMSession` implements that schedule.

* **Stopping conditions**: the OPIM use case is "run until the
  guarantee is good enough or the budget runs out".
  :meth:`OPIMSession.run_until` packages the extend/query loop with
  alpha / RR-set / wall-clock budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.bounds.delta_ledger import DeltaLedger
from repro.core.opim import OnlineOPIM
from repro.core.results import OnlineSnapshot
from repro.exceptions import ParameterError, StateError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class StopReason:
    """Why :meth:`OPIMSession.run_until` returned."""

    kind: str  # "alpha" | "rr_budget" | "time_budget" | "max_queries"
    detail: str


@dataclass(frozen=True)
class SessionResult:
    """Final snapshot plus the full query history and the stop cause."""

    snapshot: OnlineSnapshot
    history: List[OnlineSnapshot]
    stop: StopReason


class OPIMSession:
    """An interactive OPIM session with a joint failure budget.

    Parameters mirror :class:`OnlineOPIM` (including ``sampler=`` for
    an injected sampler such as a shared
    :class:`~repro.sampling.service.SamplingPool`); ``delta`` is the
    *total* failure probability across **all** queries of the session.  The
    i-th query (1-based) runs with per-query failure budget
    ``delta / 2^i``, so by the union bound every guarantee ever
    reported holds simultaneously w.p. >= 1 - delta.

    >>> from repro.graph import power_law_graph, assign_wc_weights
    >>> g = assign_wc_weights(power_law_graph(200, 5, seed=3))
    >>> session = OPIMSession(g, "IC", k=4, delta=0.1, seed=3)
    >>> session.extend(1000)
    >>> first = session.query()
    >>> session.extend(1000)
    >>> second = session.query()
    >>> second.num_rr_sets > first.num_rr_sets
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        k: int,
        delta: Optional[float] = None,
        bound: str = "greedy",
        seed: SeedLike = None,
        registry: Optional[object] = None,
        workers: Optional[int] = None,
        sampler: Optional[Any] = None,
    ) -> None:
        self._online = OnlineOPIM(
            graph, model, k=k, delta=delta if delta is not None else 1.0 / graph.n,
            bound=bound, seed=seed, registry=registry, workers=workers,
            sampler=sampler,
        )
        self.queries_made = 0
        self.history: List[OnlineSnapshot] = []
        # Certified OPT lower bound carried over from a checkpointed
        # predecessor session (see :meth:`restore_schedule`).
        self._restored_opt_lower = 0.0
        # Runtime mirror of the schedule's union bound: every query's
        # slice is recorded so the joint guarantee is auditable (and,
        # under REPRO_DELTA_STRICT, asserted) at run time.
        self.ledger = DeltaLedger(self._online.delta)

    def close(self) -> None:
        """Release the sampling pool owned by the underlying algorithm
        (no-op when the session samples serially)."""
        self._online.close()

    def __enter__(self) -> "OPIMSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Delegated streaming interface -----------------------------------
    @property
    def delta(self) -> float:
        return self._online.delta

    @property
    def num_rr_sets(self) -> int:
        return self._online.num_rr_sets

    @property
    def online(self) -> OnlineOPIM:
        """The underlying single-query algorithm (advanced use)."""
        return self._online

    @property
    def alpha_trajectory(self) -> List[dict]:
        """Telemetry rows of every snapshot taken through this session."""
        return self._online.alpha_trajectory

    def extend(self, count: int) -> None:
        self._online.extend(count)

    def extend_to(self, total: int) -> None:
        self._online.extend_to(total)

    # Scheduled querying ----------------------------------------------
    def next_query_delta(self) -> float:
        """Failure budget the next query will use (``delta / 2^(i)``)."""
        return self.delta / (2.0 ** (self.queries_made + 1))

    def restore_schedule(self, queries_made: int, opt_lower: float = 0.0) -> None:
        """Resume the ``delta / 2^i`` schedule of a checkpointed session.

        A warm restart (crash recovery, eviction reload, process
        restart over a persistent sketch) continues the *same* logical
        session: the restored stream already answered ``queries_made``
        queries, whose ``delta / 2^i`` slices are spent.  Replaying
        that position — rather than starting the schedule over — keeps
        the joint ``1 - delta`` budget honest across restarts and
        makes a recovered repeat query bitwise-identical to the
        uninterrupted run (same slice, same
        :attr:`certified_opt_lower`-derived sample cap).

        Only a fresh session (no queries taken) can be restored; the
        restored queries' slices are charged to the ledger but their
        snapshots are not reconstructed, so :attr:`history` and
        :meth:`guarantee_claims` cover post-restore queries only.
        """
        if self.queries_made or self.history:
            raise StateError(
                "restore_schedule requires a fresh session; this one has "
                f"already made {self.queries_made} queries"
            )
        if queries_made < 0:
            raise ParameterError(
                f"queries_made must be non-negative, got {queries_made}"
            )
        for i in range(1, int(queries_made) + 1):
            self.ledger.spend(
                self.delta / (2.0 ** i), label=f"restored-query-{i}"
            )
        self.queries_made = int(queries_made)
        self._restored_opt_lower = max(0.0, float(opt_lower))

    def query(self, bound: Optional[str] = None) -> OnlineSnapshot:
        """Query under the simultaneous-guarantee schedule.

        The returned snapshot's alpha holds jointly with every previous
        snapshot of this session w.p. >= 1 - delta.
        """
        query_delta = self.next_query_delta()
        snapshot = self._online.query(
            bound=bound, delta1=query_delta / 2.0, delta2=query_delta / 2.0
        )
        self.ledger.spend(query_delta, label=f"query-{self.queries_made + 1}")
        self.queries_made += 1
        self.history.append(snapshot)
        self._online.obs.record(
            "session_query",
            query=self.queries_made,
            query_delta=query_delta,
            num_rr_sets=snapshot.num_rr_sets,
            alpha=snapshot.alpha,
        )
        return snapshot

    @property
    def certified_opt_lower(self) -> float:
        """Best certified lower bound on ``OPT`` this session has seen.

        Every snapshot's ``sigma_low`` is the Eq. 5 lower bound on the
        spread of its greedy seed set — hence on ``sigma(S*) <= OPT``
        — certified on the same high-probability event as that query's
        alpha guarantee, so reusing it spends no extra failure budget
        (the arXiv:1808.09363 caveat concerns reusing *RR sets*, not
        the bound value).  The serving layer feeds this into
        :func:`~repro.core.theta.theta_sadeh` so a warm sketch's
        repeat queries start from a tight sample cap; ``0.0`` until
        the first query.  Includes the bound carried over by
        :meth:`restore_schedule`.
        """
        best = max(
            (float(snap.sigma_low) for snap in self.history), default=0.0
        )
        return max(best, self._restored_opt_lower)

    def guarantee_claims(self) -> List[Dict[str, Any]]:
        """Every guarantee this session has reported, as checkable claims.

        One dict per query taken through the Section 4 simultaneous-
        guarantee schedule: the seed set, the alpha certified for it,
        and the ``delta / 2^i`` slice it was charged.  All claims hold
        *jointly* w.p. >= ``1 - delta`` — the statement the statistical
        acceptance harness (:mod:`repro.stats_harness`) verifies end to
        end against brute-force ``OPT`` oracles.
        """
        claims: List[Dict[str, Any]] = []
        for index, snap in enumerate(self.history, start=1):
            claims.append(
                {
                    "query": index,
                    "seeds": [int(s) for s in snap.seeds],
                    "alpha": float(snap.alpha),
                    "query_delta": self.delta / (2.0 ** index),
                    "num_rr_sets": int(snap.num_rr_sets),
                }
            )
        return claims

    def run_until(
        self,
        alpha_target: Optional[float] = None,
        rr_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        step: int = 2000,
        max_queries: int = 64,
        bound: Optional[str] = None,
        query_first: bool = False,
    ) -> SessionResult:
        """Extend-and-query until a stopping condition fires.

        Parameters
        ----------
        alpha_target:
            Stop once a snapshot's guarantee reaches this value.
        rr_budget:
            Stop before exceeding this many total RR sets.
        time_budget:
            Stop once the algorithm's own wall-clock time (sampling +
            querying) exceeds this many seconds, checked per round.
        step:
            RR sets added between queries (doubled geometrically after
            each unsatisfied query, mirroring the paper's checkpoints).
        max_queries:
            Hard cap on query rounds.
        bound:
            Bound variant forwarded to every :meth:`query` of the loop
            (default: the session's bound).
        query_first:
            Query the *existing* stream before sampling anything.  A
            warm session (restored checkpoint, shared serving sketch)
            whose current guarantee already meets ``alpha_target``
            then returns without generating a single RR set.

        At least one of the three budgets/targets must be given.
        """
        if alpha_target is None and rr_budget is None and time_budget is None:
            raise ParameterError(
                "provide at least one of alpha_target, rr_budget, time_budget"
            )
        if alpha_target is not None and not 0.0 < alpha_target <= 1.0:
            raise ParameterError(f"alpha_target must be in (0, 1], got {alpha_target}")
        if step < 2:
            raise ParameterError(f"step must be >= 2, got {step}")

        snapshot = None
        stop = StopReason("max_queries", f"{max_queries} queries exhausted")
        grow = step
        if query_first and self.num_rr_sets > 0:
            snapshot = self.query(bound=bound)
            if alpha_target is not None and snapshot.alpha >= alpha_target:
                return SessionResult(
                    snapshot=snapshot,
                    history=list(self.history),
                    stop=StopReason(
                        "alpha",
                        f"alpha {snapshot.alpha:.4f} >= {alpha_target} "
                        "(pre-existing stream)",
                    ),
                )
        for _ in range(max_queries):
            target_total = self.num_rr_sets + grow
            if rr_budget is not None and target_total > rr_budget:
                target_total = rr_budget
            if target_total <= self.num_rr_sets:
                stop = StopReason("rr_budget", f"budget {rr_budget} reached")
                break
            self.extend_to(target_total)
            snapshot = self.query(bound=bound)
            if alpha_target is not None and snapshot.alpha >= alpha_target:
                stop = StopReason(
                    "alpha", f"alpha {snapshot.alpha:.4f} >= {alpha_target}"
                )
                break
            if time_budget is not None and self._online.timer.elapsed >= time_budget:
                stop = StopReason(
                    "time_budget",
                    f"{self._online.timer.elapsed:.2f}s >= {time_budget}s",
                )
                break
            if rr_budget is not None and self.num_rr_sets >= rr_budget:
                stop = StopReason("rr_budget", f"budget {rr_budget} reached")
                break
            grow *= 2

        if snapshot is None:
            # No query ran (rr_budget below current stream size).
            snapshot = self.query(bound=bound)
        return SessionResult(snapshot=snapshot, history=list(self.history), stop=stop)
