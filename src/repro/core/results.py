"""Result records returned by the influence-maximization algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class OnlineSnapshot:
    """What an online algorithm reports when the user pauses it.

    Attributes
    ----------
    seeds:
        The seed set ``S*`` (selection order preserved).
    alpha:
        Reported approximation guarantee; ``S*`` is an
        ``alpha``-approximation w.p. >= ``1 - delta``.
    variant:
        Which bound produced ``alpha`` (``"vanilla"``/``"greedy"``/
        ``"leskovec"`` for the OPIM family, ``"borgs"``, or
        ``"adoption:<alg>"``).
    num_rr_sets:
        Total RR sets generated when the snapshot was taken
        (``theta_1 + theta_2`` for OPIM).
    theta1, theta2:
        Sizes of the nominator/judge collections (OPIM only).
    sigma_low, sigma_up:
        The spread bounds whose ratio is ``alpha`` (OPIM only).
    coverage_r1, coverage_r2:
        ``Lambda_1(S*)`` and ``Lambda_2(S*)`` (OPIM only).
    edges_examined:
        Cumulative edge-traversal cost of sampling so far.
    elapsed:
        Wall-clock seconds of algorithm work so far.
    metadata:
        Observability payload.  OPIM populates ``"alpha_row"`` (this
        snapshot's ``(theta1, theta2, sigma_low, sigma_up, alpha)``
        telemetry row) and ``"alpha_trajectory"`` (every row recorded
        so far on the producing algorithm instance).
    """

    seeds: List[int]
    alpha: float
    variant: str
    num_rr_sets: int
    theta1: int = 0
    theta2: int = 0
    sigma_low: float = 0.0
    sigma_up: float = 0.0
    coverage_r1: int = 0
    coverage_r2: int = 0
    edges_examined: int = 0
    elapsed: float = 0.0
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class IMResult:
    """Output of a conventional influence-maximization run.

    ``seeds`` carries a ``(1 - 1/e - epsilon)``-approximation guarantee
    w.p. >= ``1 - delta`` (per the respective algorithm's analysis).

    OPIM-C additionally stores its doubling-loop telemetry under
    ``extra["alpha_trajectory"]``: one
    ``{iteration, theta1, theta2, sigma_low, sigma_up, alpha}`` row per
    iteration, matching the ``alpha_row`` trace events.
    """

    algorithm: str
    seeds: List[int]
    k: int
    epsilon: float
    delta: float
    num_rr_sets: int
    elapsed: float
    iterations: int = 1
    alpha_achieved: Optional[float] = None
    edges_examined: int = 0
    extra: dict = field(default_factory=dict)
