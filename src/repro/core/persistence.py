"""Checkpoint/restore for online OPIM runs.

An OPIM run's entire statistical state is (i) the two RR collections
and (ii) the sampler's RNG state and cost counters.  Persisting those
lets a pause-anytime session also be a *stop-and-restart-anytime*
session: after :func:`load_opim`, queries pick up with exactly the
guarantees (and the randomness stream) the original process would have
produced.

Format: a directory containing ``r1.npz`` / ``r2.npz`` (see
:mod:`repro.sampling.serialize`) and ``meta.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.opim import OnlineOPIM
from repro.exceptions import GraphFormatError, ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.serialize import load_collection, save_collection

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_opim(online: OnlineOPIM, directory: PathLike) -> None:
    """Checkpoint *online* into *directory* (created if missing).

    Only plain :class:`~repro.sampling.generator.RRSampler`-compatible
    samplers with a numpy ``Generator`` are supported (custom
    triggering samplers carry arbitrary closures we cannot serialize).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_collection(online.r1, directory / "r1.npz")
    save_collection(online.r2, directory / "r2.npz")
    try:
        rng_state = online.sampler.rng.bit_generator.state
    except AttributeError:
        raise ParameterError(
            "cannot checkpoint a session whose sampler has no numpy Generator"
        )
    meta = {
        "version": _FORMAT_VERSION,
        "n": online.graph.n,
        "m": online.graph.m,
        "model": online.sampler.model,
        "k": online.k,
        "delta": online.delta,
        "bound": online.bound,
        "edges_examined": int(online.sampler.edges_examined),
        "sets_generated": int(online.sampler.sets_generated),
        "elapsed": online.timer.elapsed,
        "rng_state": rng_state,
    }
    (directory / "meta.json").write_text(json.dumps(meta), encoding="utf-8")


def load_opim(graph: DiGraph, directory: PathLike) -> OnlineOPIM:
    """Restore a checkpointed session onto *graph*.

    The caller provides the graph (graphs are large and typically live
    in their own files); its shape is validated against the
    checkpoint's metadata.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise GraphFormatError(f"{directory}: no meta.json checkpoint found")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("version") != _FORMAT_VERSION:
        raise GraphFormatError(
            f"{directory}: unsupported checkpoint version {meta.get('version')}"
        )
    if meta["n"] != graph.n or meta["m"] != graph.m:
        raise ParameterError(
            f"checkpoint was taken on a graph with n={meta['n']}, m={meta['m']}; "
            f"got n={graph.n}, m={graph.m}"
        )

    online = OnlineOPIM(
        graph,
        meta["model"],
        k=meta["k"],
        delta=meta["delta"],
        bound=meta["bound"],
    )
    online.r1 = load_collection(directory / "r1.npz")
    online.r2 = load_collection(directory / "r2.npz")
    online.sampler.rng.bit_generator.state = meta["rng_state"]
    online.sampler.edges_examined = meta["edges_examined"]
    online.sampler.sets_generated = meta["sets_generated"]
    online.timer._accumulated = float(meta["elapsed"])
    return online
