"""Small vectorized array helpers shared across modules."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def gather_slices(
    offsets: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenate CSR slices ``data[offsets[r]:offsets[r+1]]`` for each
    row in *rows*, without a Python-level loop.

    This is the standard vectorized multi-slice gather: compute the
    output position of each slice, then offset a single ``arange``.
    """
    rows = np.asarray(rows)
    if rows.size == 0:
        return data[:0]
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return data[:0]
    cum = np.cumsum(lengths)
    index = np.arange(total, dtype=np.int64) + np.repeat(
        starts - np.concatenate(([0], cum[:-1])), lengths
    )
    return data[index]


def gather_slice_index(
    offsets: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Like :func:`gather_slices` but return the flat *indices* plus the
    per-row repeat vector (callers that need several parallel arrays
    gather once and index many)."""
    rows = np.asarray(rows)
    if rows.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.cumsum(lengths)
    index = np.arange(total, dtype=np.int64) + np.repeat(
        starts - np.concatenate(([0], cum[:-1])), lengths
    )
    row_of = np.repeat(rows, lengths)
    return index, row_of
