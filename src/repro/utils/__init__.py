"""Shared utilities: RNG discipline, timers, and validation.

Logging and metrics live in :mod:`repro.obs`
(:func:`repro.obs.configure_logging`, :class:`repro.obs.MetricsRegistry`).
"""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_delta,
    check_epsilon,
    check_k,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "check_delta",
    "check_epsilon",
    "check_k",
    "check_probability",
]
