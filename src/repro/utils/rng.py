"""Random-number-generator discipline.

Every stochastic component in the library accepts ``seed`` arguments of
type ``int | numpy.random.Generator | numpy.random.SeedSequence | None``
and normalizes them through :func:`as_generator`.  Experiments that need
several independent streams (e.g. one per algorithm sharing the same
graph) use :func:`spawn_generators`, which derives child generators from
a single ``SeedSequence`` so runs are reproducible yet uncorrelated.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize *seed* into a ``numpy.random.Generator``.

    Passing an existing ``Generator`` returns it unchanged (shared
    state), so callers can thread one generator through a pipeline.
    Passing ``None`` produces a fresh OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be int, Generator, SeedSequence or None; got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Return *count* independent generators derived from *seed*.

    When *seed* is already a ``Generator``, children are spawned from its
    internal bit generator's seed sequence when available, otherwise from
    integers drawn from it (still reproducible given the parent state).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(count)]
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed if seed is not None else None)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]
