"""Random-number-generator discipline.

Every stochastic component in the library accepts ``seed`` arguments of
type ``int | numpy.random.Generator | numpy.random.SeedSequence | None``
and normalizes them through :func:`as_generator`.  Experiments that need
several independent streams (e.g. one per algorithm sharing the same
graph) use :func:`spawn_generators`, which derives child generators from
a single ``SeedSequence`` so runs are reproducible yet uncorrelated.

Replayable auto-seeding
-----------------------
Passing ``seed=None`` must not mean "unreproducible".  Instead of an
anonymous OS-seeded generator, :func:`as_generator` draws one explicit
entropy value from the OS (via ``numpy.random.SeedSequence()``), records
it in a module-level log, and seeds the generator from it.  Any run can
then be replayed by reading the entropy back — from
:func:`last_auto_entropy` or the full :func:`auto_entropy_log` — and
passing it as the seed of a later run:

>>> g1 = as_generator(None)
>>> replay = as_generator(last_auto_entropy())
>>> bool((g1.integers(0, 100, 5) == replay.integers(0, 100, 5)).all())
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


@dataclass(frozen=True)
class AutoSeedRecord:
    """One auto-seeded generator: where it came from, how to replay it."""

    index: int
    entropy: int
    origin: str  # "as_generator" or "spawn_generators"


_AUTO_SEED_LOG: List[AutoSeedRecord] = []


def _record_entropy(sequence: np.random.SeedSequence, origin: str) -> None:
    entropy = sequence.entropy
    if isinstance(entropy, (tuple, list)):  # pragma: no cover - numpy quirk
        entropy = entropy[0]
    _AUTO_SEED_LOG.append(
        AutoSeedRecord(
            index=len(_AUTO_SEED_LOG), entropy=int(entropy), origin=origin
        )
    )


def auto_entropy_log() -> Tuple[AutoSeedRecord, ...]:
    """All auto-drawn seeds of this process, oldest first."""
    return tuple(_AUTO_SEED_LOG)


def last_auto_entropy() -> Optional[int]:
    """Entropy of the most recent auto-seeded generator (None if none)."""
    return _AUTO_SEED_LOG[-1].entropy if _AUTO_SEED_LOG else None


def fresh_entropy(origin: str = "fresh_entropy") -> int:
    """Draw one OS entropy value, record it, and return it as an int.

    The replayable counterpart of "no seed given" for components that
    need a *root integer seed* rather than a ``Generator`` (e.g. the
    sampling service derives per-chunk child seeds from it).  The value
    lands in :func:`auto_entropy_log` like every other auto seed.
    """
    sequence = np.random.SeedSequence()
    _record_entropy(sequence, origin)
    return _AUTO_SEED_LOG[-1].entropy


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize *seed* into a ``numpy.random.Generator``.

    Passing an existing ``Generator`` returns it unchanged (shared
    state), so callers can thread one generator through a pipeline.
    Passing ``None`` draws one explicit entropy value from the OS,
    records it in :func:`auto_entropy_log`, and seeds from it — the
    resulting stream is fresh but replayable.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        sequence = np.random.SeedSequence()
        _record_entropy(sequence, "as_generator")
        return np.random.default_rng(sequence)
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be int, Generator, SeedSequence or None; got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Return *count* independent generators derived from *seed*.

    When *seed* is already a ``Generator``, children are spawned from its
    internal bit generator's seed sequence when available, otherwise from
    integers drawn from it (still reproducible given the parent state).
    When *seed* is ``None``, the parent entropy is drawn once from the
    OS and recorded in :func:`auto_entropy_log`, so the whole family of
    children can be replayed from one logged value.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(count)]
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    if seed is None:
        sequence = np.random.SeedSequence()
        _record_entropy(sequence, "spawn_generators")
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]
