"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """A cumulative stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    The same timer may be entered repeatedly; ``elapsed`` accumulates
    across all completed spans, which is what the online-processing
    experiments need (sampling time accrues over many ``extend`` calls).
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        span = time.perf_counter() - self._started_at
        self._accumulated += span
        self._started_at = None
        return span

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total seconds across completed spans (plus the live one)."""
        live = 0.0
        if self._started_at is not None:
            live = time.perf_counter() - self._started_at
        return self._accumulated + live

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"Timer(elapsed={self.elapsed:.6f}s, {state})"
