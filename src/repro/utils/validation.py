"""Parameter validation shared across algorithms.

All algorithm entry points validate their parameters eagerly with these
helpers so a bad ``k``/``epsilon``/``delta`` fails with a clear
:class:`~repro.exceptions.ParameterError` instead of a numpy warning
deep inside a bound computation.
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError


def check_k(k: int, n: int) -> int:
    """Validate a seed-set size ``k`` against a graph with ``n`` nodes."""
    if not isinstance(k, (int,)) or isinstance(k, bool):
        raise ParameterError(f"k must be an int, got {type(k).__name__}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if k > n:
        raise ParameterError(f"k must be <= number of nodes ({n}), got {k}")
    return k


def check_epsilon(epsilon: float) -> float:
    """Validate an approximation error threshold ``epsilon`` in (0, 1)."""
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return epsilon


def check_delta(delta: float) -> float:
    """Validate a failure probability ``delta`` in (0, 1)."""
    delta = float(delta)
    if not math.isfinite(delta) or not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return delta


def check_probability(p: float, name: str = "probability") -> float:
    """Validate a probability value in [0, 1]."""
    p = float(p)
    if not math.isfinite(p) or not 0.0 <= p <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {p}")
    return p


def check_positive(value: float, name: str) -> float:
    """Validate a strictly positive finite value."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ParameterError(f"{name} must be positive and finite, got {value}")
    return value
