"""Benchmark trajectory history and perf-regression gating.

Two pieces back ``repro-opim bench record`` / ``bench compare`` and the
CI regression job:

* :func:`append_history` snapshots every ``BENCH_*.json`` in a results
  directory onto one JSONL history file — the benchmark *trajectory*
  later perf PRs are judged against.
* :func:`compare` checks current ``BENCH_*.json`` values against a
  recorded baseline with per-metric tolerances and improvement
  directions, reporting regressions.

Baseline format (``benchmarks/results/BENCH_baseline.json``)::

    {
      "version": 1,
      "metrics": {
        "BENCH_serve.json:cached.p50_ms": {
          "value": 0.787, "tolerance": 0.9, "direction": "lower"
        },
        ...
      }
    }

A metric id is ``<results file>:<dotted path into its JSON>``.
``direction`` says which way is *better*: ``"lower"`` metrics regress
when ``current > value * (1 + tolerance)``; ``"higher"`` metrics when
``current < value * (1 - tolerance)``.  Tolerances are deliberately
loose (wall-clock noise on shared runners) — the gate catches order-of
-magnitude slips like an accidental O(n^2), not 10% jitter.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = [
    "BASELINE_FILENAME",
    "HISTORY_FILENAME",
    "load_baseline",
    "extract_metric",
    "compare",
    "format_comparison",
    "append_history",
]

BASELINE_FILENAME = "BENCH_baseline.json"
HISTORY_FILENAME = "history.jsonl"


def load_baseline(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    metrics = baseline.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"baseline {path} has no 'metrics' mapping")
    for metric_id, spec in metrics.items():
        if "value" not in spec:
            raise ValueError(f"baseline metric {metric_id} missing 'value'")
        if spec.get("direction", "lower") not in ("lower", "higher"):
            raise ValueError(
                f"baseline metric {metric_id}: direction must be "
                f"'lower' or 'higher'"
            )
    return baseline


def extract_metric(results_dir: str, metric_id: str) -> Optional[float]:
    """Resolve ``file.json:dotted.path`` to a float, None when absent."""
    filename, _, dotted = metric_id.partition(":")
    if not dotted:
        raise ValueError(f"metric id {metric_id!r} is not 'file:dotted.path'")
    path = os.path.join(results_dir, filename)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        node = json.load(handle)
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def compare(results_dir: str, baseline: dict) -> dict:
    """Check every baseline metric against the current results.

    Returns ``{"rows": [...], "regressions": [...], "missing": [...]}``
    where each row carries the metric id, baseline/current values, the
    current-to-baseline ratio, the allowed bound, and a status of
    ``"ok"`` / ``"regression"`` / ``"missing"``.
    """
    rows: List[dict] = []
    for metric_id, spec in sorted(baseline["metrics"].items()):
        base_value = float(spec["value"])
        tolerance = float(spec.get("tolerance", 0.5))
        direction = spec.get("direction", "lower")
        current = extract_metric(results_dir, metric_id)
        row = {
            "metric": metric_id,
            "baseline": base_value,
            "current": current,
            "tolerance": tolerance,
            "direction": direction,
        }
        if current is None:
            row["status"] = "missing"
        else:
            ratio = current / base_value if base_value else float("inf")
            row["ratio"] = ratio
            if direction == "lower":
                row["limit"] = base_value * (1.0 + tolerance)
                regressed = current > row["limit"]
            else:
                row["limit"] = base_value * (1.0 - tolerance)
                regressed = current < row["limit"]
            row["status"] = "regression" if regressed else "ok"
        rows.append(row)
    return {
        "rows": rows,
        "regressions": [r for r in rows if r["status"] == "regression"],
        "missing": [r for r in rows if r["status"] == "missing"],
    }


def format_comparison(result: dict) -> str:
    header = (
        f"{'metric':<48} {'baseline':>10} {'current':>10} "
        f"{'limit':>10} {'status':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in result["rows"]:
        current = "-" if row["current"] is None else f"{row['current']:.4g}"
        limit = "-" if "limit" not in row else f"{row['limit']:.4g}"
        lines.append(
            f"{row['metric']:<48} {row['baseline']:>10.4g} {current:>10} "
            f"{limit:>10} {row['status'].upper():>10}"
        )
    lines.append(
        f"{len(result['rows'])} metrics: "
        f"{len(result['regressions'])} regressed, "
        f"{len(result['missing'])} missing"
    )
    return "\n".join(lines)


def append_history(
    results_dir: str,
    history_path: Optional[str] = None,
    label: Optional[str] = None,
) -> dict:
    """Append one snapshot of every ``BENCH_*.json`` to the history.

    The snapshot is a single JSONL line keyed by results filename
    (baseline and history files excluded), with an optional free-form
    ``label`` (e.g. a git SHA).  Returns the snapshot that was written.
    """
    if history_path is None:
        history_path = os.path.join(results_dir, HISTORY_FILENAME)
    results: Dict[str, dict] = {}
    for filename in sorted(os.listdir(results_dir)):
        if not (filename.startswith("BENCH_") and filename.endswith(".json")):
            continue
        if filename == BASELINE_FILENAME:
            continue
        path = os.path.join(results_dir, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                results[filename] = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
    snapshot = {"label": label, "results": results}
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot) + "\n")
    return snapshot
