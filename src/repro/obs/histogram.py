"""Log-bucketed latency histograms with Prometheus-style buckets.

:class:`Histogram` complements :class:`~repro.obs.registry.RunningStats`
when the *shape* of a latency distribution matters, not just its mean:
serving percentiles (p50/p95/p99) are the quantities the OPIM-C paper's
"online processing" claim is judged on, and a mean hides the tail.

Buckets follow the Prometheus exposition model: each bucket is an
inclusive upper bound (``le``), observations land in the first bucket
whose bound is >= the value, and an implicit ``+Inf`` bucket catches
the overflow.  The default bounds are log-spaced (1/2.5/5 steps per
decade) from 100 microseconds to 60 seconds — wide enough for a cached
hit (~1 ms) and a cold OPIM query (~100 ms+) to land in well-separated
buckets.

Quantiles are estimated by linear interpolation inside the bucket that
contains the target rank, the same estimator Prometheus'
``histogram_quantile`` uses; the error is bounded by bucket width.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Histogram", "default_buckets"]

#: Log-spaced seconds-scale bounds: 100 us .. 60 s in 1 / 2.5 / 5 steps.
_DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 60.0,
)


def default_buckets() -> Tuple[float, ...]:
    """The default log-spaced latency bounds (seconds)."""
    return _DEFAULT_BOUNDS


class Histogram:
    """A fixed-bucket histogram metric (thread-safe, lock-shared).

    Parameters
    ----------
    name:
        Dotted metric name (``serve.latency``).
    lock:
        The owning registry's lock; all mutation happens under it.
    buckets:
        Ascending finite upper bounds; an implicit ``+Inf`` bucket is
        always appended.  Defaults to :func:`default_buckets`.
    labels:
        Optional frozen label mapping (e.g. ``{"outcome": "cold"}``) —
        purely descriptive here; the registry keys histograms by
        ``(name, labels)``.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "count", "sum", "_lock")

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else _DEFAULT_BOUNDS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly ascending: {bounds}")
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += value

    # -- views ----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow slot last."""
        return list(self._counts)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs.

        The final pair uses ``float("inf")`` and always equals
        :attr:`count`.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, slot in zip(self.bounds, self._counts):
            running += slot
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 <= q <= 1) from bucket counts.

        Linear interpolation inside the containing bucket; the lowest
        bucket interpolates from 0, the overflow bucket returns the
        largest finite bound (the estimate is saturated, not infinite).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        lower = 0.0
        for bound, slot in zip(self.bounds, self._counts):
            if slot and running + slot >= rank:
                fraction = (rank - running) / slot
                return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
            running += slot
            lower = bound
        return self.bounds[-1] if self.bounds else 0.0

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (feeds ``registry.summary()``)."""
        snapshot = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }
        snapshot.update(self.percentiles())
        snapshot["buckets"] = [
            {"le": le if le != float("inf") else "+Inf", "count": cumulative}
            for le, cumulative in self.cumulative_buckets()
        ]
        if self.labels:
            snapshot["labels"] = dict(self.labels)
        return snapshot

    def __repr__(self) -> str:
        label = f", labels={self.labels}" if self.labels else ""
        return (
            f"Histogram({self.name!r}{label}, count={self.count}, "
            f"sum={self.sum:.6g})"
        )
