"""Prometheus text-format exposition for a :class:`MetricsRegistry`.

:func:`prometheus_text` renders every counter, gauge, histogram, and
running-stat in a registry using the Prometheus text exposition format
(version 0.0.4) — the payload ``GET /metrics`` on
:class:`~repro.serve.server.SeedQueryServer` returns.

Naming: dotted metric names become underscore-separated
(``serve.latency`` -> ``serve_latency``); histogram labels render as
``serve_latency_bucket{outcome="cold",le="0.25"}``.  RunningStats are
exported as ``<name>_count`` / ``<name>_sum`` / ``<name>_min`` /
``<name>_max`` untyped samples, skipped when a histogram of the same
name exists (the histogram's ``_count`` / ``_sum`` take precedence).
"""

from __future__ import annotations

import re
from typing import Dict, List

__all__ = ["prometheus_text", "metric_name"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

#: Prometheus content type for the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(name: str) -> str:
    """``serve.latency`` -> ``serve_latency``; ``span:a/b`` -> ``span_a_b``."""
    return _NAME_OK.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{metric_name(k)}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_bound(le: float) -> str:
    if le == float("inf"):
        return "+Inf"
    text = repr(float(le))
    return text[:-2] if text.endswith(".0") else text


def prometheus_text(registry) -> str:
    """Render *registry* as Prometheus text exposition format."""
    lines: List[str] = []

    for name, value in sorted(registry.counter_values().items()):
        pname = metric_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")

    for name, value in sorted(registry.gauge_values().items()):
        pname = metric_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")

    histograms = getattr(registry, "histograms", None)
    hist_names = set()
    if histograms is not None:
        grouped: Dict[str, List[object]] = {}
        for hist in histograms():
            grouped.setdefault(hist.name, []).append(hist)
        for name in sorted(grouped):
            pname = metric_name(name)
            hist_names.add(name)
            lines.append(f"# TYPE {pname} histogram")
            for hist in grouped[name]:
                labels = dict(hist.labels)
                for le, cumulative in hist.cumulative_buckets():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_bound(le)
                    lines.append(
                        f"{pname}_bucket{_render_labels(bucket_labels)}"
                        f" {cumulative}"
                    )
                suffix = _render_labels(labels)
                lines.append(f"{pname}_sum{suffix} {hist.sum}")
                lines.append(f"{pname}_count{suffix} {hist.count}")

    summary = registry.summary()
    for name, stat in sorted(summary.get("stats", {}).items()):
        if name in hist_names:
            continue
        pname = metric_name(name)
        lines.append(f"# TYPE {pname} untyped")
        lines.append(f"{pname}_count {stat['count']}")
        lines.append(f"{pname}_sum {stat['total']}")
        lines.append(f"{pname}_min {stat['min']}")
        lines.append(f"{pname}_max {stat['max']}")

    return "\n".join(lines) + "\n"
