"""repro.obs — observability: metrics, phase tracing, α-trajectory telemetry.

The paper's evaluation is built on internal quantities — RR sets
generated, edges traversed by reverse BFS, coverage evaluations, the
per-iteration online guarantee α — and this subsystem makes all of
them first-class:

* :class:`MetricsRegistry` — thread-safe counters / gauges / running
  stats plus a nesting :meth:`~MetricsRegistry.trace` span API.
* :data:`NULL_REGISTRY` — the no-op default wired into every
  instrumented path, so untraced runs pay (near) nothing.
* :class:`TraceRecorder` — a structured-event sink that exports JSONL
  (schema in ``docs/observability.md``).

Quickstart::

    from repro import load_dataset, opim_c
    from repro.obs import MetricsRegistry, TraceRecorder

    recorder = TraceRecorder()
    registry = MetricsRegistry(sink=recorder)
    graph = load_dataset("pokec-sim", scale=0.1)
    result = opim_c(graph, "IC", k=10, epsilon=0.3, registry=registry)

    registry.summary()            # counters, gauges, span timings
    recorder.alpha_rows()         # per-iteration (|R1|,|R2|,σl,σu,α)
    recorder.to_jsonl("out.jsonl")

The same registry/recorder pair is what the CLI's ``--trace`` /
``--metrics`` flags construct.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.obs.export import prometheus_text
from repro.obs.histogram import Histogram, default_buckets
from repro.obs.recorder import (
    TraceRecorder,
    events_per_second,
    throughput_summary,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    RRSetStats,
    RunningStats,
    resolve_registry,
)
from repro.obs.tracetool import (
    format_trace_summary,
    load_events,
    summarize_trace,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "resolve_registry",
    "Counter",
    "Gauge",
    "RunningStats",
    "Histogram",
    "default_buckets",
    "prometheus_text",
    "RRSetStats",
    "TraceRecorder",
    "events_per_second",
    "throughput_summary",
    "load_events",
    "summarize_trace",
    "format_trace_summary",
    "configure_logging",
]


def configure_logging(
    level: int = logging.INFO,
    stream=None,
    fmt: str = "%(asctime)s %(name)s %(levelname)s %(message)s",
) -> logging.Logger:
    """Configure and return the package's stdlib logger (``"repro"``).

    Idempotent: repeated calls reconfigure the level/handler instead of
    stacking handlers.  Returns the logger so callers can hold on to it::

        from repro.obs import configure_logging
        log = configure_logging()
        log.info("sampling started")
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
