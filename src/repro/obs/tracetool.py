"""Offline inspection of TraceRecorder JSONL exports.

Backs the ``repro-opim trace summarize`` CLI: given a JSONL trace (as
written by ``--trace`` or a streaming :class:`TraceRecorder`), compute

* a **per-phase latency breakdown** — count / total / mean / max over
  every span phase seen in the file, and
* **stitched request trees** — spans sharing one ``trace_id`` grouped
  back into the request that produced them (HTTP span, engine span,
  per-chunk worker spans), with slow requests flagged against a
  threshold.

All functions are pure over a list of event dicts so tests can feed
synthetic events without touching disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.obs.recorder import TraceRecorder

__all__ = [
    "load_events",
    "phase_table",
    "trace_trees",
    "summarize_trace",
    "format_trace_summary",
]


def load_events(path: str) -> List[dict]:
    """All events from a JSONL trace file, in file order."""
    return TraceRecorder.from_jsonl(path).events


def phase_table(events: List[dict]) -> List[dict]:
    """Aggregate span latencies by phase, sorted by total time desc."""
    rows: Dict[str, dict] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        phase = str(event.get("phase", "?"))
        elapsed = float(event.get("elapsed", 0.0))
        row = rows.get(phase)
        if row is None:
            row = rows[phase] = {
                "phase": phase,
                "count": 0,
                "total_s": 0.0,
                "max_s": 0.0,
            }
        row["count"] += 1
        row["total_s"] += elapsed
        if elapsed > row["max_s"]:
            row["max_s"] = elapsed
    for row in rows.values():
        row["mean_s"] = row["total_s"] / row["count"]
    return sorted(rows.values(), key=lambda r: -r["total_s"])


def trace_trees(events: List[dict]) -> Dict[str, List[dict]]:
    """Spans grouped by ``trace_id`` (untagged spans are skipped).

    Within a trace, spans keep file order — workers ship chunk spans
    back with their results, so file order is completion order.
    """
    trees: Dict[str, List[dict]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        trace_id = event.get("trace_id")
        if trace_id is None:
            continue
        trees.setdefault(str(trace_id), []).append(event)
    return trees


def _trace_total_seconds(spans: List[dict]) -> float:
    """Request wall time: the longest span is the enclosing root."""
    return max((float(s.get("elapsed", 0.0)) for s in spans), default=0.0)


def summarize_trace(
    events: List[dict],
    slow_ms: float = 100.0,
    top: int = 5,
) -> dict:
    """Structured summary: phase table, per-trace totals, slow traces."""
    trees = trace_trees(events)
    traces = []
    for trace_id, spans in trees.items():
        by_phase: Dict[str, dict] = {}
        for span in spans:
            phase = str(span.get("phase", "?"))
            agg = by_phase.setdefault(phase, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += float(span.get("elapsed", 0.0))
        workers = sorted(
            {span["worker_pid"] for span in spans if "worker_pid" in span}
        )
        traces.append(
            {
                "trace_id": trace_id,
                "total_s": _trace_total_seconds(spans),
                "num_spans": len(spans),
                "phases": by_phase,
                "worker_pids": workers,
            }
        )
    traces.sort(key=lambda t: -t["total_s"])
    threshold_s = slow_ms / 1000.0
    slow = [t for t in traces if t["total_s"] > threshold_s]
    return {
        "num_events": len(events),
        "phases": phase_table(events),
        "num_traces": len(traces),
        "slow_ms": slow_ms,
        "slow": slow[:top],
        "traces": traces[:top],
    }


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}"


def format_trace_summary(summary: dict) -> str:
    """Render :func:`summarize_trace` output as an aligned text report."""
    lines: List[str] = []
    lines.append(
        f"{summary['num_events']} events, {summary['num_traces']} traces"
    )
    lines.append("")
    lines.append("Per-phase latency breakdown")
    header = f"{'phase':<40} {'count':>7} {'total_ms':>10} {'mean_ms':>9} {'max_ms':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in summary["phases"]:
        lines.append(
            f"{row['phase']:<40} {row['count']:>7} "
            f"{_ms(row['total_s']):>10} {_ms(row['mean_s']):>9} "
            f"{_ms(row['max_s']):>9}"
        )
    lines.append("")
    slow = summary["slow"]
    lines.append(
        f"Slow traces over {summary['slow_ms']:.1f} ms: {len(slow)}"
    )
    for trace in slow:
        workers = (
            f" workers={','.join(str(p) for p in trace['worker_pids'])}"
            if trace["worker_pids"]
            else ""
        )
        lines.append(
            f"  SLOW {trace['trace_id']}: {_ms(trace['total_s'])} ms over "
            f"{trace['num_spans']} spans{workers}"
        )
        for phase, agg in sorted(
            trace["phases"].items(), key=lambda kv: -kv[1]["total_s"]
        ):
            lines.append(
                f"    {phase:<38} x{agg['count']:<4} {_ms(agg['total_s'])} ms"
            )
    return "\n".join(lines)
