"""Structured event sink: accumulate, summarize, export as JSONL.

A :class:`TraceRecorder` receives every event a
:class:`~repro.obs.registry.MetricsRegistry` emits.  Event schema
(documented in ``docs/observability.md``): every event is a flat dict
with a ``"type"`` key plus type-specific fields.

``"span"``
    ``phase`` (slash path, e.g. ``"opimc/iter_3/sampling"``),
    ``depth`` (1-based nesting depth), ``elapsed`` (seconds), and
    ``counters`` (dict of counter deltas attributable to the span).
``"alpha_row"``
    One row of the online-guarantee trajectory:
    ``algorithm``, ``iteration`` (or ``query``), ``theta1`` (|R1|),
    ``theta2`` (|R2|), ``sigma_low``, ``sigma_up``, ``alpha``, and
    optionally ``variant`` / ``target``.
``"meta"``
    Free-form run-level context (command line, dataset, parameters).

Helpers :func:`events_per_second` and :func:`throughput_summary` turn
counter totals into rates for benchmark reporting.
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Dict, List, Optional, Union

__all__ = [
    "TraceRecorder",
    "events_per_second",
    "throughput_summary",
]


class TraceRecorder:
    """Append-only sink of structured observability events.

    Two modes share one API:

    * **in-memory** (default, ``path=None``) — events accumulate in
      :attr:`events`; export explicitly with :meth:`to_jsonl`.
    * **streaming** (``path=...``) — every event is *also* appended to
      the JSONL file as it arrives (flushed per event, so concurrent
      readers and crash post-mortems see a complete prefix).  Pass
      ``max_bytes`` to cap the file: when the next line would exceed
      the cap the current file rotates to ``<path>.1`` (replacing any
      previous rotation) and a fresh file is started, so long-lived
      servers never grow one unbounded JSONL.

    ``record`` is safe to call from multiple threads and asyncio tasks
    concurrently; the internal lock serializes both the in-memory
    append and the file write.  :meth:`close` flushes, fsyncs, and
    closes the stream (idempotent); the recorder also works as a
    context manager.
    """

    def __init__(
        self,
        path: Optional[Union[str, os.PathLike]] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._lock = threading.Lock()
        self.events: List[dict] = []
        self.path = os.fspath(path) if path is not None else None
        self.max_bytes = max_bytes
        self.rotations = 0
        self.closed = False
        self._handle: Optional[IO[str]] = None
        self._bytes_written = 0
        if self.path is not None:
            self._handle = open(self.path, "a", encoding="utf-8")
            self._bytes_written = self._handle.tell()

    def record(self, kind: str, **fields) -> None:
        event = {"type": kind}
        event.update(fields)
        with self._lock:
            self.events.append(event)
            if self._handle is not None and not self.closed:
                line = json.dumps(event) + "\n"
                if (
                    self.max_bytes is not None
                    and self._bytes_written > 0
                    and self._bytes_written + len(line) > self.max_bytes
                ):
                    self._rotate_locked()
                self._handle.write(line)
                self._handle.flush()
                self._bytes_written += len(line)

    def _rotate_locked(self) -> None:
        """Swap the live file to ``<path>.1`` and start a fresh one."""
        assert self._handle is not None and self.path is not None
        self._handle.flush()
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "w", encoding="utf-8")
        self._bytes_written = 0
        self.rotations += 1

    def close(self) -> None:
        """Flush + fsync + close the streaming file (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    # -- filtered views -------------------------------------------------
    def of_type(self, kind: str) -> List[dict]:
        return [e for e in self.events if e.get("type") == kind]

    def spans(self) -> List[dict]:
        return self.of_type("span")

    def alpha_rows(self) -> List[dict]:
        """The guarantee trajectory: per-iteration / per-query α rows."""
        return self.of_type("alpha_row")

    # -- export / import ------------------------------------------------
    def to_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Write one JSON object per line to a path or open text file."""
        if hasattr(target, "write"):
            for event in self.events:
                target.write(json.dumps(event) + "\n")
            return
        with open(target, "w", encoding="utf-8") as handle:
            self.to_jsonl(handle)

    @classmethod
    def from_jsonl(cls, source: Union[str, IO[str]]) -> "TraceRecorder":
        """Rebuild a recorder from a JSONL export (round-trips events)."""
        recorder = cls()
        if hasattr(source, "read"):
            lines = source.read().splitlines()
        else:
            with open(source, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        for line in lines:
            line = line.strip()
            if line:
                recorder.events.append(json.loads(line))
        return recorder

    # -- summaries ------------------------------------------------------
    def summary(self) -> dict:
        """Event counts by type plus total span time by phase."""
        by_type: Dict[str, int] = {}
        span_time: Dict[str, float] = {}
        for event in self.events:
            kind = event.get("type", "?")
            by_type[kind] = by_type.get(kind, 0) + 1
            if kind == "span":
                phase = event.get("phase", "?")
                span_time[phase] = span_time.get(phase, 0.0) + float(
                    event.get("elapsed", 0.0)
                )
        return {
            "num_events": len(self.events),
            "events_by_type": by_type,
            "span_seconds_by_phase": span_time,
        }

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self.events)})"


def events_per_second(count: float, elapsed: float) -> float:
    """Rate helper: ``count / elapsed``, 0.0 when no time elapsed."""
    if elapsed <= 0.0:
        return 0.0
    return count / elapsed


def throughput_summary(
    registry, elapsed: float, counters: Optional[Dict[str, str]] = None
) -> dict:
    """Per-second rates for a registry's counters over *elapsed* seconds.

    Parameters
    ----------
    registry:
        A :class:`~repro.obs.registry.MetricsRegistry` (or anything with
        ``counter_values()``).
    elapsed:
        Wall-clock seconds the counters accumulated over.
    counters:
        Optional mapping of counter name -> output key; defaults to
        every counter, keyed ``<name>_per_second``.

    Returns a dict with ``elapsed``, the raw counter totals, and the
    derived rates — the payload ``benchmarks/bench_microbenchmarks.py``
    writes to ``BENCH_observability.json``.
    """
    values = registry.counter_values()
    if counters is None:
        counters = {name: f"{name}_per_second" for name in values}
    rates = {
        key: events_per_second(values.get(name, 0), elapsed)
        for name, key in counters.items()
    }
    return {"elapsed": elapsed, "totals": dict(values), "rates": rates}
