"""Metrics registry: counters, gauges, running stats, and trace spans.

The registry is the single injection point for all instrumentation in
the package: hot paths (RR-set samplers, greedy max coverage, the OPIM
runners) accept a ``registry`` argument and report into it.  Two
implementations share one duck type:

* :class:`MetricsRegistry` — the real thing: thread-safe counters,
  gauges, running statistics, and nesting :meth:`~MetricsRegistry.trace`
  spans that forward structured events to an attached sink (usually a
  :class:`~repro.obs.recorder.TraceRecorder`).
* :class:`NullRegistry` — a stateless no-op twin.  Its methods do
  nothing and its spans are reusable singletons, so instrumented code
  pays only an attribute lookup and a no-op call when observability is
  off.  The module-level :data:`NULL_REGISTRY` is the default wired
  into every instrumented code path.

Naming conventions: counters use dotted names (``sampling.rr_sets``,
``maxcover.coverage_evals``); span phases use slash-separated paths
built from the nesting of ``trace`` calls (``opimc/iter_3/sampling``).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.obs.histogram import Histogram

__all__ = [
    "Counter",
    "Gauge",
    "RunningStats",
    "Histogram",
    "RRSetStats",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "resolve_registry",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A point-in-time value metric (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value})"


class RunningStats:
    """Histogram-style aggregate: count / total / min / max / mean.

    Used both for span durations (seconds) and for per-RR-set size
    distributions (nodes and edges per reverse BFS).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"RunningStats({self.name!r}, {self.as_dict()})"


class _TraceContext:
    """Thread-local trace-id activation; see ``trace_context``.

    While active, every event the registry records from this thread —
    span exits included — is tagged with the trace id, which is what
    lets the trace summarizer stitch HTTP, engine, and worker spans
    back into one tree per request.
    """

    __slots__ = ("_registry", "_trace_id", "_previous")

    def __init__(self, registry: "MetricsRegistry", trace_id: Optional[str]) -> None:
        self._registry = registry
        self._trace_id = trace_id
        self._previous: Optional[str] = None

    def __enter__(self) -> "_TraceContext":
        local = self._registry._local
        self._previous = getattr(local, "trace_id", None)
        local.trace_id = self._trace_id
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry._local.trace_id = self._previous


class _Span:
    """One live ``trace`` span; created by :meth:`MetricsRegistry.trace`.

    On exit it observes its duration under ``span:<path>`` in the
    registry's stats and, when a sink is attached, emits a ``span``
    event carrying the wall-clock duration plus the deltas of every
    counter that moved while the span was open.
    """

    __slots__ = ("_registry", "name", "path", "depth", "_t0", "_counters_before")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path = ""
        self.depth = 0
        self._t0 = 0.0
        self._counters_before: Dict[str, int] = {}

    def __enter__(self) -> "_Span":
        registry = self._registry
        stack = registry._span_stack()
        stack.append(self.name)
        self.path = "/".join(stack)
        self.depth = len(stack)
        self._counters_before = registry.counter_values()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._t0
        registry = self._registry
        registry._span_stack().pop()
        registry.stats(f"span:{self.path}").observe(elapsed)
        before = self._counters_before
        deltas = {
            name: value - before.get(name, 0)
            for name, value in registry.counter_values().items()
            if value != before.get(name, 0)
        }
        registry.record(
            "span",
            phase=self.path,
            depth=self.depth,
            elapsed=elapsed,
            counters=deltas,
        )


class MetricsRegistry:
    """Thread-safe home for counters, gauges, stats, and trace spans.

    Parameters
    ----------
    sink:
        Optional event sink with a ``record(kind, **fields)`` method —
        normally a :class:`~repro.obs.recorder.TraceRecorder`.  Span
        events and algorithm events (for example the per-iteration
        ``alpha_row`` rows of OPIM-C) flow into it.
    """

    enabled = True

    def __init__(self, sink=None) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._stats: Dict[str, RunningStats] = {}
        self._histograms: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], Histogram
        ] = {}
        self._local = threading.local()
        self.sink = sink

    # -- metric accessors (create-or-get) ------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name, self._lock))
        return gauge

    def stats(self, name: str) -> RunningStats:
        stats = self._stats.get(name)
        if stats is None:
            with self._lock:
                stats = self._stats.setdefault(
                    name, RunningStats(name, self._lock)
                )
        return stats

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Create-or-get a histogram keyed by ``(name, labels)``.

        ``labels`` distinguish streams of one logical metric (e.g.
        ``serve.latency`` per ``outcome``); ``buckets`` only apply on
        first creation of a given key.
        """
        key = (name, tuple(sorted((labels or {}).items())))
        hist = self._histograms.get(key)
        if hist is None:
            with self._lock:
                hist = self._histograms.setdefault(
                    key, Histogram(name, self._lock, buckets=buckets, labels=labels)
                )
        return hist

    # -- shortcuts ------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.stats(name).observe(value)

    # -- tracing --------------------------------------------------------
    def _span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def trace(self, phase: str) -> _Span:
        """Open a nesting span; usable as a context manager.

        Nested calls build slash-separated paths::

            with registry.trace("opimc"):
                with registry.trace("iter_1"):
                    with registry.trace("sampling"):
                        ...  # recorded as "opimc/iter_1/sampling"
        """
        return _Span(self, phase)

    def current_path(self) -> str:
        """Slash-joined path of the currently open spans ('' at root)."""
        return "/".join(self._span_stack())

    def trace_context(self, trace_id: Optional[str]) -> _TraceContext:
        """Activate *trace_id* for this thread (context manager).

        While the context is open, every event recorded from this
        thread is tagged ``trace_id=...`` unless the caller already set
        one.  Contexts nest: the previous id is restored on exit.
        Thread-local — code hopping threads (e.g. the serve engine
        executor) must re-enter the context on the worker thread.
        """
        return _TraceContext(self, trace_id)

    def current_trace(self) -> Optional[str]:
        """The trace id active on this thread, or ``None``."""
        return getattr(self._local, "trace_id", None)

    def record(self, kind: str, **fields) -> None:
        """Forward a structured event to the attached sink, if any.

        When a :meth:`trace_context` is active on the calling thread,
        the event is tagged with its trace id (caller-provided
        ``trace_id`` fields win).
        """
        if self.sink is not None:
            trace_id = getattr(self._local, "trace_id", None)
            if trace_id is not None and "trace_id" not in fields:
                fields["trace_id"] = trace_id
            self.sink.record(kind, **fields)

    # -- introspection --------------------------------------------------
    # Snapshots hold the registry lock: create-or-get accessors may
    # insert new metrics from other threads mid-iteration (e.g. a
    # supervisor drain in an executor while the event loop serves
    # /stats).
    def counter_values(self) -> Dict[str, int]:
        with self._lock:
            counters = list(self._counters.items())
        return {name: c.value for name, c in counters}

    def gauge_values(self) -> Dict[str, float]:
        with self._lock:
            gauges = list(self._gauges.items())
        return {name: g.value for name, g in gauges}

    def histograms(self) -> Iterable[Histogram]:
        """Every histogram (all label streams), creation order."""
        with self._lock:
            return list(self._histograms.values())

    def histogram_values(self) -> Dict[str, dict]:
        """Snapshot keyed ``name`` or ``name{k=v,...}`` per label stream."""
        out: Dict[str, dict] = {}
        with self._lock:
            items = list(self._histograms.items())
        for (name, label_items), hist in items:
            key = name
            if label_items:
                inner = ",".join(f"{k}={v}" for k, v in label_items)
                key = f"{name}{{{inner}}}"
            out[key] = hist.as_dict()
        return out

    def summary(self) -> dict:
        """A JSON-serializable snapshot of every metric."""
        with self._lock:
            stats = list(self._stats.items())
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "stats": {name: s.as_dict() for name, s in stats},
            "histograms": self.histogram_values(),
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, stats={len(self._stats)}, "
            f"histograms={len(self._histograms)})"
        )


class _NullMetric:
    """Shared no-op stand-in for Counter / Gauge / RunningStats."""

    __slots__ = ()

    name = ""
    value = 0
    count = 0
    total = 0.0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0
    labels: Dict[str, str] = {}
    bounds: Tuple[float, ...] = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def cumulative_buckets(self) -> list:
        return []

    def as_dict(self) -> dict:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class _NullSpan:
    """Reusable no-op context manager returned by ``NullRegistry.trace``."""

    __slots__ = ()

    name = ""
    path = ""
    depth = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """No-op registry: the default when observability is not requested.

    Every method is a constant-time no-op and every accessor returns a
    shared inert singleton, so instrumented hot paths stay within noise
    of their uninstrumented cost (see ``tests/test_obs.py``'s overhead
    guard).
    """

    enabled = False

    __slots__ = ()

    sink = None

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def stats(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> _NullMetric:
        return _NULL_METRIC

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def trace(self, phase: str) -> _NullSpan:
        return _NULL_SPAN

    def trace_context(self, trace_id: Optional[str]) -> _NullSpan:
        return _NULL_SPAN

    def current_trace(self) -> Optional[str]:
        return None

    def current_path(self) -> str:
        return ""

    def record(self, kind: str, **fields) -> None:
        pass

    def counter_values(self) -> Dict[str, int]:
        return {}

    def gauge_values(self) -> Dict[str, float]:
        return {}

    def histograms(self) -> list:
        return []

    def histogram_values(self) -> Dict[str, dict]:
        return {}

    def summary(self) -> dict:
        return {"counters": {}, "gauges": {}, "stats": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The process-wide default no-op registry.
NULL_REGISTRY = NullRegistry()


class RRSetStats:
    """Per-RR-set size-distribution hook for the scalar samplers.

    The scalar RR-set functions (``sample_rr_set_ic`` / ``_lt`` /
    ``_triggering``) accept one of these as an optional ``stats``
    argument; when present they observe the node count and the edge
    count of every sampled RR set, feeding the ``sampling.rr_nodes`` /
    ``sampling.rr_edges`` distributions.  Samplers only allocate it
    when bound to an enabled registry, so the default path carries a
    single ``is not None`` check per RR set.
    """

    __slots__ = ("nodes", "edges")

    def __init__(self, registry, prefix: str = "sampling") -> None:
        self.nodes = registry.stats(f"{prefix}.rr_nodes")
        self.edges = registry.stats(f"{prefix}.rr_edges")

    def observe_set(self, num_nodes: int, num_edges: int) -> None:
        self.nodes.observe(num_nodes)
        self.edges.observe(num_edges)


def resolve_registry(registry: Optional[object]):
    """``registry`` if given, else the shared :data:`NULL_REGISTRY`."""
    return NULL_REGISTRY if registry is None else registry
