"""Greedy maximum coverage over an RR-set collection (paper, Alg. 1).

The greedy algorithm repeatedly picks the node with the largest
*marginal coverage* — the number of not-yet-covered RR sets it belongs
to — until ``k`` nodes are selected.  By the Nemhauser–Wolsey–Fisher
bound the result covers at least ``1 - (1 - 1/k)^k >= 1 - 1/e`` of what
any size-k set covers.

Beyond the seed set itself, the OPIM⁺ upper bound (paper, Eq. 10) needs
per-prefix information: for every greedy prefix ``S_i*`` (``0 <= i <=
k``), the coverage ``Lambda(S_i*)`` and the sum of the ``k`` largest
marginal coverages with respect to ``S_i*``.  Both fall out of the
greedy loop for free:

* at the start of iteration ``i`` the marginal-coverage vector *is* the
  node-coverage vector after removing the RR sets covered by ``S_i*``;
* the top-k sum takes ``O(n)`` via ``numpy.partition``.

Total cost is ``O(k * n + sum |R|)``, matching the paper's Table 1 row
for the improved OPIM via ``sigma_hat_u``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.exceptions import ParameterError
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.utils.validation import check_k


@dataclass(frozen=True)
class GreedyResult:
    """Output of :func:`greedy_max_coverage`.

    Attributes
    ----------
    seeds:
        Selected nodes, in selection order (length ``k``).
    coverage:
        ``Lambda(S*)``: number of RR sets covered by the full seed set.
    prefix_coverages:
        ``Lambda(S_i*)`` for ``i = 0..k`` (length ``k + 1``;
        entry 0 is 0).
    prefix_topk_sums:
        ``sum_{v in maxMC(S_i*, k)} Lambda(v | S_i*)`` for ``i = 0..k``
        (length ``k + 1``), the quantity inside Eq. 10.
    gains:
        Marginal coverage of each selected node at selection time.
    num_rr_sets:
        ``theta``: size of the collection greedy ran over.
    """

    seeds: List[int]
    coverage: int
    prefix_coverages: List[int]
    prefix_topk_sums: List[int]
    gains: List[int] = field(default_factory=list)
    num_rr_sets: int = 0

    @property
    def k(self) -> int:
        return len(self.seeds)

    def coverage_fraction(self) -> float:
        """Fraction of RR sets covered by the seed set."""
        if self.num_rr_sets == 0:
            return 0.0
        return self.coverage / self.num_rr_sets


def _top_k_sum(values: np.ndarray, k: int) -> int:
    """Sum of the k largest entries of *values* in O(n)."""
    if k >= values.shape[0]:
        return int(values.sum())
    part = np.partition(values, values.shape[0] - k)
    return int(part[values.shape[0] - k :].sum())


def greedy_max_coverage(
    collection: RRCollection, k: int, registry=None
) -> GreedyResult:
    """Run greedy maximum coverage selecting *k* seeds.

    Ties are broken toward the smallest node id, making the output
    deterministic for a fixed collection.

    ``registry`` (optional :class:`~repro.obs.MetricsRegistry`) receives
    the ``maxcover.greedy_runs`` / ``maxcover.coverage_evals`` /
    ``maxcover.marginal_updates`` counters: one coverage evaluation per
    node per argmax pass (``k * n`` per run), and one marginal update
    per member of every freshly covered RR set.

    Raises
    ------
    ParameterError
        If the collection is empty or ``k`` is out of range.
    """
    check_k(k, collection.n)
    if len(collection) == 0:
        raise ParameterError("cannot run greedy on an empty RR collection")
    collection.build()

    n = collection.n
    num_rr = len(collection)
    node_offsets = collection.node_offsets
    node_rrs = collection.node_rrs
    rr_offsets = collection.rr_offsets
    rr_nodes = collection.rr_nodes

    # cov[v] = marginal coverage of v w.r.t. the current prefix.  It
    # stays exact for all nodes (the Eq. 10 top-k sums need it); a
    # separate mask excludes already-selected nodes from argmax, which
    # would otherwise re-pick a selected node when gains tie at zero.
    cov = np.bincount(rr_nodes, minlength=n).astype(np.int64)
    selected = np.zeros(n, dtype=bool)
    covered = np.zeros(num_rr, dtype=bool)

    seeds: List[int] = []
    gains: List[int] = []
    prefix_coverages: List[int] = [0]
    prefix_topk_sums: List[int] = [_top_k_sum(cov, k)]
    total_covered = 0
    marginal_updates = 0

    for _ in range(k):
        u = int(np.argmax(np.where(selected, np.int64(-1), cov)))
        gain = int(cov[u])
        seeds.append(u)
        gains.append(gain)
        selected[u] = True

        if gain > 0:
            lo, hi = node_offsets[u], node_offsets[u + 1]
            candidate_rrs = node_rrs[lo:hi]
            fresh = candidate_rrs[~covered[candidate_rrs]]
            covered[fresh] = True
            total_covered += int(fresh.size)

            if fresh.size:
                # Gather all member nodes of the freshly covered RR sets
                # and decrement their marginal coverages.
                starts = rr_offsets[fresh]
                lengths = rr_offsets[fresh + 1] - starts
                total = int(lengths.sum())
                cum = np.cumsum(lengths)
                index = (
                    np.arange(total, dtype=np.int64)
                    + np.repeat(starts - np.concatenate(([0], cum[:-1])), lengths)
                )
                members = rr_nodes[index]
                np.subtract.at(cov, members, 1)
                marginal_updates += total

        prefix_coverages.append(total_covered)
        prefix_topk_sums.append(_top_k_sum(cov, k))

    obs = resolve_registry(registry)
    obs.count("maxcover.greedy_runs")
    obs.count("maxcover.coverage_evals", k * n)
    obs.count("maxcover.marginal_updates", marginal_updates)
    return GreedyResult(
        seeds=seeds,
        coverage=total_covered,
        prefix_coverages=prefix_coverages,
        prefix_topk_sums=prefix_topk_sums,
        gains=gains,
        num_rr_sets=num_rr,
    )
