"""Upper bounds on the optimum's coverage ``Lambda_1(S^o)``.

The three OPIM variants differ only in which of these bounds they plug
into the sigma-upper-bound formula:

* **pessimistic** (OPIM⁰): ``Lambda_1(S*) / (1 - 1/e)`` — worst-case
  tight (Nemhauser et al. 1978) but loose on real instances (Eq. 6).
* **greedy-history** (OPIM⁺): Eq. 10, the minimum over all greedy
  prefixes of ``Lambda_1(S_i*) + sum of top-k marginals``, proved never
  worse than the pessimistic bound (Lemma 5.2).
* **leskovec** (OPIM′): Eq. in Section 5 "Comparison with Previous Work
  [24]" — the same expression evaluated only at the *final* prefix
  ``S* = S_k*``; can be looser than the pessimistic bound.
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError
from repro.maxcover.greedy import GreedyResult


def coverage_upper_bound_pessimistic(result: GreedyResult) -> float:
    """``Lambda_1(S*) / (1 - (1 - 1/k)^k)``.

    Uses the exact greedy ratio ``1 - (1 - 1/k)^k`` (>= 1 - 1/e), which
    is valid per Lemma 5.2 and slightly tighter for small ``k``.
    """
    k = result.k
    if k == 0:
        raise ParameterError("greedy result has no seeds")
    ratio = 1.0 - (1.0 - 1.0 / k) ** k
    return result.coverage / ratio


def coverage_upper_bound_pessimistic_e(result: GreedyResult) -> float:
    """``Lambda_1(S*) / (1 - 1/e)`` — the paper's literal Eq. 6 form."""
    if result.k == 0:
        raise ParameterError("greedy result has no seeds")
    return result.coverage / (1.0 - 1.0 / math.e)


def coverage_upper_bound_greedy(result: GreedyResult) -> float:
    """Eq. 10: ``min_i [Lambda_1(S_i*) + sum_{v in maxMC(S_i*,k)}
    Lambda_1(v | S_i*)]`` over all greedy prefixes ``0 <= i <= k``.

    By Lemma 5.2 this never exceeds the pessimistic bound; tests assert
    that ordering.
    """
    if result.k == 0:
        raise ParameterError("greedy result has no seeds")
    candidates = [
        coverage + topk
        for coverage, topk in zip(result.prefix_coverages, result.prefix_topk_sums)
    ]
    return float(min(candidates))


def coverage_upper_bound_leskovec(result: GreedyResult) -> float:
    """``Lambda_1(S*) + sum of top-k marginals w.r.t. S*`` (OPIM′).

    This is Leskovec et al.'s (2007) bound evaluated at the final seed
    set only; it upper-bounds ``Lambda_1(S^o)`` by Lemma 5.1 but is
    never tighter than :func:`coverage_upper_bound_greedy` and can be
    looser than the pessimistic bound on some instances (which is why
    OPIM′ underperforms OPIM⁰ at k = 1 in Figure 3).
    """
    if result.k == 0:
        raise ParameterError("greedy result has no seeds")
    return float(result.prefix_coverages[-1] + result.prefix_topk_sums[-1])
