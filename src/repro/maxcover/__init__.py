"""Greedy maximum coverage over RR-set collections, with the coverage
upper bounds of the optimum used by the three OPIM variants."""

from repro.maxcover.bounds import (
    coverage_upper_bound_greedy,
    coverage_upper_bound_leskovec,
    coverage_upper_bound_pessimistic,
)
from repro.maxcover.greedy import GreedyResult, greedy_max_coverage

__all__ = [
    "GreedyResult",
    "greedy_max_coverage",
    "coverage_upper_bound_pessimistic",
    "coverage_upper_bound_greedy",
    "coverage_upper_bound_leskovec",
]
