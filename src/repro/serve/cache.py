"""LRU result cache for the seed-query server.

A cached entry is a complete query response: a seed set plus the
snapshot quantities (alpha, theta counts, sigma bounds) it was
certified with.  Snapshots never spoil — an (S*, alpha) pair reported
under the session schedule stays valid forever (more samples would
only *improve* alpha) — so entries are evicted by capacity alone.

Keys are the full query identity
``(graph_hash, model, k, bound, target, rr_budget)``: the graph hash
makes a cache safe to share (or persist next to an index) across
server restarts — a response can never leak across graphs or models.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, NamedTuple, Optional

from repro.exceptions import ParameterError
from repro.obs import resolve_registry


class QueryKey(NamedTuple):
    """Identity of a seed query (hashable, order-insensitive to input
    spelling: epsilon requests are normalized to their alpha target)."""

    graph_hash: str
    model: str
    k: int
    bound: str
    target: float
    rr_budget: Optional[int]


def make_key(
    graph_hash: str,
    model: str,
    k: int,
    bound: str,
    target: float,
    rr_budget: Optional[int] = None,
) -> QueryKey:
    """Build a cache key; the target is rounded so that float noise in
    client-computed targets cannot split cache lines."""
    return QueryKey(
        graph_hash=graph_hash,
        model=model,
        k=int(k),
        bound=bound,
        target=round(float(target), 9),
        rr_budget=None if rr_budget is None else int(rr_budget),
    )


def make_hop_key(
    graph_hash: str,
    model: str,
    hops: int,
    k: Optional[int] = None,
    seeds: Optional[Any] = None,
) -> QueryKey:
    """Cache key for a ``precision="hop"`` preview query.

    Hop answers are deterministic functions of ``(graph, model, hops,
    k | seeds)``, so they cache like exact answers.  The ``bound``
    slot encodes the query flavour (and, for what-if evaluation, the
    seed list itself) so hop keys can never collide with exact-query
    keys of the same ``k``.
    """
    if seeds is not None:
        spec = "hop:" + ",".join(str(int(s)) for s in seeds)
        k_value = len(list(seeds))
    else:
        if k is None:
            raise ParameterError("make_hop_key needs k or seeds")
        spec = "hop"
        k_value = int(k)
    return QueryKey(
        graph_hash=graph_hash,
        model=model,
        k=k_value,
        bound=spec,
        target=float(int(hops)),
        rr_budget=None,
    )


class LRUCache:
    """A plain LRU mapping with hit/miss accounting.

    Not thread-safe by itself — the server funnels all access through
    its event loop, which is the synchronization boundary.
    """

    def __init__(self, capacity: int = 256, registry: Optional[object] = None):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.obs = resolve_registry(registry)
        self._data: "OrderedDict[QueryKey, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: QueryKey) -> Optional[Dict[str, Any]]:
        """Look up *key*, refreshing its recency; None on miss."""
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            self.obs.count("serve.cache_misses")
            return None
        self._data.move_to_end(key)
        self.hits += 1
        self.obs.count("serve.cache_hits")
        return entry

    def put(self, key: QueryKey, value: Dict[str, Any]) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
            self.obs.count("serve.cache_evictions")
        self.obs.set_gauge("serve.cache_size", len(self._data))

    def clear(self) -> None:
        self._data.clear()
        self.obs.set_gauge("serve.cache_size", 0)

    def stats(self) -> Dict[str, Any]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
