"""Persistent RR-sketch index for the serving layer.

A seed-query server's dominant cost is generating RR sets; the sets
themselves are plain integer arrays that are *query-independent*
(Section 3.1: an RR set depends only on the graph, the diffusion
model, and the randomness stream).  Persisting the two collection
halves therefore turns every future process start into a warm start:
load the index, and the first query at any ``k`` is answered from the
existing sketch instead of sampling from zero — the reuse idea of
Tang et al. (arXiv:1404.0900) and the long-lived index of Peng
(arXiv:2110.12602).

On-disk layout (one directory per index)::

    manifest.json     graph hash + model + seed + sample counts +
                      sampler stream state (format below)
    r1_nodes.npy      flattened member node ids of the R1 half
    r1_offsets.npy    CSR offsets into r1_nodes
    r2_nodes.npy      / r2_offsets.npy — same for the R2 half

The ``.npy`` halves are loaded with ``mmap_mode="r"`` by default, so a
multi-hundred-MB sketch maps lazily instead of being read up front;
every RR set handed to :class:`~repro.sampling.collection.RRCollection`
is a zero-copy view into the mapped file.

The manifest binds the sketch to its provenance: ``graph_hash`` (a
SHA-256 over the CSR arrays), ``model``, ``seed``, the chunk policy /
RNG state needed to *continue* the deterministic stream, and the
theta counts.  Loading validates all of it — serving answers from a
sketch sampled on a different graph or model would silently void the
``1 - delta`` guarantee.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.exceptions import GraphFormatError, ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.collection import RRCollection

PathLike = Union[str, Path]

#: Bumped on any incompatible change to the on-disk layout.
INDEX_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_HALVES = ("r1", "r2")


def graph_fingerprint(graph: DiGraph) -> str:
    """SHA-256 fingerprint of a graph's exact CSR content.

    Hashes the node count plus the out-CSR arrays (offsets, targets,
    probabilities) byte-for-byte; the in-CSR arrays are derived from
    them, and the name is deliberately excluded (renaming a graph does
    not change its RR-set distribution).
    """
    digest = hashlib.sha256()
    digest.update(str(graph.n).encode("ascii"))
    for array in (graph.out_offsets, graph.out_targets, graph.out_probs):
        contiguous = np.ascontiguousarray(array)
        digest.update(str(contiguous.dtype.str).encode("ascii"))
        digest.update(contiguous.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class LoadedIndex:
    """Result of :func:`load_index`: the two halves plus the manifest."""

    r1: RRCollection
    r2: RRCollection
    manifest: Dict[str, Any]


def _collection_from_arrays(
    n: int, nodes: np.ndarray, offsets: np.ndarray
) -> RRCollection:
    collection = RRCollection(n)
    for i in range(offsets.shape[0] - 1):
        collection.append(nodes[offsets[i] : offsets[i + 1]])
    return collection


def save_manifest(
    directory: PathLike,
    graph: DiGraph,
    model: str,
    theta1: int,
    theta2: int,
    sampler_state: Dict[str, Any],
    seed: int,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write only the manifest of an index; returns it.

    For callers whose ``.npy`` halves on disk already match
    ``theta1``/``theta2`` and only manifest-borne state moved — e.g. a
    satisfied repeat query advanced a session's ``delta / 2^i``
    schedule position without sampling a single RR set.  Rewriting the
    manifest alone keeps such checkpoints cheap on the serving path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {
        "version": INDEX_FORMAT_VERSION,
        "graph_hash": graph_fingerprint(graph),
        "graph_name": graph.name,
        "n": graph.n,
        "m": graph.m,
        "model": model.upper(),
        "seed": int(seed),
        "theta1": int(theta1),
        "theta2": int(theta2),
        "sampler_state": sampler_state,
    }
    if extra:
        manifest["extra"] = extra
    path = directory / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    return manifest


def save_index(
    directory: PathLike,
    graph: DiGraph,
    model: str,
    r1: RRCollection,
    r2: RRCollection,
    sampler_state: Dict[str, Any],
    seed: int,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write an RR-sketch index; returns the manifest written.

    ``sampler_state`` is the stream-continuation state — either
    ``SamplingPool.state()`` (``kind: "pool"``) or the serial sampler's
    RNG snapshot (``kind: "serial"``) — so a loaded index can keep
    extending the exact same deterministic RR stream.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {}
    for name, collection in zip(_HALVES, (r1, r2)):
        collection.build()
        np.save(directory / f"{name}_nodes.npy", collection.rr_nodes)
        np.save(directory / f"{name}_offsets.npy", collection.rr_offsets)
        counts[name] = len(collection)
    return save_manifest(
        directory,
        graph=graph,
        model=model,
        theta1=counts["r1"],
        theta2=counts["r2"],
        sampler_state=sampler_state,
        seed=seed,
        extra=extra,
    )


def load_index(
    directory: PathLike, graph: DiGraph, mmap: bool = True
) -> LoadedIndex:
    """Load and validate an index previously written by :func:`save_index`.

    *graph* must hash to the manifest's ``graph_hash``; with ``mmap``
    (the default) the node arrays are memory-mapped read-only and the
    collections hold zero-copy views into them.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise GraphFormatError(f"{directory}: no {MANIFEST_NAME} found")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise GraphFormatError(f"{manifest_path}: invalid JSON: {exc}")
    if manifest.get("version") != INDEX_FORMAT_VERSION:
        raise GraphFormatError(
            f"{directory}: unsupported index version {manifest.get('version')}"
        )
    fingerprint = graph_fingerprint(graph)
    if manifest.get("graph_hash") != fingerprint:
        raise ParameterError(
            f"index at {directory} was built on graph "
            f"{manifest.get('graph_name')!r} (hash "
            f"{str(manifest.get('graph_hash'))[:12]}...); the provided "
            f"graph hashes to {fingerprint[:12]}... — serving from a "
            "mismatched sketch would void the guarantee"
        )
    halves = {}
    mmap_mode = "r" if mmap else None
    for name in _HALVES:
        try:
            nodes = np.load(directory / f"{name}_nodes.npy", mmap_mode=mmap_mode)
            offsets = np.load(directory / f"{name}_offsets.npy")
        except (OSError, ValueError) as exc:
            raise GraphFormatError(
                f"{directory}: cannot read the {name} half: {exc}"
            )
        collection = _collection_from_arrays(graph.n, nodes, offsets)
        expected = int(manifest[f"theta{name[1]}"])
        if len(collection) != expected:
            raise GraphFormatError(
                f"{directory}: manifest promises {expected} RR sets in "
                f"{name}, files contain {len(collection)}"
            )
        halves[name] = collection
    return LoadedIndex(r1=halves["r1"], r2=halves["r2"], manifest=manifest)
