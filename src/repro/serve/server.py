"""The asyncio seed-query server.

One process, three moving parts:

* the **event loop** parses HTTP, consults the result cache, and
  coalesces duplicate in-flight queries;
* a **bounded job queue** applies backpressure — when it is full the
  server answers 503 immediately instead of stacking latency;
* a single **engine thread** (a one-worker executor) runs the
  CPU-bound sketch work serially, which is both the synchronization
  story for :class:`~repro.serve.engine.SeedQueryEngine` and what
  keeps the event loop responsive while a cold query samples.

Request lifecycle for ``POST /query``::

    cache hit ───────────────────────────────▶ respond (< 1 ms)
    miss, identical query in flight ─────────▶ await its future
    miss, queue full ────────────────────────▶ 503 {"error": "overloaded"}
    miss ───▶ enqueue ───▶ engine thread ───▶ cache + respond

Every response that waited on the engine is stored in the LRU cache,
including responses whose *requester* timed out (504): the work was
done, so the next identical query is a hit.

Shutdown is a graceful drain: stop accepting connections, let queued
jobs finish (bounded by ``drain_timeout``), then tear down the engine.
"""

from __future__ import annotations

import asyncio
import signal
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.exceptions import ParameterError, ReproError
from repro.obs import prometheus_text
from repro.obs.export import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.serve.base import (
    DispatchResult,
    JsonHTTPServer,
    Payload,
    parse_hop_params,
    parse_query_params,
)
from repro.serve.cache import LRUCache, QueryKey, make_hop_key, make_key
from repro.serve.engine import SeedQueryEngine
from repro.serve.http import ProtocolError, Request, TextResponse

DEFAULT_PORT = 8471

#: Hint clients wait this long before retrying a 503 rejection.
RETRY_AFTER_SECONDS = "1"


class SeedQueryServer(JsonHTTPServer):
    """HTTP/JSON front end over a :class:`SeedQueryEngine`.

    Parameters
    ----------
    engine:
        The shared-sketch engine (owned by the server if
        ``own_engine``; it is then closed on shutdown).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    cache_size:
        LRU capacity of the result cache.
    queue_limit:
        Bounded depth of the engine job queue — the backpressure knob.
    request_timeout:
        Seconds a requester waits for the engine before getting 504
        (the job itself keeps running and still populates the cache).
    drain_timeout:
        Seconds shutdown waits for queued jobs before giving up.
    registry:
        Metrics registry (defaults to the engine's).  Maintains
        ``serve.requests``, ``serve.queries``, ``serve.cache_hits`` /
        ``_misses``, ``serve.coalesced``, ``serve.rejected``,
        ``serve.timeouts``, and the ``serve.queue_depth`` gauge.
    """

    def __init__(
        self,
        engine: SeedQueryEngine,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_size: int = 256,
        queue_limit: int = 64,
        request_timeout: float = 120.0,
        drain_timeout: float = 30.0,
        registry: Optional[object] = None,
        own_engine: bool = False,
    ) -> None:
        if queue_limit < 1:
            raise ParameterError(f"queue_limit must be >= 1, got {queue_limit}")
        if request_timeout <= 0 or drain_timeout < 0:
            raise ParameterError("timeouts must be positive")
        super().__init__(
            host=host,
            port=port,
            registry=registry if registry is not None else engine.obs,
        )
        self.engine = engine
        self.request_timeout = float(request_timeout)
        self.drain_timeout = float(drain_timeout)
        self.own_engine = bool(own_engine)
        self.cache = LRUCache(cache_size, registry=self.obs)
        self.queue_limit = int(queue_limit)
        self._queue: Optional[asyncio.Queue] = None
        self._inflight: Dict[QueryKey, asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        self._worker: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the engine worker."""
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._worker = asyncio.create_task(
            self._worker_loop(), name="serve-engine-worker"
        )
        await self._start_listener()

    async def close(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain, release the engine."""
        if self._closed:
            return
        self._draining = True
        await self._stop_listener()
        if drain and self._queue is not None and not self._queue.empty():
            try:
                await asyncio.wait_for(self._queue.join(), self.drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - slow drain
                pass
        self._closed = True
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
        self._executor.shutdown(wait=True)
        # Final gauge snapshot: whatever drained (or was abandoned by
        # the drain timeout) must be reflected, not the last enqueue.
        self.obs.set_gauge(
            "serve.queue_depth",
            self._queue.qsize() if self._queue is not None else 0,
        )
        if self.own_engine:
            self.engine.close()

    async def serve_forever(self) -> None:
        """Run until SIGINT/SIGTERM, then drain and shut down."""
        if self._server is None:
            await self.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        await self.close(drain=True)

    # ------------------------------------------------------------------
    # Engine worker
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            key, job, future = await self._queue.get()
            try:
                result = await loop.run_in_executor(self._executor, job)
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiter
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if key is not None:
                    self.cache.put(key, result)
                if not future.cancelled():
                    future.set_result(result)
            finally:
                if key is not None:
                    self._inflight.pop(key, None)
                self._queue.task_done()
                self.obs.set_gauge("serve.queue_depth", self._queue.qsize())

    def _submit(
        self, key: Optional[QueryKey], job: Callable[[], Dict[str, Any]]
    ) -> "asyncio.Future[Dict[str, Any]]":
        """Enqueue engine work; raises :class:`OverloadedError` when full."""
        assert self._queue is not None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((key, job, future))
        except asyncio.QueueFull:
            # Refresh the gauge on the rejection path too — a scrape
            # during sustained overload should read the full queue.
            self.obs.set_gauge("serve.queue_depth", self._queue.qsize())
            raise OverloadedError(self._queue.qsize())
        if key is not None:
            self._inflight[key] = future
        self.obs.set_gauge("serve.queue_depth", self._queue.qsize())
        return future

    # ------------------------------------------------------------------
    # HTTP handling (connection loop inherited from JsonHTTPServer)
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> DispatchResult:
        """Route one request under a per-request trace context.

        Every request gets a ``trace_id`` — honored from an
        ``X-Trace-Id`` header when the client sent one, freshly minted
        otherwise — active for the whole dispatch so the HTTP span, the
        engine span (re-entered on the executor thread), and any worker
        chunk spans stitch into one tree.  ``POST /query`` additionally
        lands in the ``serve.latency`` histogram labelled by outcome
        (cold / warm / cached / coalesced / rejected / timeout / error)
        and echoes the trace id in its JSON payload.
        """
        self.obs.count("serve.requests")
        route = (request.method, request.path)
        trace_id = request.headers.get("x-trace-id") or uuid.uuid4().hex[:16]
        started = time.perf_counter()
        with self.obs.trace_context(trace_id):
            with self.obs.trace(f"serve/{request.path.strip('/') or 'root'}"):
                status, payload = await self._route(route, request, trace_id)
        if route == ("POST", "/query"):
            elapsed = time.perf_counter() - started
            outcome = _query_outcome(status, payload)
            self.obs.histogram(
                "serve.latency", labels={"outcome": outcome}
            ).observe(elapsed)
            if isinstance(payload, dict):
                payload.setdefault("trace_id", trace_id)
        if status == 503:
            return status, payload, {"Retry-After": RETRY_AFTER_SECONDS}
        return status, payload

    async def _route(
        self, route: Tuple[str, str], request: Request, trace_id: str
    ) -> Tuple[int, Payload]:
        if route == ("GET", "/healthz"):
            return 200, {
                "status": "draining" if self._draining else "ok",
                "num_rr_sets": self.engine.num_rr_sets,
                "queue_depth": (
                    self._queue.qsize() if self._queue is not None else 0
                ),
                "queue_limit": self.queue_limit,
                "index": self.engine.index_staleness(),
            }
        if route == ("GET", "/metrics"):
            return 200, TextResponse(
                prometheus_text(self.obs), PROMETHEUS_CONTENT_TYPE
            )
        if route == ("GET", "/stats"):
            return 200, {
                "engine": self.engine.stats(),
                "cache": self.cache.stats(),
                "queue_depth": (
                    self._queue.qsize() if self._queue is not None else 0
                ),
                "queue_limit": self.queue_limit,
                "draining": self._draining,
                "counters": self.obs.counter_values(),
            }
        if self._draining:
            return 503, {"error": "draining"}
        handler: Optional[
            Callable[[Request, str], Awaitable[Tuple[int, Dict[str, Any]]]]
        ] = {
            ("POST", "/query"): self._handle_query,
            ("POST", "/extend"): self._handle_extend,
            ("POST", "/save"): self._handle_save,
        }.get(route)
        if handler is None:
            known = {
                "/healthz",
                "/metrics",
                "/stats",
                "/query",
                "/extend",
                "/save",
            }
            if request.path in known:
                return 405, {"error": f"wrong method for {request.path}"}
            return 404, {"error": f"unknown path {request.path}"}
        try:
            return await handler(request, trace_id)
        except OverloadedError as exc:
            self.obs.count("serve.rejected")
            return 503, {"error": "overloaded", "queue_depth": exc.depth}
        except TimeoutResponse:
            return 504, {
                "error": "timeout",
                "detail": (
                    "the engine did not answer within "
                    f"{self.request_timeout}s; the job keeps running "
                    "and will fill the cache"
                ),
            }
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        except ParameterError as exc:
            return 400, {"error": str(exc)}
        except ReproError as exc:
            return 500, {"error": str(exc)}

    async def _handle_query(
        self, request: Request, trace_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        self.obs.count("serve.queries")
        body = request.json()
        precision = body.get("precision") if isinstance(body, dict) else None
        if precision is not None:
            if precision != "hop":
                raise ParameterError(
                    f"precision must be 'hop' when given, got {precision!r}"
                )
            return await self._handle_hop_query(body, trace_id)
        query = parse_query_params(body)
        k = query["k"]
        bound = query["bound"]
        target = query["target"]
        rr_budget = query["rr_budget"]
        key = make_key(
            self.engine.graph_hash,
            self.engine.model,
            k,
            bound,
            target,
            rr_budget,
        )

        cached = self.cache.get(key)
        if cached is not None:
            return 200, {**cached, "cached": True, "coalesced": False}

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.obs.count("serve.coalesced")
            response = await self._await_job(inflight)
            return 200, {**response, "cached": False, "coalesced": True}

        engine = self.engine
        future = self._submit(
            key,
            lambda: engine.answer(
                k,
                bound=bound,
                alpha_target=target,
                rr_budget=rr_budget,
                trace_id=trace_id,
            ),
        )
        response = await self._await_job(future)
        return 200, {**response, "cached": False, "coalesced": False}

    async def _handle_hop_query(
        self, body: Dict[str, Any], trace_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        """``precision="hop"``: the no-guarantee preview fast path.

        Hop answers are deterministic, so they share the LRU cache and
        in-flight coalescing with exact queries (under hop-flavoured
        keys that cannot collide with exact ones).  The engine work is
        microseconds, but it still runs on the engine thread: the
        estimator caches per-hop score tables on the engine, and the
        single-thread funnel is the engine's synchronization story.
        """
        hop = parse_hop_params(body)
        key = make_hop_key(
            self.engine.graph_hash,
            self.engine.model,
            hop["hops"],
            k=hop["k"],
            seeds=hop["seeds"],
        )
        cached = self.cache.get(key)
        if cached is not None:
            return 200, {**cached, "cached": True, "coalesced": False}
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.obs.count("serve.coalesced")
            response = await self._await_job(inflight)
            return 200, {**response, "cached": False, "coalesced": True}
        engine = self.engine
        future = self._submit(
            key,
            lambda: engine.answer_hop(
                k=hop["k"],
                seeds=hop["seeds"],
                hops=hop["hops"],
                trace_id=trace_id,
            ),
        )
        response = await self._await_job(future)
        return 200, {**response, "cached": False, "coalesced": False}

    async def _await_job(
        self, future: "asyncio.Future[Dict[str, Any]]"
    ) -> Dict[str, Any]:
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.request_timeout
            )
        except asyncio.TimeoutError:
            self.obs.count("serve.timeouts")
            raise TimeoutResponse()

    async def _handle_extend(
        self, request: Request, trace_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        params = request.json()
        try:
            count = int(params["count"])
        except KeyError:
            raise ParameterError("missing required field: count")
        except (TypeError, ValueError):
            raise ParameterError(
                f"count must be an integer, got {params['count']!r}"
            )
        engine = self.engine

        def job() -> Dict[str, Any]:
            engine.extend(count)
            return {"extended": count, "num_rr_sets": engine.num_rr_sets}

        return 200, await self._await_job(self._submit(None, job))

    async def _handle_save(
        self, request: Request, trace_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        engine = self.engine

        def job() -> Dict[str, Any]:
            manifest = engine.save_index()
            return {
                "saved": str(engine.index_dir),
                "theta1": manifest["theta1"],
                "theta2": manifest["theta2"],
            }

        return 200, await self._await_job(self._submit(None, job))


def _query_outcome(status: int, payload: Payload) -> str:
    """Classify a ``POST /query`` response for the latency histogram.

    ``cold`` means the engine had to extend the sketch; ``warm`` means
    the existing sketch already satisfied the target (no sampling).
    """
    if status == 503:
        return "rejected"
    if status == 504:
        return "timeout"
    if status != 200 or not isinstance(payload, dict):
        return "error"
    if payload.get("cached"):
        return "cached"
    if payload.get("coalesced"):
        return "coalesced"
    if payload.get("precision") == "hop":
        return "hop"
    if payload.get("sampled", 0) > 0:
        return "cold"
    return "warm"


class OverloadedError(Exception):
    """Job queue full — mapped to 503 by the dispatcher."""

    def __init__(self, depth: int) -> None:
        super().__init__(f"job queue full at depth {depth}")
        self.depth = depth


class TimeoutResponse(ReproError):
    """Requester-side wait exceeded ``request_timeout`` (504)."""
