"""Minimal HTTP/1.1-over-asyncio plumbing for the seed-query server.

The server speaks plain HTTP with JSON bodies so any client — curl, a
load balancer's health checker, the bundled :class:`ServeClient` —
can talk to it, but it deliberately avoids a web framework: requests
are small, responses are JSON, and the stdlib ``asyncio`` streams are
all that is needed.  (``http.server`` is synchronous and
thread-per-connection; a framework would be the package's only
non-numpy dependency.)

Supported subset: request line + headers + ``Content-Length`` bodies,
keep-alive by default, ``Connection: close`` honored.  No chunked
encoding, no TLS — this is an internal service endpoint.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Hard caps keeping a misbehaving client from ballooning memory.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADERS = 64
MAX_BODY = 8 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed or oversized HTTP input (connection will be closed)."""


class TextResponse:
    """Marker payload for non-JSON responses (e.g. ``/metrics``).

    Handlers normally return JSON-able dicts; returning one of these
    instead makes the server emit the text verbatim under the given
    content type.
    """

    __slots__ = ("text", "content_type")

    def __init__(
        self, text: str, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        self.text = text
        self.content_type = content_type


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, Any]:
        """Decode the body as a JSON object ({} when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ProtocolError("JSON body must be an object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from *reader*; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request-line")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, path = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY:
        raise ProtocolError(f"unacceptable Content-Length: {length}")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    return Request(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    payload: Dict[str, Any],
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize a JSON response with Content-Length framing.

    ``extra_headers`` adds verbatim response headers — the admission-
    control paths use it for ``Retry-After`` on 503 rejections.
    """
    body = json.dumps(payload).encode("utf-8")
    return _frame(status, body, "application/json", keep_alive, extra_headers)


def render_text_response(
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize a plain-text response (the ``/metrics`` exposition)."""
    return _frame(
        status, text.encode("utf-8"), content_type, keep_alive, extra_headers
    )


def _frame(
    status: int,
    body: bytes,
    content_type: str,
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    extra = "".join(
        f"{name}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"{extra}"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def read_raw_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Client side: one ``(status, headers, body_bytes)`` response."""
    line = await reader.readuntil(b"\r\n")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readuntil(b"\r\n")
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, Any]]:
    """Client side: parse one ``(status, json_payload)`` response."""
    status, _headers, body = await read_raw_response(reader)
    return status, json.loads(body.decode("utf-8")) if body else {}


class ServeClient:
    """A keep-alive JSON client for one server connection.

    Used by the tests and the latency benchmark; it is also the
    reference for talking to the server from your own code::

        client = await ServeClient.connect("127.0.0.1", 8471)
        status, reply = await client.request(
            "POST", "/query", {"k": 10, "alpha_target": 0.5}
        )
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        await self._send(method, path, payload, headers)
        return await read_response(self._reader)

    async def request_raw(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        """Like :meth:`request` but also returns the response headers.

        Admission-control clients read ``Retry-After`` from them.
        """
        await self._send(method, path, payload, headers)
        status, resp_headers, body = await read_raw_response(self._reader)
        parsed = json.loads(body.decode("utf-8")) if body else {}
        return status, resp_headers, parsed

    async def request_text(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, str]:
        """Fetch a plain-text endpoint (``GET /metrics``) as a string."""
        await self._send(method, path, None, headers)
        status, _headers, body = await read_raw_response(self._reader)
        return status, body.decode("utf-8")

    async def _send(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]],
        headers: Optional[Dict[str, str]],
    ) -> None:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: serve\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - racy close
            pass
