"""Shared HTTP/JSON server plumbing for the serve layer.

Two servers speak the same minimal HTTP dialect: the single-engine
:class:`~repro.serve.server.SeedQueryServer` and the sharded
:class:`~repro.serve.cluster.frontend.ClusterFrontend`.  Everything
protocol-shaped lives here so they cannot drift apart:

* :class:`JsonHTTPServer` — listener lifecycle (``port=0`` resolution,
  graceful listener close), the per-connection keep-alive loop, and
  response rendering for JSON payloads, :class:`TextResponse` bodies,
  and per-response extra headers (``Retry-After`` on 503s).
* :func:`parse_query_params` — the one validator for the seed-query
  request shape ``{k, bound, alpha_target | epsilon, rr_budget}``,
  used by ``POST /query`` and the cluster's ``POST /jobs`` alike.

Subclasses implement ``_dispatch(request)`` returning
``(status, payload)`` or ``(status, payload, headers)``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.opim import BOUND_VARIANTS
from repro.exceptions import ParameterError
from repro.obs import resolve_registry
from repro.sampling.hop import DEFAULT_HOPS
from repro.serve.engine import SeedQueryEngine
from repro.serve.http import (
    ProtocolError,
    Request,
    TextResponse,
    read_request,
    render_response,
    render_text_response,
)

#: A dispatch result payload: JSON dict or verbatim text.
Payload = Union[Dict[str, Any], TextResponse]

#: What ``_dispatch`` may return: with or without extra headers.
DispatchResult = Union[
    Tuple[int, Payload], Tuple[int, Payload, Optional[Dict[str, str]]]
]


def parse_query_params(
    params: Dict[str, Any], extra_fields: Tuple[str, ...] = ()
) -> Dict[str, Any]:
    """Validate one seed-query request body into canonical fields.

    Returns ``{"k", "bound", "target", "rr_budget"}`` with the target
    already normalized through
    :meth:`SeedQueryEngine.resolve_target`.  ``extra_fields`` names
    additional keys the caller accepts (the cluster adds ``graph``);
    anything else is a :class:`ParameterError`.
    """
    known = {"k", "bound", "alpha_target", "epsilon", "rr_budget"}
    known.update(extra_fields)
    unknown = set(params) - known
    if unknown:
        raise ParameterError(f"unknown query fields: {sorted(unknown)}")
    try:
        k = int(params["k"])
    except KeyError:
        raise ParameterError("missing required field: k")
    except (TypeError, ValueError):
        raise ParameterError(f"k must be an integer, got {params['k']!r}")
    bound = str(params.get("bound", "greedy"))
    if bound not in BOUND_VARIANTS:
        raise ParameterError(
            f"bound must be one of {BOUND_VARIANTS}, got {bound!r}"
        )
    alpha_target = params.get("alpha_target")
    epsilon = params.get("epsilon")
    rr_budget = params.get("rr_budget")
    target = SeedQueryEngine.resolve_target(
        None if alpha_target is None else float(alpha_target),
        None if epsilon is None else float(epsilon),
    )
    return {
        "k": k,
        "bound": bound,
        "target": target,
        "rr_budget": None if rr_budget is None else int(rr_budget),
    }


def parse_hop_params(
    params: Dict[str, Any], extra_fields: Tuple[str, ...] = ()
) -> Dict[str, Any]:
    """Validate a ``precision="hop"`` preview-query request body.

    Returns ``{"k", "seeds", "hops"}`` with exactly one of ``k`` /
    ``seeds`` set: ``k`` asks for a hop-scored seed preview, ``seeds``
    for a what-if spread evaluation of the given node list.  Used by
    the single-engine server and the cluster front end alike, so the
    no-guarantee fast path has one request shape.
    """
    known = {"precision", "k", "seeds", "hops"}
    known.update(extra_fields)
    unknown = set(params) - known
    if unknown:
        raise ParameterError(f"unknown hop-query fields: {sorted(unknown)}")
    k = params.get("k")
    seeds = params.get("seeds")
    if (k is None) == (seeds is None):
        raise ParameterError(
            "hop queries take exactly one of k (seed preview) and "
            "seeds (what-if evaluation)"
        )
    if k is not None:
        try:
            k = int(k)
        except (TypeError, ValueError):
            raise ParameterError(f"k must be an integer, got {k!r}")
    if seeds is not None:
        if not isinstance(seeds, (list, tuple)) or not seeds:
            raise ParameterError("seeds must be a non-empty list of node ids")
        try:
            seeds = [int(s) for s in seeds]
        except (TypeError, ValueError):
            raise ParameterError(f"seeds must be integers, got {seeds!r}")
    hops = params.get("hops", DEFAULT_HOPS)
    try:
        hops = int(hops)
    except (TypeError, ValueError):
        raise ParameterError(f"hops must be an integer, got {hops!r}")
    return {"k": k, "seeds": seeds, "hops": hops}


def split_path(path: str) -> Tuple[Tuple[str, ...], Dict[str, str]]:
    """Split a request path into segments and flat query parameters.

    ``/jobs/ab12/result?wait=2`` -> ``(("jobs", "ab12", "result"),
    {"wait": "2"})``.  Duplicate query keys keep the last value; no
    percent-decoding (ids and numbers only on this internal API).
    """
    path, _, query_text = path.partition("?")
    segments = tuple(part for part in path.split("/") if part)
    query: Dict[str, str] = {}
    if query_text:
        for item in query_text.split("&"):
            name, _, value = item.partition("=")
            if name:
                query[name] = value
    return segments, query


class JsonHTTPServer:
    """Listener lifecycle + connection loop shared by both servers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[object] = None,
    ) -> None:
        self.host = host
        self._requested_port = int(port)
        self.obs = resolve_registry(registry)
        self._server: Optional[asyncio.base_events.Server] = None
        self._bound_port: Optional[int] = None
        self._draining = False
        self._closed = False

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        if self._bound_port is None:
            return self._requested_port
        return self._bound_port

    async def _start_listener(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]

    async def _stop_listener(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _dispatch(self, request: Request) -> DispatchResult:
        raise NotImplementedError

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        render_response(
                            400, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                result = await self._dispatch(request)
                status, payload = result[0], result[1]
                headers = result[2] if len(result) > 2 else None
                if isinstance(payload, TextResponse):
                    writer.write(
                        render_text_response(
                            status,
                            payload.text,
                            payload.content_type,
                            request.keep_alive,
                            headers,
                        )
                    )
                else:
                    writer.write(
                        render_response(
                            status, payload, request.keep_alive, headers
                        )
                    )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, OSError):  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
