"""Shared-sketch seed-query engine.

:class:`SeedQueryEngine` is the serving layer's model of the paper's
online contract: keep **one** RR-sketch stream (an R1/R2 collection
pair fed by one deterministic sampler) per ``(graph, model, seed)``,
and answer every ``(k, bound, target)`` query by *extending* that
stream just far enough — never by restarting it.

Why this is sound: RR sets are query-independent (Section 3.1), so
the sketch is shared across every ``k``.  What is per-``k`` is the
greedy pass and the failure-budget bookkeeping, so the engine keeps
one :class:`~repro.core.session.OPIMSession` per ``k``, all adopting
the same two collections (via
:meth:`~repro.core.opim.OnlineOPIM.adopt_collections`) and the same
sampler.  Each per-``k`` session applies the simultaneous-guarantee
schedule (query ``i`` gets budget ``delta / 2^i``), so everything the
server ever reported for a given ``k`` holds jointly w.p.
``>= 1 - delta``.

The engine is deliberately single-threaded: the asyncio server funnels
all engine work through one executor thread, which both serializes
access and keeps the event loop free for I/O.
"""

from __future__ import annotations

import math
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.session import OPIMSession, SessionResult
from repro.core.theta import theta_sadeh
from repro.exceptions import ParameterError, StateError
from repro.graph.digraph import DiGraph
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.generator import RRSampler
from repro.sampling.hop import DEFAULT_HOPS, HopEstimator
from repro.sampling.kernel import AUTO_KERNEL, KernelRRSampler, resolve_kernel
from repro.sampling.service import SamplingPool
from repro.serve.index import (
    graph_fingerprint,
    load_index,
    save_index,
    save_manifest,
)

PathLike = Union[str, Path]

#: Server-side ceiling on the shared stream (overridable per engine).
DEFAULT_MAX_RR_SETS = 500_000

#: RR sets added before the first retry of an unsatisfied query.
DEFAULT_STEP = 2_000


class SeedQueryEngine:
    """Long-lived seed-query engine over one shared RR sketch.

    Parameters
    ----------
    graph:
        Weighted :class:`DiGraph`, loaded once for the engine's life.
    model:
        ``"IC"`` or ``"LT"``.
    seed:
        Root seed of the shared deterministic stream.  Two engines
        with the same graph, model, and seed answer every query
        identically — including across save/load of the index.
    workers:
        ``> 1`` streams through a warm
        :class:`~repro.sampling.service.SamplingPool`; otherwise a
        serial :class:`~repro.sampling.generator.RRSampler` is used.
    kernel:
        Frontier-batched sampling kernel (see
        :mod:`repro.sampling.kernel`).  The default ``"auto"``
        consults ``$REPRO_KERNEL``; ``None`` pins the legacy samplers.
        With a kernel selected, ``workers=1`` runs a serial
        :class:`~repro.sampling.kernel.KernelRRSampler` and pools pass
        the kernel into every chunk.  The resolved choice is part of
        the stream's identity: it is recorded in saved indexes and
        must match on warm start.
    delta:
        Total failure budget *per k* (default ``1/n``); each per-``k``
        session schedules its queries under ``delta / 2^i``.
    index_dir:
        Optional sketch-index directory.  When it contains a manifest
        the engine warm-starts from it; :meth:`save_index` writes back
        to it.
    step, max_rr_sets:
        Extension step for unsatisfied queries and the hard ceiling on
        the shared stream.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` — the engine
        maintains ``serve.extend_rr_sets`` / ``serve.extend_seconds``
        and the underlying sampler metrics.
    on_answer:
        Optional callback invoked with every completed :meth:`answer`
        response dict (after metrics, before return).  This is the
        trial hook the statistical acceptance harness
        (:mod:`repro.stats_harness`) uses to capture the exact
        guarantees the serving path emitted, without patching the
        engine; exceptions from the callback propagate to the caller.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str = "IC",
        seed: int = 2018,
        workers: Optional[int] = None,
        kernel: Optional[str] = AUTO_KERNEL,
        delta: Optional[float] = None,
        index_dir: Optional[PathLike] = None,
        step: int = DEFAULT_STEP,
        max_rr_sets: int = DEFAULT_MAX_RR_SETS,
        registry: Optional[object] = None,
        on_answer: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if step < 2:
            raise ParameterError(f"step must be >= 2, got {step}")
        if max_rr_sets < 2:
            raise ParameterError(f"max_rr_sets must be >= 2, got {max_rr_sets}")
        self.graph = graph
        self.model = model.upper()
        self.seed = int(seed)
        self.delta = float(delta) if delta is not None else 1.0 / graph.n
        self.step = int(step)
        self.max_rr_sets = int(max_rr_sets)
        self.obs = resolve_registry(registry)
        self.on_answer = on_answer
        self.graph_hash = graph_fingerprint(graph)
        self.workers = int(workers) if workers is not None else 1
        self.kernel = resolve_kernel(kernel)
        if self.workers > 1:
            self.sampler: Any = SamplingPool(
                graph, self.model, workers=self.workers,
                seed=self.seed, kernel=self.kernel, registry=self.obs,
            )
        elif self.kernel is not None:
            self.sampler = KernelRRSampler(
                graph, self.model, seed=self.seed, kernel=self.kernel,
                registry=self.obs,
            )
        else:
            self.sampler = RRSampler(
                graph, self.model, seed=self.seed, registry=self.obs
            )
        self._hop: Optional[HopEstimator] = None
        self.r1 = RRCollection(graph.n)
        self.r2 = RRCollection(graph.n)
        self._sessions: Dict[int, OPIMSession] = {}
        # Per-k schedule positions loaded from an index but not yet
        # claimed by a live session (see _session / load_index).
        self._restored_sessions: Dict[int, Dict[str, Any]] = {}
        self._closed = False
        # Index-staleness tracking for /healthz: RR sets at the last
        # save/load and when that sync happened (monotonic clock).
        self._index_synced_rr_sets: Optional[int] = None
        self._index_synced_at: Optional[float] = None
        self._index_synced_sessions: Optional[Dict[str, Any]] = None
        self.index_dir = Path(index_dir) if index_dir is not None else None
        self.loaded_from_index = False
        if (
            self.index_dir is not None
            and (self.index_dir / "manifest.json").exists()
        ):
            self.load_index(self.index_dir)
            self.loaded_from_index = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the sampling pool (no-op for the serial sampler)."""
        if self._closed:
            return
        self._closed = True
        if isinstance(self.sampler, SamplingPool):
            self.sampler.close()

    def __enter__(self) -> "SeedQueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StateError("SeedQueryEngine is closed")

    # ------------------------------------------------------------------
    # The shared stream
    # ------------------------------------------------------------------
    @property
    def num_rr_sets(self) -> int:
        return len(self.r1) + len(self.r2)

    def _session(self, k: int) -> OPIMSession:
        session = self._sessions.get(k)
        if session is None:
            session = OPIMSession(
                self.graph,
                self.model,
                k=k,
                delta=self.delta,
                sampler=self.sampler,
            )
            session.online.adopt_collections(self.r1, self.r2)
            restored = self._restored_sessions.pop(k, None)
            if restored is not None:
                session.restore_schedule(
                    int(restored.get("queries_made", 0)),
                    float(restored.get("opt_lower", 0.0)),
                )
            self._sessions[k] = session
        return session

    def extend(self, count: int) -> None:
        """Proactively grow the shared sketch by *count* RR sets."""
        self._check_open()
        if count < 0 or count % 2:
            raise ParameterError(
                f"count must be non-negative and even, got {count}"
            )
        started = time.perf_counter()
        self.sampler.fill(self.r1, count // 2)
        self.sampler.fill(self.r2, count // 2)
        self.obs.count("serve.extend_rr_sets", count)
        self.obs.observe("serve.extend_seconds", time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @staticmethod
    def resolve_target(
        alpha_target: Optional[float], epsilon: Optional[float]
    ) -> float:
        """Normalize a request's target to an alpha value.

        Exactly one of ``alpha_target`` / ``epsilon`` must be given;
        ``epsilon`` requests the conventional ``1 - 1/e - epsilon``
        level (the OPIM-C stopping threshold, Section 6).
        """
        if (alpha_target is None) == (epsilon is None):
            raise ParameterError(
                "provide exactly one of alpha_target and epsilon"
            )
        if epsilon is not None:
            if not 0.0 < epsilon < 1.0:
                raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
            alpha_target = 1.0 - 1.0 / math.e - epsilon
        assert alpha_target is not None
        if not 0.0 < alpha_target <= 1.0:
            raise ParameterError(
                f"alpha_target must be in (0, 1], got {alpha_target}"
            )
        return float(alpha_target)

    def _sadeh_cap(
        self, session: OPIMSession, k: int, target: float
    ) -> Optional[int]:
        """Tight sample cap for a repeat query on a warm sketch.

        From query two onward the session holds a certified lower
        bound on ``OPT`` (:attr:`OPIMSession.certified_opt_lower`),
        which raises the denominator floor of
        :func:`~repro.core.theta.theta_sadeh` — so the engine can cap
        how far :meth:`answer` is allowed to extend the stream without
        weakening the guarantee.  Returns the cap in *total* RR sets
        (both halves), or ``None`` when no certified bound exists yet
        or the target does not correspond to a positive epsilon.
        """
        if session.queries_made == 0:
            return None
        opt_lower = session.certified_opt_lower
        if opt_lower <= 0.0:
            return None
        eps_equiv = 1.0 - 1.0 / math.e - target
        if eps_equiv <= 0.0:
            return None
        theta = theta_sadeh(
            self.graph.n,
            k,
            eps_equiv,
            session.next_query_delta(),
            opt_lower=opt_lower,
        )
        # theta bounds each half of the stream; the budget counts both.
        return 2 * int(math.ceil(theta))

    def answer(
        self,
        k: int,
        bound: str = "greedy",
        alpha_target: Optional[float] = None,
        epsilon: Optional[float] = None,
        rr_budget: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Answer one seed query, extending the shared sketch if needed.

        The existing stream is queried first; only when its guarantee
        falls short of the target does the engine sample more (in
        geometrically growing steps, never past ``rr_budget`` /
        ``max_rr_sets``).  Returns a JSON-ready response dict.

        ``trace_id`` carries the server's per-request id across the
        executor-thread hop: trace contexts are thread-local, so the
        engine re-enters the context here, which tags its spans — and,
        through :class:`SamplingPool` chunk tasks, the worker-side
        chunk spans — with the originating request.
        """
        self._check_open()
        target = self.resolve_target(alpha_target, epsilon)
        cap = self.max_rr_sets if rr_budget is None else min(
            int(rr_budget), self.max_rr_sets
        )
        session = self._session(k)
        theta_cap = self._sadeh_cap(session, k, target)
        if theta_cap is not None:
            cap = min(cap, theta_cap)
        sampled_before = self.num_rr_sets
        fill_before = float(getattr(self.sampler, "fill_seconds", 0.0))
        started = time.perf_counter()
        with self.obs.trace_context(trace_id), self.obs.trace("serve/answer"):
            result: SessionResult = session.run_until(
                alpha_target=target,
                rr_budget=cap,
                step=self.step,
                bound=bound,
                query_first=True,
            )
        elapsed = time.perf_counter() - started
        sampled = self.num_rr_sets - sampled_before
        # Split request time into sampling (sketch extension inside the
        # sampler's fill) and selection (greedy + bound bookkeeping).
        sample_seconds = (
            float(getattr(self.sampler, "fill_seconds", 0.0)) - fill_before
        )
        select_seconds = max(0.0, elapsed - sample_seconds)
        self.obs.histogram("engine.sample_seconds").observe(sample_seconds)
        self.obs.histogram("engine.select_seconds").observe(select_seconds)
        if sampled:
            self.obs.count("serve.extend_rr_sets", sampled)
            self.obs.observe("serve.extend_seconds", elapsed)
        snapshot = result.snapshot
        response = {
            "k": k,
            "bound": snapshot.variant,
            "seeds": [int(s) for s in snapshot.seeds],
            "alpha": float(snapshot.alpha),
            "alpha_target": target,
            "satisfied": bool(snapshot.alpha >= target),
            "num_rr_sets": int(snapshot.num_rr_sets),
            "theta1": int(snapshot.theta1),
            "theta2": int(snapshot.theta2),
            "sigma_low": float(snapshot.sigma_low),
            "sigma_up": float(snapshot.sigma_up),
            "sampled": int(sampled),
            "theta_cap": theta_cap,
            "stop": result.stop.kind,
            "queries_made": session.queries_made,
            "engine_seconds": elapsed,
            "sample_seconds": sample_seconds,
            "select_seconds": select_seconds,
        }
        if self.on_answer is not None:
            self.on_answer(response)
        return response

    def answer_hop(
        self,
        k: Optional[int] = None,
        seeds: Optional[List[int]] = None,
        hops: int = DEFAULT_HOPS,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Answer a ``precision="hop"`` preview query — no guarantee.

        The deterministic hop-bounded approximation of
        :class:`~repro.sampling.hop.HopEstimator` (arXiv:1705.10442)
        answers in microseconds without touching the RR stream: pass
        ``k`` for a cheap seed-set preview, or ``seeds`` for a what-if
        spread evaluation of a user-supplied set.  Exactly one of the
        two must be given.

        The response carries ``"guarantee": False`` and
        ``"no_guarantee": True`` — hop answers never enter the
        ``delta / 2^i`` schedule and must not be read as
        ``(1-1/e-eps, 1-delta)`` certified.
        """
        self._check_open()
        if (k is None) == (seeds is None):
            raise ParameterError("provide exactly one of k and seeds")
        started = time.perf_counter()
        with self.obs.trace_context(trace_id), self.obs.trace("serve/hop"):
            if self._hop is None:
                self._hop = HopEstimator(self.graph)
            if k is not None:
                chosen, sigma = self._hop.select(int(k), hops=hops)
            else:
                assert seeds is not None
                chosen = [int(s) for s in seeds]
                sigma = self._hop.spread(chosen, hops=hops)
        elapsed = time.perf_counter() - started
        self.obs.count("serve.hop_queries")
        self.obs.observe("serve.hop_seconds", elapsed)
        response = {
            "precision": "hop",
            "guarantee": False,
            "no_guarantee": True,
            "hops": int(hops),
            "k": len(chosen),
            "seeds": chosen,
            "sigma_hop": float(sigma),
            "sigma_hop_fraction": float(sigma) / self.graph.n,
            "what_if": k is None,
            "sampled": 0,
            "engine_seconds": elapsed,
        }
        if self.on_answer is not None:
            self.on_answer(response)
        return response

    def guarantee_claims(self) -> Dict[int, List[Dict[str, Any]]]:
        """All guarantees the engine has emitted, grouped by ``k``.

        Each ``k`` maps to the per-``k`` session's
        :meth:`~repro.core.session.OPIMSession.guarantee_claims` — the
        claims inside one group hold jointly w.p. >= ``1 - delta``
        under the ``delta / 2^i`` schedule, while distinct ``k`` groups
        carry independent budgets.  The statistical acceptance harness
        checks every group against a brute-force ``OPT`` oracle.
        """
        return {
            k: session.guarantee_claims()
            for k, session in sorted(self._sessions.items())
        }

    def stats(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the engine's state."""
        return {
            "graph": self.graph.name,
            "graph_hash": self.graph_hash,
            "n": self.graph.n,
            "m": self.graph.m,
            "model": self.model,
            "seed": self.seed,
            "workers": self.workers,
            "kernel": self.kernel,
            "delta": self.delta,
            "num_rr_sets": self.num_rr_sets,
            "theta1": len(self.r1),
            "theta2": len(self.r2),
            "max_rr_sets": self.max_rr_sets,
            "sessions": {
                str(k): s.queries_made for k, s in sorted(self._sessions.items())
            },
            "delta_audit": {
                str(k): s.ledger.audit() for k, s in sorted(self._sessions.items())
            },
            "sets_generated": int(self.sampler.sets_generated),
            "edges_examined": int(self.sampler.edges_examined),
            "loaded_from_index": self.loaded_from_index,
        }

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the shared sketch.

        Counts both collection halves: the flat RR-node arrays (int32),
        the inverted node→RR index (int64), and the offset arrays.
        This is the accounting the cluster tier budgets against — an
        estimate of the dominant term, not an ``getsizeof`` audit.
        """
        total = 0
        for coll in (self.r1, self.r2):
            # rr_nodes int32 + node_rrs int64 per sampled node entry,
            # plus the two offset arrays (int64).
            total += coll.total_size * (4 + 8)
            total += (len(coll) + 1) * 8 + (coll.n + 1) * 8
        return int(total)

    def _session_schedule_state(self) -> Dict[str, Any]:
        """Per-``k`` schedule positions, as stored in the manifest.

        Covers live sessions that have made queries *and* positions
        loaded from an index whose session was never re-created — so a
        checkpoint written right after a warm start does not lose the
        predecessor's schedule.
        """
        state: Dict[str, Any] = {
            str(k): dict(v) for k, v in self._restored_sessions.items()
        }
        for k, session in self._sessions.items():
            if session.queries_made:
                state[str(k)] = {
                    "queries_made": session.queries_made,
                    "opt_lower": session.certified_opt_lower,
                }
        return state

    def checkpoint(self) -> Optional[Dict[str, Any]]:
        """Persist the sketch iff it has drifted past the saved index.

        A no-op (returning ``None``) when the engine has no
        ``index_dir`` or when neither the stream nor any per-``k``
        schedule position moved since the last save/load — so eviction
        and graceful drain can call it unconditionally without
        rewriting an unchanged index.  A satisfied repeat query that
        sampled nothing still advanced its session's ``delta / 2^i``
        schedule, which is state the next warm start must see — but
        since the RR arrays on disk are untouched, that case rewrites
        only the manifest, keeping warm-path checkpoints cheap.
        """
        if self.index_dir is None:
            return None
        staleness = self.index_staleness()
        if staleness["synced"] and staleness["stale_rr_sets"] == 0:
            schedule = self._session_schedule_state()
            if schedule == self._index_synced_sessions:
                return None
            manifest = save_manifest(
                self.index_dir,
                graph=self.graph,
                model=self.model,
                theta1=len(self.r1),
                theta2=len(self.r2),
                sampler_state=self._sampler_state(),
                seed=self.seed,
                extra={"sessions": schedule} if schedule else None,
            )
            self.obs.count("serve.manifest_saves")
            self._mark_index_synced()
            return manifest
        return self.save_index()

    def index_staleness(self) -> Dict[str, Any]:
        """How far the in-memory sketch has drifted from the saved index.

        ``synced`` is False until the first :meth:`save_index` /
        :meth:`load_index`; after that, ``stale_rr_sets`` counts the RR
        sets appended since the sync and ``age_seconds`` its wall-clock
        age.  Surfaced by the server's ``/healthz``.
        """
        if self._index_synced_rr_sets is None or self._index_synced_at is None:
            return {"synced": False, "stale_rr_sets": None, "age_seconds": None}
        return {
            "synced": True,
            "stale_rr_sets": self.num_rr_sets - self._index_synced_rr_sets,
            "age_seconds": time.monotonic() - self._index_synced_at,
        }

    def _mark_index_synced(self) -> None:
        self._index_synced_rr_sets = self.num_rr_sets
        self._index_synced_at = time.monotonic()
        self._index_synced_sessions = self._session_schedule_state()

    # ------------------------------------------------------------------
    # Index persistence
    # ------------------------------------------------------------------
    def _sampler_state(self) -> Dict[str, Any]:
        if isinstance(self.sampler, (SamplingPool, KernelRRSampler)):
            return self.sampler.state()
        return {
            "kind": "serial",
            "rng_state": self.sampler.rng.bit_generator.state,
            "sets_generated": int(self.sampler.sets_generated),
            "edges_examined": int(self.sampler.edges_examined),
            "nodes_touched": int(self.sampler.nodes_touched),
        }

    def _restore_sampler(self, state: Dict[str, Any]) -> None:
        kind = state.get("kind")
        if isinstance(self.sampler, SamplingPool):
            expected = "pool"
        elif isinstance(self.sampler, KernelRRSampler):
            expected = "serial-kernel"
        else:
            expected = "serial"
        if kind != expected:
            raise ParameterError(
                f"index was sampled with a {kind!r} sampler but the engine "
                f"runs {expected!r}; start the engine with the matching "
                "workers/kernel configuration to keep the stream "
                "deterministic"
            )
        if isinstance(self.sampler, (SamplingPool, KernelRRSampler)):
            self.sampler.restore_state(state)
        else:
            self.sampler.rng.bit_generator.state = state["rng_state"]
            self.sampler.sets_generated = int(state["sets_generated"])
            self.sampler.edges_examined = int(state["edges_examined"])
            self.sampler.nodes_touched = int(state["nodes_touched"])

    def save_index(self, directory: Optional[PathLike] = None) -> Dict[str, Any]:
        """Persist the shared sketch (defaults to ``index_dir``)."""
        self._check_open()
        target = Path(directory) if directory is not None else self.index_dir
        if target is None:
            raise ParameterError(
                "no directory given and the engine has no index_dir"
            )
        sessions = self._session_schedule_state()
        manifest = save_index(
            target,
            graph=self.graph,
            model=self.model,
            r1=self.r1,
            r2=self.r2,
            sampler_state=self._sampler_state(),
            seed=self.seed,
            extra={"sessions": sessions} if sessions else None,
        )
        self.obs.count("serve.index_saves")
        self._mark_index_synced()
        return manifest

    def load_index(self, directory: PathLike, mmap: bool = True) -> None:
        """Warm-start from an on-disk sketch written by :meth:`save_index`.

        Replaces the shared collections with the loaded (mmapped)
        halves, restores the sampler's stream position *and* the saved
        per-``k`` ``delta / 2^i`` schedule positions (so a repeat
        query after the restart runs with the same failure-budget
        slice and Sadeh sample cap as it would have uninterrupted),
        and re-adopts the collections into any per-``k`` session
        already created.
        """
        self._check_open()
        loaded = load_index(directory, self.graph, mmap=mmap)
        manifest = loaded.manifest
        if manifest["model"] != self.model:
            raise ParameterError(
                f"index was sampled under {manifest['model']}, engine "
                f"runs {self.model}"
            )
        if int(manifest["seed"]) != self.seed:
            raise ParameterError(
                f"index stream seed {manifest['seed']} does not match "
                f"engine seed {self.seed}"
            )
        self._restore_sampler(dict(manifest["sampler_state"]))
        self.r1 = loaded.r1
        self.r2 = loaded.r2
        # Resume the saved per-k delta/2^i schedule positions.  A k
        # with a live session keeps that session's (newer) state; the
        # rest are applied lazily when _session(k) first creates one.
        saved_sessions = manifest.get("extra", {}).get("sessions", {})
        self._restored_sessions = {
            int(k): dict(v)
            for k, v in saved_sessions.items()
            if int(k) not in self._sessions
        }
        for session in self._sessions.values():
            session.online.adopt_collections(self.r1, self.r2)
        self.obs.count("serve.index_loads")
        self.obs.set_gauge("serve.index_rr_sets", self.num_rr_sets)
        self._mark_index_synced()
