"""Seed-query serving layer: a long-lived engine over one RR sketch.

``repro.serve`` turns the package's one-shot OPIM runners into an
online service: load the graph once, keep the sampling machinery warm,
persist the RR sketch across restarts, and answer repeated
``(k, bound, target)`` queries by *extending* the shared sketch
instead of resampling from zero.  See ``docs/serving.md`` for the
architecture and the determinism contract.

Layers (each usable on its own):

* :mod:`repro.serve.index` — on-disk RR-sketch index (mmapped halves
  plus a provenance manifest);
* :mod:`repro.serve.engine` — :class:`SeedQueryEngine`, the shared
  sketch plus per-``k`` OPIM sessions;
* :mod:`repro.serve.cache` — LRU result cache keyed by full query
  identity;
* :mod:`repro.serve.server` / :mod:`repro.serve.http` — the asyncio
  HTTP front end and its minimal client (shared plumbing in
  :mod:`repro.serve.base`);
* :mod:`repro.serve.cluster` — the sharded multi-tenant tier: an API
  front end routing jobs by graph fingerprint to warm worker
  processes, with per-graph memory budgets and crash recovery.
"""

from repro.serve.cache import LRUCache, QueryKey, make_key
from repro.serve.cluster import ClusterFrontend, GraphRegistry, GraphSpec
from repro.serve.engine import SeedQueryEngine
from repro.serve.http import ProtocolError, ServeClient
from repro.serve.index import (
    INDEX_FORMAT_VERSION,
    LoadedIndex,
    graph_fingerprint,
    load_index,
    save_index,
)
from repro.serve.server import SeedQueryServer

__all__ = [
    "ClusterFrontend",
    "GraphRegistry",
    "GraphSpec",
    "INDEX_FORMAT_VERSION",
    "LRUCache",
    "LoadedIndex",
    "ProtocolError",
    "QueryKey",
    "SeedQueryEngine",
    "SeedQueryServer",
    "ServeClient",
    "graph_fingerprint",
    "load_index",
    "make_key",
    "save_index",
]
