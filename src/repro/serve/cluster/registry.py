"""Tenant-scoped graph registry and fingerprint-hash shard routing.

The cluster keeps many graphs resident at once; this module is the
front end's book of record for them.  Each registered graph gets:

* a **graph id** ``tenant/name`` (names are unique per tenant);
* a **fingerprint** — the sha256 of the CSR arrays
  (:func:`~repro.serve.index.graph_fingerprint`), the same hash that
  keys the persistent sketch index;
* a **shard** — ``int(fingerprint, 16) % workers``.  Routing by
  content hash means a graph always lands on the same worker for a
  fixed worker count, so its warm engine, its sampling pool, and its
  on-disk index never migrate mid-flight;
* a **memory budget** — the admission-control ceiling on its resident
  sketch (``None`` = unlimited).

The registry itself is plain bookkeeping on the event-loop thread; the
specs it hands out are shipped to worker processes over their task
queues (graphs pickle as CSR arrays), where the warm engines live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.serve.index import graph_fingerprint

#: Default per-graph sketch budget: 64 MiB of RR-set arrays.
DEFAULT_MEM_BUDGET = 64 * 1024 * 1024


def shard_for(fingerprint: str, shards: int) -> int:
    """Deterministic shard for a graph fingerprint (content-hash routing)."""
    if shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards}")
    return int(fingerprint[:16], 16) % shards


@dataclass
class GraphSpec:
    """Everything a worker needs to host one graph's warm engine."""

    name: str
    tenant: str
    graph: DiGraph
    model: str = "IC"
    seed: int = 2018
    sampler_workers: int = 1
    step: int = 2000
    max_rr_sets: int = 500_000
    delta: Optional[float] = None
    mem_budget: Optional[int] = DEFAULT_MEM_BUDGET
    index_dir: Optional[str] = None
    fingerprint: str = ""
    shard: int = 0

    @property
    def graph_id(self) -> str:
        return f"{self.tenant}/{self.name}"

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary (no graph payload)."""
        return {
            "name": self.name,
            "tenant": self.tenant,
            "graph_id": self.graph_id,
            "n": self.graph.n,
            "m": self.graph.m,
            "model": self.model,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "shard": self.shard,
            "mem_budget": self.mem_budget,
            "max_rr_sets": self.max_rr_sets,
        }


@dataclass
class GraphStatus:
    """Front-end view of one graph's worker-side state.

    Updated from worker messages; ``memory_bytes`` lags reality by at
    most one job, which is exactly the granularity admission control
    can act on anyway (the worker is serial per graph).
    """

    spec: GraphSpec
    resident: bool = False
    memory_bytes: int = 0
    num_rr_sets: int = 0
    jobs_done: int = 0
    evictions: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def over_budget(self) -> bool:
        budget = self.spec.mem_budget
        return budget is not None and self.memory_bytes >= budget


class GraphRegistry:
    """All graphs the cluster front end knows, keyed by graph id."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        self._graphs: Dict[str, GraphStatus] = {}

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, graph_id: str) -> bool:
        return graph_id in self._graphs

    def register(self, spec: GraphSpec) -> GraphStatus:
        """Fingerprint, shard, and record one graph; id must be new."""
        if not spec.name or "/" in spec.name:
            raise ParameterError(
                f"graph name must be non-empty and slash-free, "
                f"got {spec.name!r}"
            )
        if spec.graph_id in self._graphs:
            raise ParameterError(
                f"graph {spec.graph_id!r} is already registered"
            )
        if not spec.graph.weighted:
            raise ParameterError(
                f"graph {spec.name!r} has no edge probabilities; apply a "
                "weighting scheme before registering"
            )
        spec.fingerprint = graph_fingerprint(spec.graph)
        spec.shard = shard_for(spec.fingerprint, self.shards)
        status = GraphStatus(spec=spec)
        self._graphs[spec.graph_id] = status
        return status

    def get(self, graph_id: str) -> GraphStatus:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise ParameterError(f"unknown graph {graph_id!r}") from None

    def lookup(self, tenant: str, name: str) -> Optional[GraphStatus]:
        return self._graphs.get(f"{tenant}/{name}")

    def by_tenant(self, tenant: str) -> List[GraphStatus]:
        return [
            status
            for status in self._graphs.values()
            if status.spec.tenant == tenant
        ]

    def by_shard(self, shard: int) -> List[GraphStatus]:
        return [
            status
            for status in self._graphs.values()
            if status.spec.shard == shard
        ]

    def all(self) -> List[GraphStatus]:
        return list(self._graphs.values())

    def total_memory(self) -> int:
        return sum(status.memory_bytes for status in self._graphs.values())
