"""The sharded multi-tenant API front end.

:class:`ClusterFrontend` is the cluster's single HTTP surface.  It owns
no engines — those live warm inside the worker processes — only the
graph registry, the job table, and the admission decisions:

* ``POST /graphs`` / ``GET /graphs`` — tenant-scoped registration
  (``X-Tenant`` header, default ``"default"``); each graph is routed
  to a shard by its content fingerprint and stays there.
* ``POST /jobs`` → 202 + an unguessable job id; ``GET /jobs/{id}``
  for status; ``GET /jobs/{id}/result`` (optionally ``?wait=seconds``)
  for the answer.  Job reads are tenant-scoped like everything else:
  another tenant's job id is a 404.  Terminal jobs stay readable for
  the last ``completed_jobs_limit`` finishes, then age out.  Jobs for
  different shards run concurrently; jobs for one graph run serially
  on its worker, which is the whole synchronization story.
* **Admission control**: a request is refused with 503 +
  ``Retry-After`` when the front end is draining, when the global job
  table already holds ``queue_limit`` unfinished jobs, or when the
  target graph's resident sketch has reached its memory budget (the
  worker enforces the same check authoritatively).
* **Crash recovery**: a result-pump task polls the worker supervisor;
  when a worker dies its unfinished jobs are re-dispatched (with any
  fault injection stripped) onto the respawned worker, which
  warm-restarts every engine from its persistent index — so the
  requeued answer is bitwise-identical to an uninterrupted run.

Worker-side trace events ship back with each completed job and are
replayed into this process's registry, so one ``trace_id`` stitches
the HTTP span, the dispatch, and the worker's engine spans into a
single tree.
"""

from __future__ import annotations

import asyncio
import signal
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.exceptions import ParameterError, ReproError
from repro.graph.digraph import DiGraph
from repro.obs import prometheus_text
from repro.obs.export import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.serve.base import (
    DispatchResult,
    JsonHTTPServer,
    Payload,
    parse_hop_params,
    parse_query_params,
    split_path,
)
from repro.serve.cluster.registry import (
    DEFAULT_MEM_BUDGET,
    GraphRegistry,
    GraphSpec,
    GraphStatus,
)
from repro.serve.cluster.worker import ClusterError, WorkerSupervisor
from repro.serve.http import ProtocolError, Request, TextResponse

DEFAULT_PORT = 8473

#: Backoff hint for queue-full / draining rejections.
QUEUE_RETRY_AFTER = "1"

#: Terminal job states (the ones that set the job's event).
TERMINAL = ("done", "failed", "rejected")


@dataclass
class ClusterJob:
    """One submitted seed query, tracked until terminal."""

    job_id: str
    graph_id: str
    shard: int
    params: Dict[str, Any]
    trace_id: str
    tenant: str
    inject_crash: bool = False
    status: str = "queued"  # queued | done | failed | rejected
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    retry_after: str = QUEUE_RETRY_AFTER
    requeues: int = 0
    submitted: float = field(default_factory=time.monotonic)
    event: asyncio.Event = field(default_factory=asyncio.Event)

    def finish(self, status: str) -> None:
        self.status = status
        self.event.set()

    def describe(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "graph": self.graph_id,
            "shard": self.shard,
            "status": self.status,
            "requeues": self.requeues,
            "trace_id": self.trace_id,
        }

    def dispatch_payload(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "graph": self.graph_id,
            "params": dict(self.params),
            "trace_id": self.trace_id,
            "inject_crash": self.inject_crash,
        }


class ClusterFrontend(JsonHTTPServer):
    """HTTP front end over a sharded pool of warm worker processes.

    Parameters
    ----------
    workers:
        Worker process count == shard count.  Graphs are routed by
        fingerprint hash, so changing this between runs may re-home
        graphs (their persistent indexes still follow them).
    worker_mem_budget:
        Total resident-sketch budget per worker; cold engines are
        LRU-evicted (checkpoint, then drop) to stay under it.
        ``None`` disables worker-level eviction.
    queue_limit:
        Global ceiling on unfinished jobs — the backpressure knob.
    completed_jobs_limit:
        How many *terminal* jobs (and their result payloads) to keep
        readable after they finish; the oldest are evicted beyond it,
        so the job table is bounded by
        ``queue_limit + completed_jobs_limit`` no matter how long the
        front end runs.  An evicted job id reads as 404.
    state_dir:
        Root of per-graph persistent index directories
        (``state_dir/tenant/name``).  ``None`` = no persistence, which
        also disables crash recovery's warm restart.
    fault_injection:
        Allow ``inject_crash`` on submitted jobs (tests/bench only).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        worker_mem_budget: Optional[int] = None,
        queue_limit: int = 64,
        completed_jobs_limit: int = 256,
        drain_timeout: float = 30.0,
        state_dir: Optional[Any] = None,
        registry: Optional[object] = None,
        fault_injection: bool = False,
        max_restarts: int = 8,
    ) -> None:
        if queue_limit < 1:
            raise ParameterError(f"queue_limit must be >= 1, got {queue_limit}")
        if completed_jobs_limit < 1:
            raise ParameterError(
                f"completed_jobs_limit must be >= 1, got {completed_jobs_limit}"
            )
        if drain_timeout < 0:
            raise ParameterError(
                f"drain_timeout must be non-negative, got {drain_timeout}"
            )
        super().__init__(host=host, port=port, registry=registry)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.completed_jobs_limit = int(completed_jobs_limit)
        self.drain_timeout = float(drain_timeout)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.fault_injection = bool(fault_injection)
        self.registry = GraphRegistry(shards=self.workers)
        self._supervisor = WorkerSupervisor(
            workers=self.workers,
            mem_budget=worker_mem_budget,
            max_restarts=max_restarts,
            registry=self.obs,
        )
        self._jobs: Dict[str, ClusterJob] = {}
        self._finished: Deque[str] = deque()
        self._pump: Optional[asyncio.Task] = None
        self._pump_stop = False
        self._evict_waiters: Dict[
            str, List[Tuple[asyncio.Event, Dict[str, Any]]]
        ] = {}
        self._cluster_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the worker result pump."""
        self._pump_stop = False
        self._pump = asyncio.create_task(
            self._pump_loop(), name="cluster-result-pump"
        )
        await self._start_listener()

    async def close(self, drain: bool = True) -> None:
        """Graceful shutdown.

        Stops accepting, lets in-flight jobs finish (bounded by
        ``drain_timeout``), stops the pump, then drains the workers —
        each checkpoints every resident sketch before exiting.
        """
        if self._closed:
            return
        self._draining = True
        await self._stop_listener()
        if drain:
            deadline = time.monotonic() + self.drain_timeout
            while self._pending_jobs() and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
        # Stop the pump *before* draining: both consume the shared
        # result queue, and a cancelled executor poll would eat the
        # workers' "drained" acknowledgements.
        self._pump_stop = True
        if self._pump is not None:
            await self._pump
            self._pump = None
        self._closed = True
        supervisor = self._supervisor
        loop = asyncio.get_running_loop()
        if drain and self._cluster_error is None:
            await loop.run_in_executor(
                None, lambda: supervisor.drain(self.drain_timeout)
            )
        await loop.run_in_executor(None, supervisor.close)

    async def serve_forever(self) -> None:
        """Run until SIGINT/SIGTERM, then drain and shut down."""
        if self._server is None:
            await self.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        await self.close(drain=True)

    # ------------------------------------------------------------------
    # Graph registration
    # ------------------------------------------------------------------
    def register_graph(
        self,
        graph: DiGraph,
        name: str,
        tenant: str = "default",
        model: str = "IC",
        seed: int = 2018,
        sampler_workers: int = 1,
        step: int = 2000,
        max_rr_sets: int = 500_000,
        delta: Optional[float] = None,
        mem_budget: Optional[int] = DEFAULT_MEM_BUDGET,
        index_dir: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Register a graph and ship its spec to its shard's worker.

        The programmatic twin of ``POST /graphs`` (tests, benchmarks,
        and the stats harness preload graphs this way).  Returns the
        JSON description including the assigned shard.
        """
        if not tenant or "/" in tenant:
            raise ParameterError(
                f"tenant must be non-empty and slash-free, got {tenant!r}"
            )
        if index_dir is None and self.state_dir is not None:
            index_dir = self.state_dir / tenant / name
        if index_dir is not None:
            index_dir = Path(index_dir)
            index_dir.mkdir(parents=True, exist_ok=True)
        spec = GraphSpec(
            name=name,
            tenant=tenant,
            graph=graph,
            model=model,
            seed=seed,
            sampler_workers=sampler_workers,
            step=step,
            max_rr_sets=max_rr_sets,
            delta=delta,
            mem_budget=mem_budget,
            index_dir=None if index_dir is None else str(index_dir),
        )
        status = self.registry.register(spec)
        self._supervisor.register(spec)
        self.obs.count("cluster.graphs_registered")
        return status.spec.describe()

    # ------------------------------------------------------------------
    # Worker result pump
    # ------------------------------------------------------------------
    def _pending_jobs(self) -> List[ClusterJob]:
        return [
            job for job in self._jobs.values() if job.status not in TERMINAL
        ]

    async def _pump_loop(self) -> None:
        """Poll worker messages and liveness off the event loop."""
        supervisor = self._supervisor
        loop = asyncio.get_running_loop()

        def poll_once() -> Tuple[List[int], Optional[Any]]:
            respawned = supervisor.check_crashed()
            return respawned, supervisor.poll(0.05)

        while not self._pump_stop:
            try:
                respawned, message = await loop.run_in_executor(
                    None, poll_once
                )
            except ClusterError as exc:
                self._fail_cluster(str(exc))
                return
            for worker_id in respawned:
                self._requeue_worker(worker_id)
            if message is not None:
                kind, worker_id, payload = message
                self._handle_message(kind, worker_id, payload)

    def _finish_job(self, job: ClusterJob, status: str) -> None:
        """Move a job to a terminal state and prune the oldest ones.

        Terminal jobs stay readable (idempotent result polls) for the
        last ``completed_jobs_limit`` finishes only — beyond that the
        oldest are dropped from the table so a long-running front end
        does not accumulate result payloads forever.
        """
        job.finish(status)
        self._finished.append(job.job_id)
        while len(self._finished) > self.completed_jobs_limit:
            self._jobs.pop(self._finished.popleft(), None)

    def _fail_cluster(self, error: str) -> None:
        self._cluster_error = error
        for job in self._pending_jobs():
            job.error = error
            self._finish_job(job, "failed")

    def _requeue_worker(self, worker_id: int) -> None:
        """Re-dispatch every unfinished job of a respawned worker.

        Fault injection is stripped on requeue — the requeued run is
        the recovery path under test, not another crash.
        """
        for job in self._pending_jobs():
            if job.shard != worker_id:
                continue
            job.inject_crash = False
            job.requeues += 1
            self._supervisor.send(worker_id, "job", job.dispatch_payload())
            self.obs.count("cluster.jobs_requeued")

    def _handle_message(
        self, kind: str, worker_id: int, payload: Dict[str, Any]
    ) -> None:
        if kind == "job_done":
            self._finish_job_done(payload)
        elif kind == "job_rejected":
            # The worker's authoritative memory reading rides along:
            # fold it into the registry so front-end admission starts
            # refusing this graph without another worker round-trip.
            graph_id = payload.get("graph")
            if graph_id in self.registry and "memory_bytes" in payload:
                status = self.registry.get(graph_id)
                status.resident = True
                status.memory_bytes = int(payload["memory_bytes"])
            job = self._jobs.get(payload["job_id"])
            if job is not None and job.status not in TERMINAL:
                job.error = payload["reason"]
                job.retry_after = str(payload.get("retry_after", "1"))
                job.result = dict(payload)
                self._finish_job(job, "rejected")
                self.obs.count("cluster.jobs_rejected")
        elif kind == "job_failed":
            job = self._jobs.get(payload["job_id"])
            if job is not None and job.status not in TERMINAL:
                job.error = payload.get("error", "worker failure")
                self._finish_job(job, "failed")
                self.obs.count("cluster.jobs_failed")
        elif kind == "evicted":
            self._note_eviction(payload)
            for event, box in self._evict_waiters.pop(
                payload.get("graph", ""), []
            ):
                box.update(payload)
                event.set()
        elif kind == "worker_error":
            self.obs.count("cluster.worker_errors")
            self.obs.record("cluster_worker_error", worker=worker_id, **payload)
        elif kind in ("ready", "registered", "checkpointed", "drained"):
            self.obs.record(f"cluster_{kind}", worker=worker_id, **payload)

    def _finish_job_done(self, payload: Dict[str, Any]) -> None:
        job = self._jobs.get(payload["job_id"])
        if job is None:  # pragma: no cover - duplicate delivery after requeue
            return
        if job.status in TERMINAL:  # pragma: no cover - crashed-then-done race
            return
        for event in payload.get("events", ()):
            fields = dict(event)
            self.obs.record(fields.pop("type", "event"), **fields)
        status = self.registry.get(job.graph_id)
        info = payload.get("engine", {})
        status.resident = True
        status.memory_bytes = int(info.get("memory_bytes", 0))
        status.num_rr_sets = int(info.get("num_rr_sets", 0))
        status.jobs_done += 1
        status.extra.update(
            {
                "loaded_from_index": info.get("loaded_from_index"),
                "worker_pid": info.get("worker_pid"),
            }
        )
        for eviction in payload.get("evicted", ()):
            self._note_eviction(eviction)
        job.result = {
            "job_id": job.job_id,
            "graph": job.graph_id,
            "shard": job.shard,
            "requeues": job.requeues,
            "trace_id": job.trace_id,
            "response": payload["response"],
            "claims": payload["claims"],
            "engine": info,
            "checkpointed": payload.get("checkpointed", False),
        }
        self._finish_job(job, "done")
        self.obs.count("cluster.jobs_done")
        self.obs.histogram(
            "cluster.job_seconds", labels={"shard": str(job.shard)}
        ).observe(float(payload.get("worker_seconds", 0.0)))
        self.obs.set_gauge("cluster.total_memory", self.registry.total_memory())

    def _note_eviction(self, payload: Dict[str, Any]) -> None:
        graph_id = payload.get("graph")
        if graph_id is None or graph_id not in self.registry:
            return
        status = self.registry.get(graph_id)
        if payload.get("resident", True):
            status.evictions += 1
            self.obs.count("cluster.evictions")
        status.resident = False
        status.memory_bytes = 0

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> DispatchResult:
        self.obs.count("cluster.requests")
        trace_id = request.headers.get("x-trace-id") or uuid.uuid4().hex[:16]
        with self.obs.trace_context(trace_id):
            with self.obs.trace("cluster/dispatch"):
                status, payload, retry_after = await self._route(
                    request, trace_id
                )
        if status == 503:
            return status, payload, {"Retry-After": retry_after}
        return status, payload

    async def _route(
        self, request: Request, trace_id: str
    ) -> Tuple[int, Payload, str]:
        segments, query = split_path(request.path)
        tenant = request.headers.get("x-tenant", "default")
        route = (request.method, segments)
        try:
            if route == ("GET", ("healthz",)):
                return 200, self._healthz(), QUEUE_RETRY_AFTER
            if route == ("GET", ("metrics",)):
                return (
                    200,
                    TextResponse(
                        prometheus_text(self.obs), PROMETHEUS_CONTENT_TYPE
                    ),
                    QUEUE_RETRY_AFTER,
                )
            if route == ("GET", ("stats",)):
                return 200, self.stats(), QUEUE_RETRY_AFTER
            if route == ("GET", ("graphs",)):
                return (
                    200,
                    {
                        "tenant": tenant,
                        "graphs": [
                            self._graph_view(status)
                            for status in self.registry.by_tenant(tenant)
                        ],
                    },
                    QUEUE_RETRY_AFTER,
                )
            if (
                request.method == "GET"
                and len(segments) == 2
                and segments[0] == "jobs"
            ):
                return self._job_status(segments, tenant)
            if (
                request.method == "GET"
                and len(segments) == 3
                and segments[0] == "jobs"
                and segments[2] == "result"
            ):
                return await self._job_result(segments, query, tenant)
            if self._draining:
                return 503, {"error": "draining"}, QUEUE_RETRY_AFTER
            if self._cluster_error is not None:
                return 500, {"error": self._cluster_error}, QUEUE_RETRY_AFTER
            if route == ("POST", ("graphs",)):
                return await self._handle_register(request, tenant)
            if (
                request.method == "POST"
                and len(segments) == 3
                and segments[0] == "graphs"
                and segments[2] == "evict"
            ):
                return await self._handle_evict(tenant, segments[1])
            if route == ("POST", ("jobs",)):
                return self._handle_submit(request, tenant, trace_id)
            return 404, {"error": f"unknown path {request.path}"}, "1"
        except ProtocolError as exc:
            return 400, {"error": str(exc)}, "1"
        except ParameterError as exc:
            return 400, {"error": str(exc)}, "1"
        except ReproError as exc:
            return 500, {"error": str(exc)}, "1"

    def _healthz(self) -> Dict[str, Any]:
        if self._cluster_error is not None:
            state = "failed"
        elif self._draining:
            state = "draining"
        else:
            state = "ok"
        return {
            "status": state,
            "workers": self.workers,
            "alive": self._supervisor.alive(),
            "graphs": len(self.registry),
            "pending_jobs": len(self._pending_jobs()),
            "queue_limit": self.queue_limit,
            "restarts": self._supervisor.restarts,
        }

    def stats(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "workers": self.workers,
            "restarts": self._supervisor.restarts,
            "draining": self._draining,
            "graphs": [
                self._graph_view(status) for status in self.registry.all()
            ],
            "jobs": by_status,
            "total_memory": self.registry.total_memory(),
            "counters": self.obs.counter_values(),
        }

    def _graph_view(self, status: GraphStatus) -> Dict[str, Any]:
        view = status.spec.describe()
        view.update(
            {
                "resident": status.resident,
                "memory_bytes": status.memory_bytes,
                "num_rr_sets": status.num_rr_sets,
                "jobs_done": status.jobs_done,
                "evictions": status.evictions,
                "over_budget": status.over_budget,
            }
        )
        return view

    async def _handle_register(
        self, request: Request, tenant: str
    ) -> Tuple[int, Payload, str]:
        params = request.json()
        known = {
            "name",
            "dataset",
            "scale",
            "model",
            "seed",
            "sampler_workers",
            "step",
            "max_rr_sets",
            "delta",
            "mem_budget",
        }
        unknown = set(params) - known
        if unknown:
            raise ParameterError(f"unknown graph fields: {sorted(unknown)}")
        try:
            name = str(params["name"])
            dataset = str(params["dataset"])
        except KeyError as exc:
            raise ParameterError(f"missing required field: {exc.args[0]}")
        scale = float(params.get("scale", 1.0))
        loop = asyncio.get_running_loop()
        from repro.datasets import load_dataset

        graph = await loop.run_in_executor(
            None, lambda: load_dataset(dataset, scale=scale)
        )
        description = self.register_graph(
            graph,
            name,
            tenant=tenant,
            model=str(params.get("model", "IC")),
            seed=int(params.get("seed", 2018)),
            sampler_workers=int(params.get("sampler_workers", 1)),
            step=int(params.get("step", 2000)),
            max_rr_sets=int(params.get("max_rr_sets", 500_000)),
            delta=(
                None if params.get("delta") is None
                else float(params["delta"])
            ),
            mem_budget=(
                None if params.get("mem_budget") is None
                else int(params["mem_budget"])
            ),
        )
        return 201, description, "1"

    async def _handle_evict(
        self, tenant: str, name: str
    ) -> Tuple[int, Payload, str]:
        status = self.registry.lookup(tenant, name)
        if status is None:
            return 404, {"error": f"unknown graph {tenant}/{name}"}, "1"
        graph_id = status.spec.graph_id
        event = asyncio.Event()
        box: Dict[str, Any] = {}
        # One waiter *list* per graph: concurrent evicts of the same
        # graph all resolve on the next "evicted" acknowledgement
        # instead of the last request clobbering the earlier waiters.
        self._evict_waiters.setdefault(graph_id, []).append((event, box))
        self._supervisor.send(
            status.spec.shard, "evict", {"graph": graph_id}
        )
        try:
            await asyncio.wait_for(event.wait(), timeout=30.0)
        except asyncio.TimeoutError:
            waiters = self._evict_waiters.get(graph_id)
            if waiters is not None:
                try:
                    waiters.remove((event, box))
                except ValueError:
                    pass
                if not waiters:
                    self._evict_waiters.pop(graph_id, None)
            return 500, {"error": f"evict of {graph_id} timed out"}, "1"
        return 200, box, "1"

    def _handle_submit(
        self, request: Request, tenant: str, trace_id: str
    ) -> Tuple[int, Payload, str]:
        body = request.json()
        precision = body.get("precision") if isinstance(body, dict) else None
        if precision is not None and precision != "hop":
            raise ParameterError(
                f"precision must be 'hop' when given, got {precision!r}"
            )
        if precision == "hop":
            hop = parse_hop_params(
                body, extra_fields=("graph", "inject_crash")
            )
            job_params: Dict[str, Any] = {
                "precision": "hop",
                "k": hop["k"],
                "seeds": hop["seeds"],
                "hops": hop["hops"],
            }
        else:
            params = parse_query_params(
                body, extra_fields=("graph", "inject_crash")
            )
            job_params = {
                "k": params["k"],
                "bound": params["bound"],
                "alpha_target": params["target"],
                "rr_budget": params["rr_budget"],
            }
        graph_name = body.get("graph")
        if not graph_name:
            raise ParameterError("missing required field: graph")
        status = self.registry.lookup(tenant, str(graph_name))
        if status is None:
            return (
                404,
                {"error": f"unknown graph {tenant}/{graph_name}"},
                "1",
            )
        inject_crash = bool(body.get("inject_crash", False))
        if inject_crash and not self.fault_injection:
            raise ParameterError(
                "inject_crash requires the front end to be started with "
                "fault_injection=True"
            )
        pending = len(self._pending_jobs())
        if pending >= self.queue_limit:
            self.obs.count("cluster.jobs_rejected")
            return (
                503,
                {"error": "overloaded", "pending_jobs": pending},
                QUEUE_RETRY_AFTER,
            )
        if status.over_budget:
            self.obs.count("cluster.jobs_rejected")
            return (
                503,
                {
                    "error": "mem_budget",
                    "graph": status.spec.graph_id,
                    "memory_bytes": status.memory_bytes,
                    "mem_budget": status.spec.mem_budget,
                },
                "5",
            )
        # Unguessable ids: job results carry tenant data, so ids must
        # not be enumerable even though reads are tenant-checked too.
        job = ClusterJob(
            job_id=f"job-{uuid.uuid4().hex}",
            graph_id=status.spec.graph_id,
            shard=status.spec.shard,
            params=job_params,
            trace_id=trace_id,
            tenant=tenant,
            inject_crash=inject_crash,
        )
        self._jobs[job.job_id] = job
        self._supervisor.send(job.shard, "job", job.dispatch_payload())
        self.obs.count("cluster.jobs_submitted")
        return 202, {**job.describe(), "pending_jobs": pending + 1}, "1"

    def _job_for(self, job_id: str, tenant: str) -> Optional[ClusterJob]:
        """The caller's job, or ``None`` when unknown *or* owned by a
        different tenant — indistinguishable on purpose (404, not 403:
        another tenant's job ids do not exist in this namespace)."""
        job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant:
            return None
        return job

    def _job_status(
        self, segments: Tuple[str, ...], tenant: str
    ) -> Tuple[int, Payload, str]:
        job = self._job_for(segments[1], tenant)
        if job is None:
            return 404, {"error": f"unknown job {segments[1]}"}, "1"
        return 200, job.describe(), "1"

    async def _job_result(
        self, segments: Tuple[str, ...], query: Dict[str, str], tenant: str
    ) -> Tuple[int, Payload, str]:
        job = self._job_for(segments[1], tenant)
        if job is None:
            return 404, {"error": f"unknown job {segments[1]}"}, "1"
        wait = float(query.get("wait", 0.0))
        if wait > 0 and job.status not in TERMINAL:
            try:
                await asyncio.wait_for(job.event.wait(), timeout=wait)
            except asyncio.TimeoutError:
                pass
        if job.status == "done":
            assert job.result is not None
            return 200, job.result, "1"
        if job.status == "failed":
            return 500, {**job.describe(), "error": job.error}, "1"
        if job.status == "rejected":
            return (
                503,
                {**job.describe(), "error": job.error, **(job.result or {})},
                job.retry_after,
            )
        return 202, job.describe(), "1"
