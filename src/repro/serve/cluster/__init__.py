"""repro.serve.cluster — sharded multi-tenant serving tier.

A front-end/worker split of the single-process
:class:`~repro.serve.server.SeedQueryServer`:

* :class:`~repro.serve.cluster.frontend.ClusterFrontend` — the asyncio
  API tier: tenant-scoped graph registration, job lifecycle endpoints,
  admission control, crash-requeue.
* :class:`~repro.serve.cluster.worker.WorkerSupervisor` and the worker
  processes — one per shard, each holding a warm
  :class:`~repro.serve.engine.SeedQueryEngine` per resident graph.
* :class:`~repro.serve.cluster.registry.GraphRegistry` — graph ids,
  fingerprint-hash shard routing, per-graph memory budgets.

See ``docs/serving.md`` ("Sharded cluster tier") for the architecture
and failure-mode walkthrough.
"""

from repro.serve.cluster.frontend import ClusterFrontend, ClusterJob
from repro.serve.cluster.registry import (
    DEFAULT_MEM_BUDGET,
    GraphRegistry,
    GraphSpec,
    GraphStatus,
    shard_for,
)
from repro.serve.cluster.worker import (
    MEM_BUDGET_RETRY_AFTER,
    ClusterError,
    WorkerSupervisor,
)

__all__ = [
    "ClusterError",
    "ClusterFrontend",
    "ClusterJob",
    "DEFAULT_MEM_BUDGET",
    "GraphRegistry",
    "GraphSpec",
    "GraphStatus",
    "MEM_BUDGET_RETRY_AFTER",
    "WorkerSupervisor",
    "shard_for",
]
