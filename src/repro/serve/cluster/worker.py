"""Long-lived cluster worker processes and their supervisor.

One worker process per shard.  Each worker hosts the warm
:class:`~repro.serve.engine.SeedQueryEngine` (and through it the
sampler — serial or a nested :class:`~repro.sampling.service
.SamplingPool`) for every graph routed to its shard, and executes jobs
strictly serially — which is the same synchronization story the
single-process server uses, applied per shard.

Protocol (all messages are picklable tuples):

* front end -> worker, over a per-worker ``SimpleQueue``::

      ("register",  {spec fields...})     adopt a graph spec
      ("job",       {job fields...})      run one seed query
      ("evict",     {"graph": id})        checkpoint + drop an engine
      ("checkpoint", {})                  checkpoint every engine
      None                                drain: checkpoint all + exit

* worker -> front end, over the shared result ``Queue``::

      ("ready" | "registered" | "job_done" | "job_rejected" |
       "job_failed" | "evicted" | "checkpointed" | "drained" |
       "worker_error", worker_id, {payload...})

Crash story: the supervisor polls worker liveness; a dead worker is
respawned with a **fresh** queue pair, its graph specs are re-sent,
and the front end re-dispatches its unfinished jobs.  Because a worker
checkpoints each graph's sketch index only at job boundaries, the
respawned engine warm-restarts from the last completed job's stream
position and the re-run job consumes the exact RR-set stream the
crashed run would have — bitwise-identical answers (the multi-process
extension of the PR 4 warm-restart oracle).

Memory story: each graph carries its own budget (admission control —
a job on an at-budget graph is rejected with ``mem_budget`` and the
front end maps that to 503 + ``Retry-After``; the check runs against
the engine *after* residency, so an evicted-then-reloaded sketch is
measured the same as one that never left memory), and each worker
carries a total budget under which cold engines are LRU-evicted
(checkpoint to the index, then drop).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ParameterError, ReproError, StateError
from repro.obs import MetricsRegistry, resolve_registry
from repro.sampling.hop import DEFAULT_HOPS
from repro.obs.recorder import TraceRecorder
from repro.serve.cluster.registry import GraphSpec
from repro.serve.engine import SeedQueryEngine

#: Seconds a client should back off after a memory-budget rejection —
#: relief needs an eviction or an operator action, not just queue drain.
MEM_BUDGET_RETRY_AFTER = 5

Message = Tuple[str, int, Dict[str, Any]]


class ClusterError(ReproError):
    """A cluster worker failed beyond the restart budget."""


def _spec_payload(spec: GraphSpec) -> Dict[str, Any]:
    """The picklable subset of a spec a worker needs."""
    return {
        "graph_id": spec.graph_id,
        "name": spec.name,
        "tenant": spec.tenant,
        "graph": spec.graph,
        "model": spec.model,
        "seed": spec.seed,
        "sampler_workers": spec.sampler_workers,
        "step": spec.step,
        "max_rr_sets": spec.max_rr_sets,
        "delta": spec.delta,
        "mem_budget": spec.mem_budget,
        "index_dir": spec.index_dir,
    }


class _WorkerHost:
    """Worker-process state: warm engines, budgets, trace shipping."""

    def __init__(
        self,
        worker_id: int,
        result_queue: Any,
        mem_budget: Optional[int],
    ) -> None:
        self.worker_id = worker_id
        self.result_queue = result_queue
        self.mem_budget = mem_budget
        # The worker process IS a composition root: it starts from a
        # bare fork and nothing picklable can inject a registry across
        # the process boundary.  Spans/counters ship back to the front
        # end with each job result instead of a shared sink.
        self.recorder = TraceRecorder()
        self.obs = MetricsRegistry(sink=self.recorder)  # repro: noqa[RPR107]
        self.specs: Dict[str, Dict[str, Any]] = {}
        self.engines: "OrderedDict[str, SeedQueryEngine]" = OrderedDict()

    def send(self, kind: str, payload: Dict[str, Any]) -> None:
        self.result_queue.put((kind, self.worker_id, payload))

    # -- engine lifecycle ----------------------------------------------
    def _engine(self, graph_id: str) -> SeedQueryEngine:
        """The warm engine for *graph_id*, creating it on first use.

        Creation warm-starts from the graph's persistent index when
        one exists; an existing engine is bumped to the LRU front.
        """
        engine = self.engines.get(graph_id)
        if engine is not None:
            self.engines.move_to_end(graph_id)
            return engine
        spec = self.specs[graph_id]
        engine = SeedQueryEngine(
            spec["graph"],
            spec["model"],
            seed=spec["seed"],
            workers=spec["sampler_workers"],
            delta=spec["delta"],
            index_dir=spec["index_dir"],
            step=spec["step"],
            max_rr_sets=spec["max_rr_sets"],
            registry=self.obs,
        )
        self.engines[graph_id] = engine
        return engine

    def total_memory(self) -> int:
        return sum(e.memory_bytes() for e in self.engines.values())

    def _evict_engine(self, graph_id: str) -> Dict[str, Any]:
        engine = self.engines.pop(graph_id)
        checkpointed = engine.checkpoint() is not None
        freed = engine.memory_bytes()
        engine.close()
        return {
            "graph": graph_id,
            "checkpointed": checkpointed,
            "freed_bytes": freed,
        }

    def _evict_cold_lru(self, keep: str) -> List[Dict[str, Any]]:
        """Evict least-recently-used engines (never *keep*) until the
        worker budget holds or nothing cold remains."""
        evicted: List[Dict[str, Any]] = []
        if self.mem_budget is None:
            return evicted
        while self.total_memory() > self.mem_budget and len(self.engines) > 1:
            coldest = next(
                (gid for gid in self.engines if gid != keep), None
            )
            if coldest is None:  # pragma: no cover - keep is the only one
                break
            evicted.append(self._evict_engine(coldest))
        return evicted

    def checkpoint_all(self) -> int:
        count = 0
        for engine in self.engines.values():
            if engine.checkpoint() is not None:
                count += 1
        return count

    def engine_info(self, engine: SeedQueryEngine) -> Dict[str, Any]:
        return {
            "memory_bytes": engine.memory_bytes(),
            "num_rr_sets": engine.num_rr_sets,
            "loaded_from_index": engine.loaded_from_index,
            "sets_generated": int(engine.sampler.sets_generated),
            "resident": list(self.engines),
            "total_memory": self.total_memory(),
            "worker_pid": os.getpid(),
        }

    # -- task handlers --------------------------------------------------
    def handle_register(self, task: Dict[str, Any]) -> None:
        self.specs[task["graph_id"]] = task
        self.send(
            "registered",
            {"graph": task["graph_id"], "worker_pid": os.getpid()},
        )

    def handle_job(self, task: Dict[str, Any]) -> None:
        job_id = task["job_id"]
        graph_id = task["graph"]
        params = task["params"]
        trace_id = task.get("trace_id")
        spec = self.specs[graph_id]
        budget = spec["mem_budget"]
        # Authoritative budget check, *after* the engine is resident:
        # a warm reload from the persistent index counts the same as a
        # sketch that never left memory, so evict/reload cycles cannot
        # launder an over-budget graph past admission control.  An
        # *empty* engine is exempt — its fixed overhead (offset
        # arrays) is not sketch growth, and rejecting it would brick
        # any graph whose budget is below that floor before it ever
        # served a job.
        engine = self._engine(graph_id)
        if (
            budget is not None
            and engine.num_rr_sets > 0
            and engine.memory_bytes() >= budget
        ):
            self.send(
                "job_rejected",
                {
                    "job_id": job_id,
                    "graph": graph_id,
                    "reason": "mem_budget",
                    "retry_after": MEM_BUDGET_RETRY_AFTER,
                    "memory_bytes": engine.memory_bytes(),
                    "mem_budget": budget,
                },
            )
            return
        if task.get("inject_crash"):
            # Fault injection (tests/bench only — the front end gates
            # it): do real partial work so the crash discards a
            # genuinely advanced in-memory stream, then die without
            # checkpointing.  The requeued job must warm-restart from
            # the last job-boundary checkpoint and still answer
            # bitwise-identically.
            engine.extend(engine.step + engine.step % 2)
            os._exit(1)
        events_before = len(self.recorder.events)
        started = time.perf_counter()
        try:
            with self.obs.trace_context(trace_id):
                with self.obs.trace("cluster/worker_job"):
                    if params.get("precision") == "hop":
                        response = engine.answer_hop(
                            k=params.get("k"),
                            seeds=params.get("seeds"),
                            hops=params.get("hops", DEFAULT_HOPS),
                            trace_id=trace_id,
                        )
                    else:
                        response = engine.answer(trace_id=trace_id, **params)
        except (ParameterError, StateError) as exc:
            self.send(
                "job_failed",
                {
                    "job_id": job_id,
                    "graph": graph_id,
                    "error": str(exc),
                    "kind": "parameter",
                },
            )
            return
        except ReproError as exc:
            self.send(
                "job_failed",
                {
                    "job_id": job_id,
                    "graph": graph_id,
                    "error": str(exc),
                    "kind": "engine",
                },
            )
            return
        elapsed = time.perf_counter() - started
        # Job-boundary checkpoint: the determinism anchor for crash
        # recovery (and what eviction/drain rely on being fresh).
        checkpointed = engine.checkpoint() is not None
        evicted = self._evict_cold_lru(keep=graph_id)
        events = [
            dict(event)
            for event in self.recorder.events[events_before:]
            if event.get("trace_id") == trace_id
        ]
        self.send(
            "job_done",
            {
                "job_id": job_id,
                "graph": graph_id,
                "response": response,
                "claims": engine.guarantee_claims(),
                "engine": self.engine_info(engine),
                "checkpointed": checkpointed,
                "evicted": evicted,
                "worker_seconds": elapsed,
                "events": events,
            },
        )

    def handle_evict(self, task: Dict[str, Any]) -> None:
        graph_id = task["graph"]
        if graph_id not in self.engines:
            self.send(
                "evicted",
                {"graph": graph_id, "resident": False, "checkpointed": False},
            )
            return
        result = self._evict_engine(graph_id)
        result["resident"] = True
        self.send("evicted", result)

    def handle_checkpoint(self, task: Dict[str, Any]) -> None:
        self.send(
            "checkpointed",
            {"count": self.checkpoint_all(), "resident": list(self.engines)},
        )

    def close(self) -> None:
        for engine in self.engines.values():
            engine.close()
        self.engines.clear()


def _cluster_worker(
    worker_id: int,
    task_queue: Any,
    result_queue: Any,
    mem_budget: Optional[int],
) -> None:
    """Worker-process entry point: serial task loop until drained."""
    host = _WorkerHost(worker_id, result_queue, mem_budget)
    host.send("ready", {"worker_pid": os.getpid()})
    handlers: Dict[str, Callable[[Dict[str, Any]], None]] = {
        "register": host.handle_register,
        "job": host.handle_job,
        "evict": host.handle_evict,
        "checkpoint": host.handle_checkpoint,
    }
    while True:
        task = task_queue.get()
        if task is None:
            count = host.checkpoint_all()
            host.close()
            host.send("drained", {"checkpointed": count})
            break
        kind, payload = task
        try:
            handlers[kind](payload)
        except BaseException as exc:  # noqa: BLE001 - keep the worker alive
            host.send(
                "worker_error",
                {"task": kind, "error": f"{type(exc).__name__}: {exc}"},
            )


class WorkerSupervisor:
    """Front-end-side owner of the worker processes.

    Spawns ``workers`` processes (fork start method when available, so
    registered graphs share pages until written), routes tasks to them,
    polls the shared result queue, and — the crash-detection half of
    the cluster contract — respawns dead workers and re-sends their
    graph specs.  Job requeue is the front end's half: it knows which
    jobs were in flight.
    """

    def __init__(
        self,
        workers: int = 2,
        mem_budget: Optional[int] = None,
        max_restarts: int = 8,
        registry: Optional[object] = None,
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ParameterError(
                f"max_restarts must be non-negative, got {max_restarts}"
            )
        self.workers = int(workers)
        self.mem_budget = mem_budget
        self.max_restarts = int(max_restarts)
        self.restarts = 0
        self.obs = resolve_registry(registry)
        methods = mp.get_all_start_methods()
        self._context = mp.get_context("fork" if "fork" in methods else None)
        self._result_queue: Any = self._context.Queue()
        self._procs: List[Optional[mp.process.BaseProcess]] = [
            None for _ in range(self.workers)
        ]
        self._task_queues: List[Any] = [None for _ in range(self.workers)]
        self._registered: List[List[Dict[str, Any]]] = [
            [] for _ in range(self.workers)
        ]
        self._closed = False
        try:
            for worker_id in range(self.workers):
                self._spawn(worker_id)
        except BaseException:
            self.close()
            raise

    def _spawn(self, worker_id: int) -> None:
        task_queue = self._context.SimpleQueue()
        process = self._context.Process(
            target=_cluster_worker,
            args=(worker_id, task_queue, self._result_queue, self.mem_budget),
            daemon=True,
            name=f"cluster-worker-{worker_id}",
        )
        process.start()
        self._task_queues[worker_id] = task_queue
        self._procs[worker_id] = process

    # -- messaging ------------------------------------------------------
    def send(self, worker_id: int, kind: str, payload: Dict[str, Any]) -> None:
        if self._closed:
            raise StateError("WorkerSupervisor is closed")
        self._task_queues[worker_id].put((kind, payload))

    def register(self, spec: GraphSpec) -> None:
        """Ship a graph spec to its shard's worker (re-sent on respawn)."""
        payload = _spec_payload(spec)
        self._registered[spec.shard].append(payload)
        self.send(spec.shard, "register", payload)

    def poll(self, timeout: float = 0.05) -> Optional[Message]:
        """Next worker message, or ``None`` after *timeout* seconds."""
        try:
            return self._result_queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def check_crashed(self) -> List[int]:
        """Respawn any dead workers; returns the respawned worker ids.

        Each respawned worker gets a fresh task queue (the old one's
        undelivered tasks are gone with the pipe) and its graph specs
        re-sent; the caller must re-dispatch in-flight jobs.
        """
        respawned: List[int] = []
        for worker_id, process in enumerate(self._procs):
            if process is None or process.is_alive():
                continue
            self.restarts += 1
            if self.restarts > self.max_restarts:
                raise ClusterError(
                    f"cluster worker {worker_id} died (exitcode "
                    f"{process.exitcode}) and the restart budget "
                    f"({self.max_restarts}) is exhausted"
                )
            process.join()
            self._spawn(worker_id)
            for payload in self._registered[worker_id]:
                self.send(worker_id, "register", payload)
            self.obs.count("cluster.worker_restarts")
            respawned.append(worker_id)
        return respawned

    def alive(self) -> List[bool]:
        return [
            process is not None and process.is_alive()
            for process in self._procs
        ]

    # -- shutdown -------------------------------------------------------
    def drain(self, timeout: float = 30.0) -> int:
        """Graceful shutdown: every worker checkpoints its resident
        sketches and exits.  Returns the number of checkpoints written.
        """
        if self._closed:
            return 0
        for task_queue in self._task_queues:
            if task_queue is not None:
                task_queue.put(None)
        deadline = time.monotonic() + timeout
        drained = 0
        checkpoints = 0
        while drained < self.workers and time.monotonic() < deadline:
            message = self.poll(timeout=0.1)
            if message is None:
                if not any(self.alive()) and self._result_queue.empty():
                    break
                continue
            kind, worker_id, payload = message
            if kind == "drained":
                drained += 1
                checkpoints += int(payload.get("checkpointed", 0))
                self.obs.record("cluster_drained", worker=worker_id, **payload)
        for process in self._procs:
            if process is not None:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
        self.obs.count("cluster.checkpoints", checkpoints)
        return checkpoints

    def close(self) -> None:
        """Hard stop: terminate anything still alive, release queues."""
        if self._closed:
            return
        self._closed = True
        for process in self._procs:
            if process is not None and process.is_alive():
                process.terminate()
        for process in self._procs:
            if process is not None:
                process.join(timeout=5.0)
        self._procs = [None for _ in range(self.workers)]
        self._task_queues = [None for _ in range(self.workers)]

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
