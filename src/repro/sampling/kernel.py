"""Frontier-batched RR-sampling kernels with a fixed RNG contract.

The scalar samplers (:mod:`repro.sampling.rrset_ic` and friends) pay
Python-interpreter cost per BFS node; the legacy batched sampler
(:mod:`repro.sampling.batch`) removes most of it but consumes
randomness in its own order, so the two streams are not comparable.
This module defines a third regime — the *kernel* — whose defining
property is a **frozen RNG-consumption contract** with two
interchangeable implementations:

``kernel="python"``
    A deliberately explicit, loop-based reference: the equivalence
    oracle.  Slow, but every coin flip is visible.
``kernel="vectorized"``
    The production engine: it advances *all* in-flight RR sets of a
    batch one frontier level at a time with numpy gather/scatter over
    the CSR in-adjacency.  Bitwise-identical to ``"python"``.
``kernel="numba"``
    Optional: the same driver with the IC frontier expansion JIT
    compiled.  Import-guarded and off by default; selecting it without
    numba installed is a :class:`~repro.exceptions.ParameterError`.
    Models other than IC fall back to the vectorized expansion.
    By construction it is bitwise-identical to ``"vectorized"``.

The RNG contract (per chunk sampler, seeded once)
-------------------------------------------------
1. Roots for a batch of ``b`` RR sets are drawn with **one** call
   ``rng.integers(0, n, size=b)``.
2. IC: each frontier level gathers the in-edges of every active
   frontier node — sets in ascending set order, each set's frontier in
   ascending node order, edges in CSR order — and draws **one** coin
   array ``rng.random(total_edges)`` for the whole level.
3. LT: each walk step draws three arrays from the chunk's generator:
   continue coins for all active walks, then column coins and alias
   accept coins for the surviving walks (walks stay in set order).
4. Triggering: frontier nodes are expanded in the same (set, node)
   order, one ``triggering_sets(node, rng)`` call per node.
5. Nodes discovered within one level are appended per set in ascending
   node id order (duplicates collapse to the first discovery).

Every implementation must consume the generator in exactly this order,
which is what makes the kernels interchangeable *per (chunk,
set-index)*: swap the kernel under a :class:`~repro.sampling.service.
SamplingPool` and every chunk — and therefore every manifest,
warm-index restart, and crash-requeued stream — reproduces bitwise.
``edges_examined`` (the gamma cost measure of Borgs et al.'s online
analysis) is likewise identical across kernels: IC charges each
expanded node its in-degree, LT charges one edge per surviving walk
step, and triggering charges the in-degree worst case, exactly as the
scalar samplers do.

Selection is explicit (``kernel=`` arguments) or ambient through the
``REPRO_KERNEL`` environment variable, which
:func:`resolve_kernel` consults when no explicit choice is given;
unset means "legacy samplers, streams unchanged".
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError, StateError
from repro.graph.digraph import DiGraph
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.rrset_lt import LTAliasTables
from repro.sampling.rrset_triggering import TriggeringSetSampler
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "KERNELS",
    "ENV_VAR",
    "AUTO_KERNEL",
    "HAVE_NUMBA",
    "resolve_kernel",
    "sample_rr_sets_kernel",
    "sample_rr_sets_ic_kernel",
    "sample_rr_sets_lt_kernel",
    "sample_rr_sets_triggering_kernel",
    "KernelRRSampler",
]

#: Recognized kernel names (`None` elsewhere means "legacy samplers").
KERNELS = ("python", "vectorized", "numba")

#: Environment variable consulted by :func:`resolve_kernel`.
ENV_VAR = "REPRO_KERNEL"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common case in CI
    _numba = None
    HAVE_NUMBA = False


#: Sentinel meaning "consult ``$REPRO_KERNEL``" (the default at every
#: entry point); contrast with ``None``, which pins the legacy samplers
#: regardless of the environment (what a legacy manifest restores as).
AUTO_KERNEL = "auto"


def resolve_kernel(kernel: Optional[str] = AUTO_KERNEL) -> Optional[str]:
    """Normalize a kernel choice.

    ``"auto"`` (the default) falls back to ``$REPRO_KERNEL``; ``None``
    — and an unset/empty environment variable under ``"auto"`` —
    resolves to ``None``, the legacy samplers, leaving every existing
    stream bitwise untouched.  An unknown name, or requesting
    ``"numba"`` without numba importable, raises
    :class:`ParameterError`.
    """
    if kernel == AUTO_KERNEL:
        kernel = os.environ.get(ENV_VAR) or None
    if kernel is None:
        return None
    kernel = str(kernel).lower()
    if kernel not in KERNELS:
        raise ParameterError(
            f"kernel must be one of {KERNELS} (or None for the legacy "
            f"samplers), got {kernel!r}"
        )
    if kernel == "numba" and not HAVE_NUMBA:
        raise ParameterError(
            "kernel='numba' requested but numba is not installed; "
            "use 'vectorized' (bitwise-identical stream)"
        )
    return kernel


def _require_kernel(kernel: str) -> str:
    resolved = resolve_kernel(kernel)
    if resolved is None:
        raise ParameterError(
            "a concrete kernel name is required here; resolve_kernel "
            "returned None (legacy samplers)"
        )
    return resolved


# ----------------------------------------------------------------------
# Shared assembly helper
# ----------------------------------------------------------------------
def _assemble(
    batch: int,
    sample_chunks: List[np.ndarray],
    node_chunks: List[np.ndarray],
) -> List[np.ndarray]:
    """Split flat (set, node) level records into per-set arrays.

    Stable-sorts by set id, so each RR set keeps its insertion order:
    root first, then each level's fresh nodes in ascending id order —
    the layout the RNG contract fixes.
    """
    samples = np.concatenate(sample_chunks)
    nodes = np.concatenate(node_chunks)
    order = np.argsort(samples, kind="stable")
    samples = samples[order]
    nodes = nodes[order]
    counts = np.bincount(samples, minlength=batch)
    offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return [
        nodes[offsets[i] : offsets[i + 1]].astype(np.int32)
        for i in range(batch)
    ]


# ----------------------------------------------------------------------
# IC kernels
# ----------------------------------------------------------------------
def _ic_python(
    graph: DiGraph, roots: np.ndarray, rng: np.random.Generator
) -> Tuple[List[np.ndarray], int, int]:
    """Loop-based IC reference — the oracle the fast kernels must match.

    Consumes exactly one ``rng.random(total)`` array per level (contract
    item 2) but walks it edge by edge in explicit Python.
    """
    n = graph.n
    offsets = graph.in_offsets
    sources = graph.in_sources
    probs = graph.in_probs
    batch = roots.shape[0]
    visited: List[set] = [{int(r)} for r in roots]
    rr_sets: List[List[int]] = [[int(r)] for r in roots]
    frontier: List[List[int]] = [[int(r)] for r in roots]
    edges_examined = 0
    levels = 0
    while any(frontier):
        levels += 1
        order: List[Tuple[int, int]] = [
            (s, u) for s in range(batch) for u in frontier[s]
        ]
        total = sum(int(offsets[u + 1] - offsets[u]) for _, u in order)
        edges_examined += total
        if total == 0:
            break
        coins = rng.random(total)
        pos = 0
        fresh: List[set] = [set() for _ in range(batch)]
        for s, u in order:
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            for e in range(lo, hi):
                if coins[pos] < probs[e]:
                    w = int(sources[e])
                    if w not in visited[s]:
                        fresh[s].add(w)
                pos += 1
        for s in range(batch):
            level_nodes = sorted(fresh[s])
            visited[s].update(level_nodes)
            rr_sets[s].extend(level_nodes)
            frontier[s] = level_nodes
    sets = [np.asarray(nodes, dtype=np.int32) for nodes in rr_sets]
    _ = n  # the universe size is implicit in the visited sets
    return sets, edges_examined, levels


def _ic_expand_numpy(
    offsets: np.ndarray,
    sources: np.ndarray,
    probs: np.ndarray,
    frontier_sets: np.ndarray,
    frontier_nodes: np.ndarray,
    coins: np.ndarray,
    visited: np.ndarray,
    n: int,
) -> np.ndarray:
    """One vectorized IC level: gathered edges -> sorted fresh codes."""
    starts = offsets[frontier_nodes]
    lengths = offsets[frontier_nodes + 1] - starts
    cum = np.cumsum(lengths)
    index = np.arange(coins.shape[0], dtype=np.int64) + np.repeat(
        starts - np.concatenate(([0], cum[:-1])), lengths
    )
    live = coins < probs[index]
    if not live.any():
        return np.empty(0, dtype=np.int64)
    live_sets = np.repeat(frontier_sets, lengths)[live]
    live_nodes = sources[index][live].astype(np.int64)
    unvisited = ~visited[live_sets, live_nodes]
    if not unvisited.any():
        return np.empty(0, dtype=np.int64)
    return np.unique(live_sets[unvisited] * np.int64(n) + live_nodes[unvisited])


if HAVE_NUMBA:  # pragma: no cover - requires optional numba

    @_numba.njit(cache=True)
    def _ic_expand_jit(  # type: ignore[misc]
        offsets, sources, probs, frontier_sets, frontier_nodes, coins, visited, n
    ):
        """JIT twin of :func:`_ic_expand_numpy`.

        Marks visited during the scan (first discovery wins) and sorts
        the collected codes, which equals ``np.unique`` over the fresh
        hits — the same sorted-per-level contract.
        """
        fresh = np.empty(coins.shape[0], dtype=np.int64)
        count = 0
        pos = 0
        for i in range(frontier_nodes.shape[0]):
            u = frontier_nodes[i]
            s = frontier_sets[i]
            for e in range(offsets[u], offsets[u + 1]):
                if coins[pos] < probs[e]:
                    w = sources[e]
                    if not visited[s, w]:
                        visited[s, w] = True
                        fresh[count] = s * n + w
                        count += 1
                pos += 1
        out = fresh[:count]
        out.sort()
        return out


def _ic_fast(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    kernel: str,
) -> Tuple[List[np.ndarray], int, int]:
    """Frontier-batched IC expansion (vectorized or numba inner step)."""
    n = graph.n
    offsets = graph.in_offsets
    sources = graph.in_sources
    probs = graph.in_probs
    batch = roots.shape[0]
    use_jit = kernel == "numba" and HAVE_NUMBA

    visited = np.zeros((batch, n), dtype=bool)
    frontier_sets = np.arange(batch, dtype=np.int64)
    frontier_nodes = roots.astype(np.int64)
    visited[frontier_sets, frontier_nodes] = True
    sample_chunks = [frontier_sets]
    node_chunks = [frontier_nodes]
    edges_examined = 0
    levels = 0

    while frontier_nodes.size:
        levels += 1
        total = int(
            (offsets[frontier_nodes + 1] - offsets[frontier_nodes]).sum()
        )
        edges_examined += total
        if total == 0:
            break
        coins = rng.random(total)
        if use_jit:  # pragma: no cover - requires optional numba
            codes = _ic_expand_jit(
                offsets, sources, probs, frontier_sets, frontier_nodes,
                coins, visited, n,
            )
        else:
            codes = _ic_expand_numpy(
                offsets, sources, probs, frontier_sets, frontier_nodes,
                coins, visited, n,
            )
        if codes.size == 0:
            break
        frontier_sets = codes // n
        frontier_nodes = codes % n
        if not use_jit:
            visited[frontier_sets, frontier_nodes] = True
        sample_chunks.append(frontier_sets)
        node_chunks.append(frontier_nodes)

    return _assemble(batch, sample_chunks, node_chunks), edges_examined, levels


def sample_rr_sets_ic_kernel(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    kernel: str = "vectorized",
) -> Tuple[List[np.ndarray], int, int]:
    """Sample one IC RR set per root under the kernel RNG contract.

    Returns ``(rr_sets, edges_examined, levels)``; ``rr_sets[i]``
    starts with ``roots[i]``.  All kernels are bitwise-interchangeable
    for the same generator state.
    """
    kernel = _require_kernel(kernel)
    roots = np.asarray(roots, dtype=np.int64)
    if roots.shape[0] == 0:
        return [], 0, 0
    if kernel == "python":
        return _ic_python(graph, roots, rng)
    return _ic_fast(graph, roots, rng, kernel)


# ----------------------------------------------------------------------
# LT kernels
# ----------------------------------------------------------------------
def _lt_python(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    tables: LTAliasTables,
) -> Tuple[List[np.ndarray], int, int]:
    """Loop-based LT reference: lock-step reverse walks."""
    offsets = graph.in_offsets
    sources = graph.in_sources
    continue_prob = tables.continue_prob
    accept = tables.accept
    alias = tables.alias
    batch = roots.shape[0]
    visited: List[set] = [{int(r)} for r in roots]
    rr_sets: List[List[int]] = [[int(r)] for r in roots]
    walks: List[Tuple[int, int]] = [(s, int(roots[s])) for s in range(batch)]
    edges_examined = 0
    steps = 0
    while walks:
        steps += 1
        cont = rng.random(len(walks))
        survivors = [
            (s, u)
            for (s, u), coin in zip(walks, cont)
            if coin < continue_prob[u]
        ]
        if not survivors:
            break
        edges_examined += len(survivors)
        col_coins = rng.random(len(survivors))
        acc_coins = rng.random(len(survivors))
        walks = []
        for (s, u), col_coin, acc_coin in zip(survivors, col_coins, acc_coins):
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            column = int(col_coin * (hi - lo))
            if acc_coin >= accept[lo + column]:
                column = int(alias[lo + column])
            w = int(sources[lo + column])
            if w in visited[s]:
                continue  # the walk closed a cycle and stops
            visited[s].add(w)
            rr_sets[s].append(w)
            walks.append((s, w))
        if not walks:
            break
    sets = [np.asarray(nodes, dtype=np.int32) for nodes in rr_sets]
    return sets, edges_examined, steps


def _lt_fast(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    tables: LTAliasTables,
) -> Tuple[List[np.ndarray], int, int]:
    """Lock-step LT walks with vectorized alias sampling."""
    n = graph.n
    offsets = graph.in_offsets
    sources = graph.in_sources
    continue_prob = tables.continue_prob
    accept = tables.accept
    alias = tables.alias
    batch = roots.shape[0]

    visited = np.zeros((batch, n), dtype=bool)
    walk_sets = np.arange(batch, dtype=np.int64)
    walk_nodes = roots.astype(np.int64)
    visited[walk_sets, walk_nodes] = True
    sample_chunks = [walk_sets]
    node_chunks = [walk_nodes]
    edges_examined = 0
    steps = 0

    while walk_nodes.size:
        steps += 1
        alive = rng.random(walk_nodes.size) < continue_prob[walk_nodes]
        walk_sets = walk_sets[alive]
        walk_nodes = walk_nodes[alive]
        if walk_nodes.size == 0:
            break
        edges_examined += int(walk_nodes.size)
        lo = offsets[walk_nodes]
        degree = offsets[walk_nodes + 1] - lo
        columns = (rng.random(walk_nodes.size) * degree).astype(np.int64)
        slots = lo + columns
        reject = rng.random(walk_nodes.size) >= accept[slots]
        columns = np.where(reject, alias[slots], columns)
        next_nodes = sources[lo + columns].astype(np.int64)
        fresh = ~visited[walk_sets, next_nodes]
        walk_sets = walk_sets[fresh]
        walk_nodes = next_nodes[fresh]
        if walk_nodes.size == 0:
            break
        visited[walk_sets, walk_nodes] = True
        sample_chunks.append(walk_sets)
        node_chunks.append(walk_nodes)

    return _assemble(batch, sample_chunks, node_chunks), edges_examined, steps


def sample_rr_sets_lt_kernel(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    tables: LTAliasTables,
    kernel: str = "vectorized",
) -> Tuple[List[np.ndarray], int, int]:
    """Sample one LT RR set per root under the kernel RNG contract.

    Returns ``(rr_sets, edges_examined, steps)``.  The column draw uses
    ``floor(coin * degree)`` (contract item 3), so the stream differs
    from the scalar sampler's ``Generator.integers`` — but is identical
    across kernels.
    """
    kernel = _require_kernel(kernel)
    roots = np.asarray(roots, dtype=np.int64)
    if roots.shape[0] == 0:
        return [], 0, 0
    if kernel == "python":
        return _lt_python(graph, roots, rng, tables)
    return _lt_fast(graph, roots, rng, tables)


# ----------------------------------------------------------------------
# Triggering kernels
# ----------------------------------------------------------------------
def sample_rr_sets_triggering_kernel(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    triggering_sets: TriggeringSetSampler,
    kernel: str = "vectorized",
) -> Tuple[List[np.ndarray], int, int]:
    """Sample one triggering-model RR set per root, level-synchronously.

    The per-node triggering callable is inherently scalar, so both
    kernels call it once per expanded frontier node in the contract's
    (set, node) order; ``"vectorized"`` batches only the bookkeeping
    (dedup, visited marking).  ``edges_examined`` charges each expanded
    node its in-degree, matching
    :func:`repro.sampling.rrset_triggering.sample_rr_set_triggering`.
    """
    kernel = _require_kernel(kernel)
    roots = np.asarray(roots, dtype=np.int64)
    batch = roots.shape[0]
    if batch == 0:
        return [], 0, 0
    n = graph.n
    in_degrees = np.diff(graph.in_offsets)
    edges_examined = 0
    levels = 0

    if kernel == "python":
        visited: List[set] = [{int(r)} for r in roots]
        rr_sets: List[List[int]] = [[int(r)] for r in roots]
        frontier: List[List[int]] = [[int(r)] for r in roots]
        while any(frontier):
            levels += 1
            fresh: List[set] = [set() for _ in range(batch)]
            for s in range(batch):
                for u in frontier[s]:
                    edges_examined += int(in_degrees[u])
                    for w in triggering_sets(u, rng):
                        w = int(w)
                        if w not in visited[s]:
                            fresh[s].add(w)
            for s in range(batch):
                level_nodes = sorted(fresh[s])
                visited[s].update(level_nodes)
                rr_sets[s].extend(level_nodes)
                frontier[s] = level_nodes
        return (
            [np.asarray(nodes, dtype=np.int32) for nodes in rr_sets],
            edges_examined,
            levels,
        )

    visited_matrix = np.zeros((batch, n), dtype=bool)
    frontier_sets = np.arange(batch, dtype=np.int64)
    frontier_nodes = roots.astype(np.int64)
    visited_matrix[frontier_sets, frontier_nodes] = True
    sample_chunks = [frontier_sets]
    node_chunks = [frontier_nodes]
    while frontier_nodes.size:
        levels += 1
        edges_examined += int(in_degrees[frontier_nodes].sum())
        trigger_chunks: List[np.ndarray] = []
        trigger_sets: List[np.ndarray] = []
        for s, u in zip(frontier_sets, frontier_nodes):
            triggers = np.asarray(
                triggering_sets(int(u), rng), dtype=np.int64
            )
            if triggers.size:
                trigger_chunks.append(triggers)
                trigger_sets.append(np.full(triggers.size, s, dtype=np.int64))
        if not trigger_chunks:
            break
        hit_nodes = np.concatenate(trigger_chunks)
        hit_sets = np.concatenate(trigger_sets)
        unvisited = ~visited_matrix[hit_sets, hit_nodes]
        if not unvisited.any():
            break
        codes = np.unique(
            hit_sets[unvisited] * np.int64(n) + hit_nodes[unvisited]
        )
        frontier_sets = codes // n
        frontier_nodes = codes % n
        visited_matrix[frontier_sets, frontier_nodes] = True
        sample_chunks.append(frontier_sets)
        node_chunks.append(frontier_nodes)

    return (
        _assemble(batch, sample_chunks, node_chunks),
        edges_examined,
        levels,
    )


# ----------------------------------------------------------------------
# Unified dispatch
# ----------------------------------------------------------------------
def sample_rr_sets_kernel(
    graph: DiGraph,
    model: str,
    roots: np.ndarray,
    rng: np.random.Generator,
    kernel: str = "vectorized",
    lt_tables: Optional[LTAliasTables] = None,
    triggering_sets: Optional[TriggeringSetSampler] = None,
) -> Tuple[List[np.ndarray], int, int]:
    """Model dispatch over the kernel samplers (one RR set per root)."""
    model = model.upper()
    if model == "IC":
        return sample_rr_sets_ic_kernel(graph, roots, rng, kernel)
    if model == "LT":
        if lt_tables is None:
            lt_tables = LTAliasTables(graph)
        return sample_rr_sets_lt_kernel(graph, roots, rng, lt_tables, kernel)
    if model == "TRIGGERING":
        if triggering_sets is None:
            raise ParameterError(
                "model='TRIGGERING' requires a triggering_sets callable"
            )
        return sample_rr_sets_triggering_kernel(
            graph, roots, rng, triggering_sets, kernel
        )
    raise ParameterError(
        f"model must be 'IC', 'LT' or 'TRIGGERING', got {model!r}"
    )


# ----------------------------------------------------------------------
# Sampler facade
# ----------------------------------------------------------------------
class KernelRRSampler:
    """Streaming RR-set sampler backed by a frontier-batched kernel.

    Implements the sampler duck type used across the codebase
    (``fill`` / ``sample_one`` / ``new_collection`` / counters), so it
    can replace :class:`~repro.sampling.generator.RRSampler` inside
    :func:`~repro.sampling.service.generate_chunk` chunks, OPIM
    sessions, and the serve engine.

    Determinism: the stream is a pure function of ``(seed, sequence of
    fill/sample_one calls)``.  ``fill`` generates exactly the shortfall
    in one batched kernel call, so a chunk sampler (one ``fill`` per
    chunk, as :class:`~repro.sampling.service.SamplingPool` issues
    them) consumes randomness as a pure function of the chunk count —
    the per-(chunk, set-index) contract the pool's manifests and
    crash-requeue determinism rely on.

    The ``buffered`` property reports RR sets generated but not yet
    handed out (only ``sample_one`` can leave a remainder); stream
    state must not be captured while it is nonzero.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        seed: SeedLike = None,
        kernel: str = "vectorized",
        batch_size: int = 256,
        registry: Optional[object] = None,
        triggering_sets: Optional[TriggeringSetSampler] = None,
    ) -> None:
        model = model.upper()
        if model not in ("IC", "LT", "TRIGGERING"):
            raise ParameterError(
                f"model must be 'IC', 'LT' or 'TRIGGERING', got {model!r}"
            )
        if model == "TRIGGERING" and triggering_sets is None:
            raise ParameterError(
                "model='TRIGGERING' requires a triggering_sets callable"
            )
        if model != "TRIGGERING" and not graph.weighted:
            raise ParameterError(
                "graph has no edge probabilities; apply a weighting scheme first"
            )
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        self.graph = graph
        self.model = model
        self.kernel = _require_kernel(kernel)
        self.rng = as_generator(seed)
        self.batch_size = int(batch_size)
        self.triggering_sets = triggering_sets
        self.edges_examined = 0
        self.sets_generated = 0
        self.nodes_touched = 0
        self.levels_advanced = 0
        self.universe_weight = float(graph.n)
        self.fill_seconds = 0.0
        self.obs = resolve_registry(registry)
        self._lt_tables: Optional[LTAliasTables] = None
        if model == "LT":
            self._lt_tables = LTAliasTables(graph)
        self._buffer: List[np.ndarray] = []

    @property
    def buffered(self) -> int:
        """RR sets generated but not yet handed out."""
        return len(self._buffer)

    def _generate(
        self, roots: np.ndarray
    ) -> Tuple[List[np.ndarray], int, int]:
        return sample_rr_sets_kernel(
            self.graph,
            self.model,
            roots,
            self.rng,
            kernel=self.kernel,
            lt_tables=self._lt_tables,
            triggering_sets=self.triggering_sets,
        )

    def _refill(self, count: int) -> None:
        roots = self.rng.integers(0, self.graph.n, size=count)
        with self.obs.trace("kernel/refill"):
            sets, edges, levels = self._generate(roots)
        self.edges_examined += edges
        self.levels_advanced += levels
        nodes = sum(s.shape[0] for s in sets)
        self.nodes_touched += nodes
        obs = self.obs
        obs.count("sampling.rr_sets", len(sets))
        obs.count("sampling.edges", edges)
        obs.count("sampling.nodes", nodes)
        obs.count("kernel.batches")
        obs.count("kernel.levels", levels)
        self._buffer.extend(reversed(sets))

    def sample_one(self, root: Optional[int] = None) -> np.ndarray:
        """Sample one RR set; the root is uniform random when omitted."""
        if root is not None:
            if not 0 <= root < self.graph.n:
                raise ParameterError(
                    f"root {root} out of range [0, {self.graph.n})"
                )
            sets, edges, levels = self._generate(
                np.array([root], dtype=np.int64)
            )
            self.edges_examined += edges
            self.levels_advanced += levels
            self.sets_generated += 1
            self.nodes_touched += sets[0].shape[0]
            return sets[0]
        if not self._buffer:
            self._refill(self.batch_size)
        self.sets_generated += 1
        nodes = self._buffer.pop()
        return nodes

    def fill(self, collection: RRCollection, count: int) -> None:
        """Append *count* fresh RR sets to *collection*.

        Generates exactly the shortfall in one kernel batch, so chunked
        use (one ``fill`` per chunk) leaves no buffered remainder.
        """
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if collection.n != self.graph.n:
            raise ParameterError(
                "collection node universe does not match the sampler's graph"
            )
        started = time.perf_counter()
        needed = count - len(self._buffer)
        if needed > 0:
            self._refill(needed)
        for _ in range(count):
            collection.append(self._buffer.pop())
            self.sets_generated += 1
        self.fill_seconds += time.perf_counter() - started

    def new_collection(self, count: int = 0) -> RRCollection:
        """Create a collection over this graph, optionally pre-filled."""
        collection = RRCollection(self.graph.n)
        if count:
            self.fill(collection, count)
        return collection

    # -- resumable stream state ----------------------------------------
    def state(self) -> Dict[str, Any]:
        """Snapshot of the stream position (for warm-index manifests)."""
        if self._buffer:
            raise StateError(
                f"cannot capture kernel sampler state with "
                f"{len(self._buffer)} buffered RR sets"
            )
        return {
            "kind": "serial-kernel",
            "kernel": self.kernel,
            "rng_state": self.rng.bit_generator.state,
            "sets_generated": int(self.sets_generated),
            "edges_examined": int(self.edges_examined),
            "nodes_touched": int(self.nodes_touched),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Resume the stream captured by :meth:`state`."""
        if state.get("kind") != "serial-kernel":
            raise ParameterError(
                f"cannot restore sampler state of kind {state.get('kind')!r} "
                "into a KernelRRSampler"
            )
        if state.get("kernel") != self.kernel:
            raise ParameterError(
                f"index was sampled with kernel {state.get('kernel')!r} but "
                f"the sampler runs {self.kernel!r}; use the matching kernel "
                "to keep the stream deterministic"
            )
        if self.sets_generated or self._buffer:
            raise ParameterError(
                "cannot restore sampling state into a sampler that has "
                "already generated RR sets"
            )
        self.rng.bit_generator.state = state["rng_state"]
        self.sets_generated = int(state["sets_generated"])
        self.edges_examined = int(state["edges_examined"])
        self.nodes_touched = int(state["nodes_touched"])

    def __repr__(self) -> str:
        return (
            f"KernelRRSampler(graph={self.graph.name!r}, "
            f"model={self.model!r}, kernel={self.kernel!r})"
        )


def fill_reference(
    sets_a: Sequence[np.ndarray], sets_b: Sequence[np.ndarray]
) -> bool:
    """True when two RR collections are bitwise-identical (order too)."""
    if len(sets_a) != len(sets_b):
        return False
    return all(
        a.shape == b.shape and bool(np.array_equal(a, b))
        for a, b in zip(sets_a, sets_b)
    )
