"""Batched (vectorized) RR-set generation.

The scalar samplers in :mod:`repro.sampling.rrset_ic` / ``rrset_lt``
pay Python-interpreter overhead per BFS node / walk step.  The batched
samplers here advance *many* RR sets in lock-step, so the interpreter
cost is paid once per cascade level (IC) or walk step (LT) for the
whole batch — typically a 5-30x throughput gain on the stand-in
graphs, which is what makes paper-scale RR budgets reachable from pure
Python (the reproduction note's "needs numpy tricks").

The batched samplers draw random numbers in a different order than the
scalar ones, so streams are not bit-identical across the two — but
every RR set still follows exactly the Appendix A distribution, which
the test suite checks by comparing spread estimates.

Memory: one boolean visited matrix of shape ``(batch, n)``; callers
bound ``batch`` accordingly (the default 256 puts it at ~5 MB for the
largest stand-in).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.kernel import resolve_kernel
from repro.sampling.rrset_lt import LTAliasTables
from repro.utils.rng import SeedLike, as_generator


def _assemble(
    n: int,
    batch: int,
    sample_chunks: List[np.ndarray],
    node_chunks: List[np.ndarray],
) -> List[np.ndarray]:
    """Split flat (sample, node) membership records into per-sample
    arrays, preserving insertion order (roots first)."""
    samples = np.concatenate(sample_chunks)
    nodes = np.concatenate(node_chunks)
    order = np.argsort(samples, kind="stable")
    samples = samples[order]
    nodes = nodes[order]
    counts = np.bincount(samples, minlength=batch)
    offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return [
        nodes[offsets[i] : offsets[i + 1]].astype(np.int32) for i in range(batch)
    ]


def sample_rr_sets_ic_batch(
    graph: DiGraph, roots: np.ndarray, rng: np.random.Generator
) -> Tuple[List[np.ndarray], int]:
    """Sample one IC RR set per root, advanced level-synchronously.

    Returns ``(rr_sets, edges_examined)`` where ``rr_sets[i]`` starts
    with ``roots[i]``.
    """
    roots = np.asarray(roots, dtype=np.int64)
    batch = roots.shape[0]
    if batch == 0:
        return [], 0
    n = graph.n
    in_offsets = graph.in_offsets
    in_sources = graph.in_sources
    in_probs = graph.in_probs

    visited = np.zeros((batch, n), dtype=bool)
    frontier_samples = np.arange(batch, dtype=np.int64)
    frontier_nodes = roots
    visited[frontier_samples, frontier_nodes] = True
    sample_chunks = [frontier_samples]
    node_chunks = [frontier_nodes]
    edges_examined = 0

    while frontier_nodes.size:
        starts = in_offsets[frontier_nodes]
        lengths = in_offsets[frontier_nodes + 1] - starts
        total = int(lengths.sum())
        edges_examined += total
        if total == 0:
            break
        cum = np.cumsum(lengths)
        index = np.arange(total, dtype=np.int64) + np.repeat(
            starts - np.concatenate(([0], cum[:-1])), lengths
        )
        edge_samples = np.repeat(frontier_samples, lengths)
        hit = rng.random(total) < in_probs[index]
        if not hit.any():
            break
        hit_samples = edge_samples[hit]
        hit_nodes = in_sources[index][hit].astype(np.int64)
        # Drop already-visited pairs, then dedupe within the level.
        fresh = ~visited[hit_samples, hit_nodes]
        if not fresh.any():
            break
        codes = np.unique(hit_samples[fresh] * np.int64(n) + hit_nodes[fresh])
        frontier_samples = codes // n
        frontier_nodes = codes % n
        visited[frontier_samples, frontier_nodes] = True
        sample_chunks.append(frontier_samples)
        node_chunks.append(frontier_nodes)

    return _assemble(n, batch, sample_chunks, node_chunks), edges_examined


def sample_rr_sets_lt_batch(
    graph: DiGraph,
    roots: np.ndarray,
    rng: np.random.Generator,
    tables: LTAliasTables,
) -> Tuple[List[np.ndarray], int]:
    """Sample one LT RR set per root, walks advanced in lock-step."""
    roots = np.asarray(roots, dtype=np.int64)
    batch = roots.shape[0]
    if batch == 0:
        return [], 0
    n = graph.n
    in_offsets = graph.in_offsets
    in_sources = graph.in_sources
    continue_prob = tables.continue_prob
    accept = tables.accept
    alias = tables.alias

    visited = np.zeros((batch, n), dtype=bool)
    walk_samples = np.arange(batch, dtype=np.int64)
    walk_nodes = roots
    visited[walk_samples, walk_nodes] = True
    sample_chunks = [walk_samples]
    node_chunks = [walk_nodes]
    edges_examined = 0

    while walk_nodes.size:
        alive = rng.random(walk_nodes.size) < continue_prob[walk_nodes]
        walk_samples = walk_samples[alive]
        walk_nodes = walk_nodes[alive]
        if walk_nodes.size == 0:
            break
        edges_examined += int(walk_nodes.size)
        lo = in_offsets[walk_nodes]
        degree = in_offsets[walk_nodes + 1] - lo
        columns = (rng.random(walk_nodes.size) * degree).astype(np.int64)
        slots = lo + columns
        reject = rng.random(walk_nodes.size) >= accept[slots]
        columns = np.where(reject, alias[slots], columns)
        next_nodes = in_sources[lo + columns].astype(np.int64)
        # Walks that close a cycle stop; the rest extend.
        fresh = ~visited[walk_samples, next_nodes]
        walk_samples = walk_samples[fresh]
        walk_nodes = next_nodes[fresh]
        if walk_nodes.size == 0:
            break
        visited[walk_samples, walk_nodes] = True
        sample_chunks.append(walk_samples)
        node_chunks.append(walk_nodes)

    return _assemble(n, batch, sample_chunks, node_chunks), edges_examined


class BatchRRSampler:
    """Drop-in high-throughput replacement for
    :class:`~repro.sampling.generator.RRSampler`.

    Maintains an internal buffer refilled ``batch_size`` RR sets at a
    time, so ``sample_one`` / ``fill`` keep the scalar interface while
    the generation work runs vectorized.

    *kernel* optionally routes generation through the frontier-batched
    kernels of :mod:`repro.sampling.kernel` (``"python"`` /
    ``"vectorized"`` / ``"numba"``), whose RNG-consumption contract is
    frozen and identical across kernels.  ``None`` (the default) keeps
    this class's original consumption order, so existing streams are
    untouched; the two regimes are **not** bitwise-comparable to each
    other.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        seed: SeedLike = None,
        batch_size: int = 256,
        registry=None,
        kernel: Optional[str] = None,
    ) -> None:
        model = model.upper()
        if model not in ("IC", "LT"):
            raise ParameterError(f"model must be 'IC' or 'LT', got {model!r}")
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        if not graph.weighted:
            raise ParameterError(
                "graph has no edge probabilities; apply a weighting scheme first"
            )
        self.graph = graph
        self.model = model
        self.kernel = resolve_kernel(kernel) if kernel is not None else None
        self.rng = as_generator(seed)
        self.batch_size = int(batch_size)
        self.edges_examined = 0
        self.sets_generated = 0
        self.nodes_touched = 0
        self.universe_weight = float(graph.n)
        self.obs = resolve_registry(registry)
        self._lt_tables: Optional[LTAliasTables] = None
        if model == "LT":
            self._lt_tables = LTAliasTables(graph)
        self._buffer: List[np.ndarray] = []

    def _generate(self, roots: np.ndarray) -> Tuple[List[np.ndarray], int]:
        if self.kernel is not None:
            from repro.sampling.kernel import sample_rr_sets_kernel

            sets, edges, _levels = sample_rr_sets_kernel(
                self.graph,
                self.model,
                roots,
                self.rng,
                kernel=self.kernel,
                lt_tables=self._lt_tables,
            )
            return sets, edges
        if self.model == "IC":
            return sample_rr_sets_ic_batch(self.graph, roots, self.rng)
        return sample_rr_sets_lt_batch(
            self.graph, roots, self.rng, self._lt_tables
        )

    def _refill(self, count: int) -> None:
        roots = self.rng.integers(0, self.graph.n, size=count)
        sets, edges = self._generate(roots)
        self.edges_examined += edges
        nodes = sum(s.shape[0] for s in sets)
        self.nodes_touched += nodes
        obs = self.obs
        obs.count("sampling.rr_sets", len(sets))
        obs.count("sampling.edges", edges)
        obs.count("sampling.nodes", nodes)
        self._buffer.extend(reversed(sets))

    def sample_one(self, root: Optional[int] = None) -> np.ndarray:
        if root is not None:
            # Explicit roots bypass the buffer (rare; used by tests).
            if not 0 <= root < self.graph.n:
                raise ParameterError(f"root {root} out of range")
            sets, edges = self._generate(np.array([root], dtype=np.int64))
            self.edges_examined += edges
            self.sets_generated += 1
            return sets[0]
        if not self._buffer:
            self._refill(self.batch_size)
        self.sets_generated += 1
        return self._buffer.pop()

    def fill(self, collection: RRCollection, count: int) -> None:
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if collection.n != self.graph.n:
            raise ParameterError(
                "collection node universe does not match the sampler's graph"
            )
        while len(self._buffer) < count:
            self._refill(max(self.batch_size, count - len(self._buffer)))
        for _ in range(count):
            collection.append(self._buffer.pop())
            self.sets_generated += 1

    def new_collection(self, count: int = 0) -> RRCollection:
        collection = RRCollection(self.graph.n)
        if count:
            self.fill(collection, count)
        return collection
