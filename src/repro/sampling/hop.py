"""Hop-bounded spread approximation (Tang et al., arXiv:1705.10442).

RR sampling gives the paper's ``(1-1/e-eps, 1-delta)`` guarantee but
pays for it in samples; many serving queries (previews, what-if
explorations, candidate triage) only need a cheap, *directionally
correct* spread number.  Following the hop-based approach of Tang,
Tang & Xiao (*Influence Maximization Meets Efficiency and
Effectiveness: A Hop-Based Approach*), this module truncates the
cascade at ``h`` hops and evaluates it deterministically in closed
form instead of by Monte-Carlo sampling:

* :meth:`HopEstimator.scores` — Algorithm 1's per-node hop scores,

  .. math:: s_h(u) = 1 + \\sum_{v: u \\to v} p(u, v)\\, s_{h-1}(v)

  with :math:`s_0(u) = 1`, computed by ``h`` backward sweeps over the
  out-CSR arrays (``O(h \\cdot m)``, no randomness).  ``s_h`` upper
  bounds the exact ``h``-hop spread because shared reachable nodes are
  counted once per path.
* :meth:`HopEstimator.spread` — what-if evaluation of a *given* seed
  set: activation probabilities are propagated forward for ``h`` hops
  under the standard independent-activation approximation

  .. math:: r_{t+1}(v) = \\max\\Bigl(r_t(v),\\; 1 - \\prod_{u \\to v}
            \\bigl(1 - p(u, v)\\, r_t(u)\\bigr)\\Bigr)

  (seeds pinned at 1) with products taken in log space for numerical
  stability.  Each round *recomputes* the activation probability from
  the previous round's values rather than compounding into them —
  every IC edge fires at most once, so re-applying the same
  in-neighbour evidence round after round would double-count.  The
  max keeps "reached within :math:`t` hops" monotone in :math:`t`.
* :meth:`HopEstimator.select` — greedy seed choice by hop score with a
  one-hop overlap discount (selecting ``u`` removes ``u``'s term from
  every in-neighbour's score), the cheap analogue of coverage-greedy.

None of these carries the sampling guarantee: every serve response
derived from them must set ``guarantee: false`` (the serve layer's
``precision="hop"`` route does exactly that).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph

__all__ = ["HopEstimator", "DEFAULT_HOPS"]

#: Default truncation depth; arXiv:1705.10442 reports 2-3 hops capture
#: most of the spread mass on social graphs.
DEFAULT_HOPS = 2


class HopEstimator:
    """Deterministic h-hop spread scores, spread, and seed selection.

    Per-``hops`` score vectors are cached on the instance, so a warm
    serve engine pays the ``O(hops * m)`` sweep once per depth.
    """

    def __init__(self, graph: DiGraph) -> None:
        if not graph.weighted:
            raise ParameterError(
                "graph has no edge probabilities; apply a weighting scheme first"
            )
        self.graph = graph
        # Edge owner array for backward accumulation: edge e belongs to
        # source node repeat(u, out_degree(u)).
        self._edge_owner = np.repeat(
            np.arange(graph.n, dtype=np.int64), np.diff(graph.out_offsets)
        )
        self._scores: Dict[int, np.ndarray] = {}

    @staticmethod
    def _check_hops(hops: int) -> int:
        hops = int(hops)
        if not 1 <= hops <= 16:
            raise ParameterError(f"hops must be in [1, 16], got {hops}")
        return hops

    def scores(self, hops: int = DEFAULT_HOPS) -> np.ndarray:
        """Per-node hop scores ``s_hops`` (Algorithm 1), cached."""
        hops = self._check_hops(hops)
        cached = self._scores.get(hops)
        if cached is not None:
            return cached
        graph = self.graph
        s = np.ones(graph.n, dtype=np.float64)
        for _ in range(hops):
            acc = np.ones(graph.n, dtype=np.float64)
            np.add.at(
                acc,
                self._edge_owner,
                graph.out_probs * s[graph.out_targets],
            )
            s = acc
        s.setflags(write=False)
        self._scores[hops] = s
        return s

    def spread(self, seeds: List[int], hops: int = DEFAULT_HOPS) -> float:
        """Approximate spread of *seeds* after ``hops`` activation rounds.

        Deterministic what-if evaluation: returns the expected number of
        active nodes under the independent-activation approximation, a
        value in ``[len(seeds), n]``.  No sampling guarantee.
        """
        hops = self._check_hops(hops)
        graph = self.graph
        seed_array = self._validate_seeds(seeds)
        reach = np.zeros(graph.n, dtype=np.float64)
        reach[seed_array] = 1.0
        owner = self._edge_owner
        targets = graph.out_targets.astype(np.int64)
        for _ in range(hops):
            # log(1 - p(u,v) * r(u)) accumulated per target v.
            factor = np.clip(graph.out_probs * reach[owner], 0.0, 1.0 - 1e-15)
            log_miss = np.zeros(graph.n, dtype=np.float64)
            np.add.at(log_miss, targets, np.log1p(-factor))
            new_reach = np.maximum(reach, 1.0 - np.exp(log_miss))
            new_reach[seed_array] = 1.0
            if np.allclose(new_reach, reach, rtol=0.0, atol=1e-12):
                break
            reach = new_reach
        return float(reach.sum())

    def select(
        self, k: int, hops: int = DEFAULT_HOPS
    ) -> Tuple[List[int], float]:
        """Greedily pick ``k`` seeds by hop score with overlap discount.

        Returns ``(seeds, sigma_hop)`` where ``sigma_hop`` is the hop
        spread of the chosen set (via :meth:`spread`).  After selecting
        ``u``, every in-neighbour ``w`` loses ``p(w, u) * s_{hops-1}(u)``
        from its working score — the term ``u`` contributed — so tightly
        clustered high scorers are not all picked.
        """
        graph = self.graph
        if not 1 <= k <= graph.n:
            raise ParameterError(f"k must be in [1, {graph.n}], got {k}")
        hops = self._check_hops(hops)
        working = self.scores(hops).copy()
        inner = (
            self.scores(hops - 1)
            if hops > 1
            else np.ones(graph.n, dtype=np.float64)
        )
        in_offsets = graph.in_offsets
        in_sources = graph.in_sources
        in_probs = graph.in_probs
        seeds: List[int] = []
        for _ in range(k):
            u = int(np.argmax(working))
            seeds.append(u)
            working[u] = -np.inf
            lo, hi = int(in_offsets[u]), int(in_offsets[u + 1])
            if hi > lo:
                np.subtract.at(
                    working,
                    in_sources[lo:hi].astype(np.int64),
                    in_probs[lo:hi] * inner[u],
                )
        return seeds, self.spread(seeds, hops)

    def _validate_seeds(self, seeds: List[int]) -> np.ndarray:
        seed_array = np.asarray(list(seeds), dtype=np.int64)
        if seed_array.size == 0:
            raise ParameterError("seeds must be a non-empty node list")
        if seed_array.min() < 0 or seed_array.max() >= self.graph.n:
            raise ParameterError(
                f"seeds must be node ids in [0, {self.graph.n})"
            )
        if np.unique(seed_array).size != seed_array.size:
            raise ParameterError("seeds must not contain duplicates")
        return seed_array

    def __repr__(self) -> str:
        return (
            f"HopEstimator(graph={self.graph.name!r}, "
            f"cached_hops={sorted(self._scores)})"
        )
