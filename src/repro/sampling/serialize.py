"""Persistence for RR-set collections (``.npz`` format).

Online processing sessions can be long-lived; persisting the sampled
RR sets lets a session survive process restarts without regenerating
(and therefore without changing) its guarantees.  The format is a
plain numpy ``.npz`` archive: the member nodes flattened into one
array plus CSR offsets and the node-universe size.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import GraphFormatError
from repro.sampling.collection import RRCollection

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_collection(collection: RRCollection, path: PathLike) -> None:
    """Write *collection* to ``path`` (a ``.npz`` archive)."""
    collection.build()
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        n=np.int64(collection.n),
        rr_offsets=collection.rr_offsets,
        rr_nodes=collection.rr_nodes,
    )


def load_collection(path: PathLike) -> RRCollection:
    """Read a collection previously written by :func:`save_collection`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise GraphFormatError(
                    f"{path}: unsupported collection format version {version}"
                )
            n = int(archive["n"])
            offsets = archive["rr_offsets"]
            nodes = archive["rr_nodes"]
    except (KeyError, ValueError, OSError) as exc:
        raise GraphFormatError(f"{path}: not a valid RR collection file: {exc}")

    collection = RRCollection(n)
    for i in range(offsets.shape[0] - 1):
        collection.append(nodes[offsets[i] : offsets[i + 1]])
    return collection
