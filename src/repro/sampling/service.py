"""Persistent shared-memory parallel RR-set sampling service.

The per-call :func:`repro.sampling.parallel.parallel_fill` spins up a
fresh process pool and re-pickles the whole CSR graph on every call,
so its fixed cost dwarfs the sampling work for the quotas OPIM-C's
doubling loop (Algorithm 2) actually requests.  :class:`SamplingPool`
amortizes that infrastructure across an entire algorithm run:

* the graph's six CSR arrays are copied **once** into
  ``multiprocessing.shared_memory`` segments; workers map them
  zero-copy and rebuild a :class:`~repro.graph.digraph.DiGraph` view
  without re-validating or re-sorting edges;
* a long-lived set of worker processes stays alive across all OPIM-C
  doubling iterations and OnlineOPIM pause/resume steps — each
  ``fill`` dispatches work to the already-warm workers;
* work is handed out in **adaptive chunks**: the requested quota is
  split proportionally (``ceil(quota / target_chunks)``) with a
  ``min_chunk`` floor, and idle workers pull the next chunk as soon as
  they finish, so a straggler chunk cannot serialize the fill;
* a crashed worker is respawned and only its outstanding chunk is
  re-issued **with the same chunk seed**, so output stays bitwise
  deterministic even across failures.

Determinism contract
--------------------
Chunk boundaries and chunk seeds depend only on the pool seed, the
chunk policy (``min_chunk`` / ``target_chunks``), and the *sequence of
``fill`` quotas* — never on the worker count or on scheduling.  Chunk
``i`` (globally indexed across fills) is seeded by
``SeedSequence(seed, spawn_key=(i,))`` and results are reassembled in
chunk order, so for a fixed seed the stream of RR sets is bitwise
identical for ``workers`` 1, 2, 4, ..., identical under worker
crashes, and identical to running the same chunk schedule serially
(which is exactly what ``workers=1`` does, in-process).

The pool implements the sampler duck type used by the core algorithms
(``fill`` / ``new_collection`` / ``sets_generated`` /
``edges_examined`` / ``universe_weight``), so it can be injected
anywhere an :class:`~repro.sampling.generator.RRSampler` is accepted.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import queue
import time
import traceback
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ParameterError, ServiceError
from repro.graph.digraph import DiGraph
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.kernel import AUTO_KERNEL, resolve_kernel
from repro.utils.rng import SeedLike, fresh_entropy

__all__ = [
    "SamplingPool",
    "chunk_schedule",
    "chunk_seed",
    "generate_chunk",
]

#: CSR arrays shared with workers (the complete DiGraph payload).
_GRAPH_ARRAYS = (
    "out_offsets",
    "out_targets",
    "out_probs",
    "in_offsets",
    "in_sources",
    "in_probs",
)

#: Default quota split: chunks per fill before the min-chunk floor.
DEFAULT_TARGET_CHUNKS = 8

#: Default smallest chunk worth a dispatch round-trip.
DEFAULT_MIN_CHUNK = 32


# ----------------------------------------------------------------------
# Chunk policy (pure functions — the determinism contract lives here)
# ----------------------------------------------------------------------
def chunk_schedule(
    count: int,
    start_index: int = 0,
    min_chunk: int = DEFAULT_MIN_CHUNK,
    target_chunks: int = DEFAULT_TARGET_CHUNKS,
) -> List[Tuple[int, int]]:
    """Split *count* RR sets into ``(chunk_index, chunk_count)`` pairs.

    The chunk size is quota-proportional (``ceil(count/target_chunks)``)
    with a floor of *min_chunk*; indices continue from *start_index*.
    The schedule depends only on these arguments — in particular not on
    the worker count — which is what makes pool output reproducible
    across ``workers`` values.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if min_chunk < 1:
        raise ParameterError(f"min_chunk must be >= 1, got {min_chunk}")
    if target_chunks < 1:
        raise ParameterError(
            f"target_chunks must be >= 1, got {target_chunks}"
        )
    size = max(min_chunk, math.ceil(count / target_chunks))
    schedule = []
    done = 0
    index = start_index
    while done < count:
        chunk = min(size, count - done)
        schedule.append((index, chunk))
        index += 1
        done += chunk
    return schedule


def chunk_seed(root_seed: int, chunk_index: int) -> int:
    """Deterministic child seed for global chunk *chunk_index*.

    Uses ``SeedSequence(root_seed, spawn_key=(chunk_index,))`` so every
    chunk's stream is independent, reproducible, and addressable by
    index alone — a respawned worker re-issues an outstanding chunk
    with the identical seed.
    """
    sequence = np.random.SeedSequence(root_seed, spawn_key=(chunk_index,))
    return int(sequence.generate_state(1)[0])


def generate_chunk(
    graph: DiGraph,
    model: str,
    fast: bool,
    seed: int,
    count: int,
    kernel: Optional[str] = AUTO_KERNEL,
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Generate one chunk of *count* RR sets with a fresh chunk sampler.

    Returns ``(flat_nodes, offsets, edges_examined, nodes_touched)``
    where ``flat_nodes[offsets[i]:offsets[i+1]]`` is the *i*-th RR set.
    Pure given its arguments: the parent (``workers=1``), a pool
    worker, and a crash-recovery re-issue all produce identical bytes.

    *kernel* selects the frontier-batched kernel of
    :mod:`repro.sampling.kernel` (overriding *fast*); the default
    ``"auto"`` consults ``$REPRO_KERNEL`` — the same resolution the
    pool performs, so a direct call and a pool chunk always agree.
    ``None`` pins the legacy samplers.
    """
    kernel = resolve_kernel(kernel)
    if kernel is not None:
        from repro.sampling.kernel import KernelRRSampler

        sampler: Any = KernelRRSampler(graph, model, seed=seed, kernel=kernel)
    elif fast:
        from repro.sampling.batch import BatchRRSampler

        sampler = BatchRRSampler(graph, model, seed=seed)
    else:
        from repro.sampling.generator import RRSampler

        sampler = RRSampler(graph, model, seed=seed)
    staging = RRCollection(graph.n)
    sampler.fill(staging, count)
    sets = staging.sets()
    sizes = np.fromiter((s.size for s in sets), dtype=np.int64, count=count)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = (
        np.concatenate(sets) if count else np.empty(0, dtype=np.int32)
    )
    return flat, offsets, int(sampler.edges_examined), int(sizes.sum())


# ----------------------------------------------------------------------
# Shared-memory graph transport
# ----------------------------------------------------------------------
def _share_graph(
    graph: DiGraph,
) -> Tuple[Dict[str, Any], List[shared_memory.SharedMemory], int]:
    """Copy the graph's CSR arrays into shared memory once.

    Returns ``(spec, segments, total_bytes)``; *spec* is a picklable
    recipe workers use to map the arrays zero-copy.
    """
    segments: List[shared_memory.SharedMemory] = []
    fields = []
    total = 0
    try:
        for attr in _GRAPH_ARRAYS:
            array = np.ascontiguousarray(getattr(graph, attr))
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            segments.append(segment)
            total += array.nbytes
            fields.append((attr, segment.name, array.dtype.str, array.shape))
    except BaseException:
        for segment in segments:
            segment.close()
            segment.unlink()
        raise
    spec = {"n": graph.n, "name": graph.name, "fields": fields}
    return spec, segments, total


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _attach_graph(
    spec: Dict[str, Any],
) -> Tuple[DiGraph, List[shared_memory.SharedMemory]]:
    """Rebuild a zero-copy DiGraph view over the parent's segments.

    Bypasses ``DiGraph.__init__`` (the arrays are already validated and
    CSR-sorted) and attaches each segment *untracked*: the parent is
    the segments' sole owner, and letting every worker register the
    same names with the shared ``resource_tracker`` would make worker
    exits warn about (or double-unlink) segments the parent still
    uses.  Python 3.13 exposes ``track=False`` for exactly this; on
    older versions registration is suppressed during the attach.
    """
    graph = object.__new__(DiGraph)
    graph.n = int(spec["n"])
    graph.name = str(spec["name"])
    graph.undirected_origin = False
    graph._in_prob_sums = None
    segments = []
    for attr, shm_name, dtype, shape in spec["fields"]:
        segment = _attach_untracked(shm_name)
        segments.append(segment)
        setattr(
            graph,
            attr,
            np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf),
        )
    return graph, segments


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _service_worker(
    worker_id: int,
    spec: Dict[str, Any],
    model: str,
    fast: bool,
    kernel: Optional[str],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Long-lived worker loop: attach the shm graph, then serve chunks.

    Tasks are ``(chunk_index, chunk_seed, count, crash, trace_id)``
    tuples; ``None`` is the shutdown sentinel.  A task with
    ``crash=True`` hard-exits the process (fault injection for the
    crash-recovery tests).  Generation errors are reported back, not
    raised, so a bad chunk does not silently hang the parent.

    Workers have no registry of their own: when a task carries a
    ``trace_id`` (a request trace is active in the parent), the worker
    buffers one span event per chunk — phase, elapsed, its pid, the
    chunk index and seed — and ships it back with the chunk result.
    The parent records the buffered spans into its own sink, which is
    what stitches worker-side work into the request's trace tree.
    """
    graph, segments = _attach_graph(spec)
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            index, seed, count, crash, trace_id = task
            if crash:
                os._exit(17)
            started = time.perf_counter()
            try:
                flat, offsets, edges, nodes = generate_chunk(
                    graph, model, fast, seed, count, kernel=kernel
                )
            except BaseException:
                result_queue.put(
                    ("err", worker_id, index, traceback.format_exc())
                )
                continue
            elapsed = time.perf_counter() - started
            spans = []
            if trace_id is not None:
                spans.append(
                    {
                        "phase": "service/chunk",
                        "elapsed": elapsed,
                        "trace_id": trace_id,
                        "worker_pid": os.getpid(),
                        "chunk_index": index,
                        "chunk_seed": seed,
                        "rr_sets": count,
                        "counters": {"sampling.rr_sets": count},
                    }
                )
            result_queue.put(
                (
                    "ok",
                    worker_id,
                    index,
                    flat,
                    offsets,
                    edges,
                    nodes,
                    elapsed,
                    spans,
                )
            )
    finally:
        for segment in segments:
            segment.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class SamplingPool:
    """Persistent zero-copy parallel RR-set sampler (see module docs).

    Parameters
    ----------
    graph:
        Weighted :class:`DiGraph`.
    model:
        ``"IC"`` or ``"LT"``.
    workers:
        Worker processes; ``1`` runs the identical chunk schedule
        in-process (the serial reference the determinism tests compare
        against).
    seed:
        Root seed; chunk ``i`` derives its stream from
        ``SeedSequence(seed, spawn_key=(i,))``.  ``None`` draws one
        replayable entropy value (recorded in
        :func:`repro.utils.rng.auto_entropy_log`).
    fast:
        Use the vectorized :class:`~repro.sampling.batch.BatchRRSampler`
        inside each chunk.
    kernel:
        Frontier-batched kernel for chunk generation (see
        :mod:`repro.sampling.kernel`); overrides *fast* when set.  The
        default ``"auto"`` consults ``$REPRO_KERNEL``; ``None`` pins
        the legacy samplers.  Part of the determinism contract: the
        resolved value is recorded in :meth:`state` and must match on
        restore.
    min_chunk, target_chunks:
        Chunk policy (see :func:`chunk_schedule`).  Both are part of
        the determinism contract: change them and the stream changes.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; the pool
        maintains ``service.chunks`` / ``service.worker_restarts`` /
        ``parallel.workers_capped`` counters, the ``service.shm_bytes``
        gauge, and the ``service.chunk_seconds`` latency distribution,
        plus the standard ``sampling.*`` counters.
    inject_crash_chunks:
        Fault-injection hook for tests: global chunk indices whose
        first dispatch hard-kills the executing worker.  The pool
        respawns the worker and re-issues the chunk (crash-once
        semantics), exercising the recovery path deterministically.
    max_restarts:
        Abort with :class:`ServiceError` after this many worker
        respawns (guards against a deterministically crashing chunk).

    Examples
    --------
    >>> from repro.graph import power_law_graph, assign_wc_weights
    >>> g = assign_wc_weights(power_law_graph(120, 5, seed=7))
    >>> with SamplingPool(g, "IC", workers=1, seed=3) as pool:
    ...     rr = pool.new_collection(100)
    >>> len(rr)
    100
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        workers: int = 2,
        seed: SeedLike = None,
        fast: bool = True,
        kernel: Optional[str] = AUTO_KERNEL,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        target_chunks: int = DEFAULT_TARGET_CHUNKS,
        registry: Optional[object] = None,
        inject_crash_chunks: Optional[Set[int]] = None,
        max_restarts: int = 8,
    ) -> None:
        model = model.upper()
        if model not in ("IC", "LT"):
            raise ParameterError(f"model must be 'IC' or 'LT', got {model!r}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if not graph.weighted:
            raise ParameterError(
                "graph has no edge probabilities; apply a weighting scheme first"
            )
        if min_chunk < 1:
            raise ParameterError(f"min_chunk must be >= 1, got {min_chunk}")
        if target_chunks < 1:
            raise ParameterError(
                f"target_chunks must be >= 1, got {target_chunks}"
            )
        if max_restarts < 0:
            raise ParameterError(
                f"max_restarts must be non-negative, got {max_restarts}"
            )
        self.graph = graph
        self.model = model
        self.workers = int(workers)
        self.fast = bool(fast)
        self.kernel = resolve_kernel(kernel)
        self.min_chunk = int(min_chunk)
        self.target_chunks = int(target_chunks)
        self.max_restarts = int(max_restarts)
        self.obs = resolve_registry(registry)
        self._crash_chunks = set(inject_crash_chunks or ())

        if isinstance(seed, np.random.SeedSequence):
            entropy = seed.entropy
            if isinstance(entropy, (tuple, list)):  # pragma: no cover
                entropy = entropy[0]
            self.seed = int(entropy)
        elif isinstance(seed, np.random.Generator):
            self.seed = int(seed.integers(0, 2**63 - 1))
        elif seed is None:
            self.seed = fresh_entropy("SamplingPool")
        else:
            self.seed = int(seed)

        # Sampler duck-type accounting.
        self.universe_weight = float(graph.n)
        self.sets_generated = 0
        self.edges_examined = 0
        self.nodes_touched = 0
        #: Cumulative wall-clock seconds spent inside :meth:`fill` —
        #: the serve engine reads deltas of this to attribute request
        #: time to sampling vs. selection.
        self.fill_seconds = 0.0
        #: Worker respawns performed so far (crash recoveries).
        self.restarts = 0
        self._next_chunk = 0
        self._closed = False

        self._segments: List[shared_memory.SharedMemory] = []
        self._segment_names: List[str] = []
        self._procs: List[Optional[mp.process.BaseProcess]] = []
        self._task_queues: List[Any] = []
        self._result_queue: Optional[Any] = None
        self._context: Optional[Any] = None

        self._spec, self._segments, shm_bytes = _share_graph(graph)
        self._segment_names = [s.name for s in self._segments]
        self.obs.set_gauge("service.shm_bytes", shm_bytes)
        try:
            if self.workers > 1:
                methods = mp.get_all_start_methods()
                self._context = mp.get_context(
                    "fork" if "fork" in methods else None
                )
                self._result_queue = self._context.Queue()
                for worker_id in range(self.workers):
                    self._procs.append(None)
                    self._task_queues.append(None)
                    self._spawn_worker(worker_id)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def segment_names(self) -> List[str]:
        """Names of the shared-memory segments (leak-test oracle)."""
        return list(self._segment_names)

    def _spawn_worker(self, worker_id: int) -> None:
        assert self._context is not None
        task_queue = self._context.SimpleQueue()
        process = self._context.Process(
            target=_service_worker,
            args=(
                worker_id,
                self._spec,
                self.model,
                self.fast,
                self.kernel,
                task_queue,
                self._result_queue,
            ),
            daemon=True,
            name=f"sampling-pool-{worker_id}",
        )
        process.start()
        self._task_queues[worker_id] = task_queue
        self._procs[worker_id] = process

    def close(self) -> None:
        """Shut workers down and unlink every shared-memory segment.

        Idempotent; also invoked by ``__exit__`` (including on
        exceptions) and as a last resort by ``__del__``.
        """
        if self._closed:
            return
        self._closed = True
        for task_queue, process in zip(self._task_queues, self._procs):
            if process is not None and process.is_alive():
                try:
                    task_queue.put(None)
                except Exception:  # pragma: no cover - broken pipe path
                    pass
        for process in self._procs:
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
            self._result_queue = None
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._procs = []
        self._task_queues = []

    def __enter__(self) -> "SamplingPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- sampling -------------------------------------------------------
    def fill(self, collection: RRCollection, count: int) -> None:
        """Append *count* fresh RR sets to *collection* (chunk order)."""
        if self._closed:
            raise ServiceError("SamplingPool is closed")
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if collection.n != self.graph.n:
            raise ParameterError(
                "collection node universe does not match the pool's graph"
            )
        if count == 0:
            return
        schedule = chunk_schedule(
            count, self._next_chunk, self.min_chunk, self.target_chunks
        )
        self._next_chunk += len(schedule)
        tasks = [
            (index, chunk_seed(self.seed, index), chunk)
            for index, chunk in schedule
        ]
        fill_started = time.perf_counter()
        with self.obs.trace("service/fill"):
            if self.workers == 1:
                results = self._run_serial(tasks)
            else:
                results = self._run_parallel(tasks)
        self.fill_seconds += time.perf_counter() - fill_started
        edges = nodes = 0
        for index, _seed, _chunk in tasks:
            flat, offsets, chunk_edges, chunk_nodes = results[index]
            edges += chunk_edges
            nodes += chunk_nodes
            for i in range(offsets.shape[0] - 1):
                collection.append(flat[offsets[i] : offsets[i + 1]])
        self.sets_generated += count
        self.edges_examined += edges
        self.nodes_touched += nodes
        obs = self.obs
        obs.count("service.chunks", len(tasks))
        obs.count("sampling.rr_sets", count)
        obs.count("sampling.edges", edges)
        obs.count("sampling.nodes", nodes)

    def new_collection(self, count: int = 0) -> RRCollection:
        """Create a collection over the pool's graph, optionally filled."""
        collection = RRCollection(self.graph.n)
        if count:
            self.fill(collection, count)
        return collection

    # -- resumable stream state ----------------------------------------
    def state(self) -> Dict[str, Any]:
        """Snapshot of the deterministic stream position.

        Because chunk seeds are a pure function of ``(seed, index)``,
        the pool's entire sampling state is its root seed, the chunk
        policy, and the next global chunk index.  Persisting this dict
        (see :mod:`repro.serve.index`) and restoring it into a pool
        constructed with the same seed and policy continues the exact
        RR-set stream the original process would have produced.
        """
        return {
            "kind": "pool",
            "seed": self.seed,
            "kernel": self.kernel,
            "min_chunk": self.min_chunk,
            "target_chunks": self.target_chunks,
            "next_chunk": self._next_chunk,
            "sets_generated": self.sets_generated,
            "edges_examined": self.edges_examined,
            "nodes_touched": self.nodes_touched,
        }

    @classmethod
    def from_state(
        cls,
        graph: DiGraph,
        model: str,
        state: Dict[str, Any],
        *,
        workers: int = 2,
        fast: bool = True,
        registry: Optional[object] = None,
        **kwargs: Any,
    ) -> "SamplingPool":
        """Build a pool resuming the stream captured by :meth:`state`.

        The handoff path for a respawned cluster worker: the dict
        persisted in the sketch index carries the root seed and chunk
        policy, so the new pool — possibly with a *different* worker
        count, which the determinism contract allows — continues the
        exact RR-set stream the crashed process would have produced.
        """
        if state.get("kind") != "pool":
            raise ParameterError(
                f"cannot hand off sampler state of kind {state.get('kind')!r} "
                "to a SamplingPool"
            )
        pool = cls(
            graph,
            model,
            workers=workers,
            seed=int(state["seed"]),
            fast=fast,
            # A state captured before the kernel switch existed pins the
            # legacy samplers (None), regardless of $REPRO_KERNEL.
            kernel=state.get("kernel"),
            min_chunk=int(state["min_chunk"]),
            target_chunks=int(state["target_chunks"]),
            registry=registry,
            **kwargs,
        )
        try:
            pool.restore_state(state)
        except BaseException:
            pool.close()
            raise
        return pool

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Resume the deterministic stream from a :meth:`state` dict.

        The pool must have been constructed with the same seed and
        chunk policy the state was captured under — those are part of
        the determinism contract, so a mismatch is an error rather
        than a silent stream change.
        """
        for field in ("seed", "min_chunk", "target_chunks"):
            if int(state[field]) != int(getattr(self, field)):
                raise ParameterError(
                    f"cannot restore sampling state: {field} was "
                    f"{state[field]} at capture but the pool has "
                    f"{getattr(self, field)}"
                )
        if state.get("kernel") != self.kernel:
            raise ParameterError(
                f"cannot restore sampling state: kernel was "
                f"{state.get('kernel')!r} at capture but the pool runs "
                f"{self.kernel!r}; use the matching kernel to keep the "
                "stream deterministic"
            )
        if self._next_chunk != 0 or self.sets_generated != 0:
            raise ParameterError(
                "cannot restore sampling state into a pool that has "
                "already generated RR sets"
            )
        self._next_chunk = int(state["next_chunk"])
        self.sets_generated = int(state["sets_generated"])
        self.edges_examined = int(state["edges_examined"])
        self.nodes_touched = int(state["nodes_touched"])

    # -- execution backends --------------------------------------------
    def _run_serial(
        self, tasks: Sequence[Tuple[int, int, int]]
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, int, int]]:
        """In-process chunk execution: the ``workers=1`` reference path."""
        results = {}
        for index, seed, chunk in tasks:
            started = time.perf_counter()
            results[index] = generate_chunk(
                self.graph, self.model, self.fast, seed, chunk,
                kernel=self.kernel,
            )
            elapsed = time.perf_counter() - started
            self._observe_chunk(elapsed)
            if self.obs.current_trace() is not None:
                self.obs.record(
                    "span",
                    phase="service/chunk",
                    elapsed=elapsed,
                    worker_pid=os.getpid(),
                    chunk_index=index,
                    chunk_seed=seed,
                    rr_sets=chunk,
                    counters={"sampling.rr_sets": chunk},
                )
        return results

    def _run_parallel(
        self, tasks: Sequence[Tuple[int, int, int]]
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, int, int]]:
        """Adaptive dispatch: idle workers pull chunks; crashes recover."""
        assert self._result_queue is not None
        pending = deque(tasks)
        outstanding: Dict[int, Tuple[int, int, int]] = {}
        idle = deque(
            worker_id
            for worker_id, process in enumerate(self._procs)
            if process is not None
        )
        results: Dict[int, Tuple[np.ndarray, np.ndarray, int, int]] = {}
        while len(results) < len(tasks):
            while pending and idle:
                worker_id = idle.popleft()
                self._dispatch(worker_id, pending.popleft(), outstanding)
            try:
                message = self._result_queue.get(timeout=0.05)
            except queue.Empty:
                self._recover_workers(outstanding, idle)
                continue
            if message[0] == "err":
                _, worker_id, index, text = message
                raise ServiceError(
                    f"worker {worker_id} failed on chunk {index}:\n{text}"
                )
            (
                _,
                worker_id,
                index,
                flat,
                offsets,
                edges,
                nodes,
                elapsed,
                spans,
            ) = message
            results[index] = (flat, offsets, edges, nodes)
            outstanding.pop(worker_id, None)
            idle.append(worker_id)
            self._observe_chunk(elapsed)
            for event in spans:
                # Worker-buffered span events, replayed into our sink so
                # the request's trace tree includes cross-process work.
                self.obs.record("span", **event)
        return results

    def _observe_chunk(self, elapsed: float) -> None:
        self.obs.observe("service.chunk_seconds", elapsed)
        self.obs.histogram("service.chunk_seconds").observe(elapsed)

    def _dispatch(
        self,
        worker_id: int,
        task: Tuple[int, int, int],
        outstanding: Dict[int, Tuple[int, int, int]],
    ) -> None:
        index, seed, chunk = task
        crash = index in self._crash_chunks
        if crash:
            # Crash-once semantics: the recovery re-issue runs clean.
            self._crash_chunks.discard(index)
        outstanding[worker_id] = task
        self._task_queues[worker_id].put(
            (index, seed, chunk, crash, self.obs.current_trace())
        )

    def _recover_workers(
        self,
        outstanding: Dict[int, Tuple[int, int, int]],
        idle: "deque[int]",
    ) -> None:
        """Respawn dead workers; re-issue their outstanding chunks.

        The re-issued chunk keeps its original seed (chunk seeds are a
        pure function of the chunk index), so recovery cannot change
        the output stream.
        """
        for worker_id, process in enumerate(self._procs):
            if process is None or process.is_alive():
                continue
            process.join()
            self.restarts += 1
            self.obs.count("service.worker_restarts")
            if self.restarts > self.max_restarts:
                raise ServiceError(
                    f"worker {worker_id} died (exit code "
                    f"{process.exitcode}); restart budget of "
                    f"{self.max_restarts} exhausted"
                )
            self._spawn_worker(worker_id)
            task = outstanding.pop(worker_id, None)
            if task is not None:
                self._dispatch(worker_id, task, outstanding)
            elif worker_id not in idle:  # pragma: no cover - idle death
                idle.append(worker_id)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SamplingPool(graph={self.graph.name!r}, model={self.model!r}, "
            f"workers={self.workers}, seed={self.seed}, {state})"
        )
