"""Walker's alias method for O(1) discrete sampling (Walker 1977).

The LT-model RR-set sampler performs a reverse random walk that, at each
node, picks one in-neighbor with probability proportional to the edge
weight.  The alias method makes each pick O(1) after O(d) preprocessing
per node, which is what gives LT RR-set generation its
``O(E[sigma({v})])`` expected cost (paper, Appendix A).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.rng import SeedLike, as_generator


def build_alias_arrays(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Build alias-method tables for one discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights (not necessarily normalized), length ``d``.

    Returns
    -------
    (accept, alias):
        ``accept[i]`` is the probability of keeping column ``i``;
        ``alias[i]`` is the fallback outcome for column ``i``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ParameterError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ParameterError("weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise ParameterError("weights must have positive sum")

    d = weights.size
    scaled = weights * (d / total)
    accept = np.ones(d, dtype=np.float64)
    alias = np.arange(d, dtype=np.int64)

    small = [i for i in range(d) if scaled[i] < 1.0]
    large = [i for i in range(d) if scaled[i] >= 1.0]
    scaled = scaled.copy()
    while small and large:
        s = small.pop()
        l = large.pop()
        accept[s] = scaled[s]
        alias[s] = l
        scaled[l] = scaled[l] - (1.0 - scaled[s])
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    # Residual columns (numerical leftovers) keep accept = 1.
    return accept, alias


class AliasTable:
    """Sampler over ``{0, .., d-1}`` with probabilities ``weights/sum``.

    >>> table = AliasTable([1.0, 3.0])
    >>> counts = np.bincount(table.sample(10000, seed=0), minlength=2)
    >>> bool(counts[1] > counts[0])
    True
    """

    def __init__(self, weights: np.ndarray) -> None:
        self.accept, self.alias = build_alias_arrays(weights)
        self.d = self.accept.shape[0]

    def sample(self, size: int = None, seed: SeedLike = None):
        """Draw one index (``size=None``) or an array of indices."""
        rng = as_generator(seed)
        if size is None:
            column = int(rng.integers(0, self.d))
            if rng.random() < self.accept[column]:
                return column
            return int(self.alias[column])
        columns = rng.integers(0, self.d, size=size)
        keep = rng.random(size) < self.accept[columns]
        return np.where(keep, columns, self.alias[columns]).astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """Reconstruct the sampling distribution (for testing).

        Each column contributes ``accept/d`` to itself and
        ``(1-accept)/d`` to its alias.
        """
        probs = np.zeros(self.d, dtype=np.float64)
        np.add.at(probs, np.arange(self.d), self.accept / self.d)
        np.add.at(probs, self.alias, (1.0 - self.accept) / self.d)
        return probs
