"""Reverse influence sampling: alias tables, RR-set samplers, collections."""

from repro.sampling.alias import AliasTable
from repro.sampling.batch import BatchRRSampler
from repro.sampling.collection import RRCollection
from repro.sampling.generator import RRSampler
from repro.sampling.hop import HopEstimator
from repro.sampling.kernel import (
    KernelRRSampler,
    resolve_kernel,
    sample_rr_sets_kernel,
)
from repro.sampling.rrset_ic import sample_rr_set_ic
from repro.sampling.rrset_ic_uniform import UniformICSampler
from repro.sampling.rrset_lt import LTAliasTables, sample_rr_set_lt
from repro.sampling.parallel import parallel_fill
from repro.sampling.rrset_triggering import (
    TriggeringRRSampler,
    fixed_size_triggering_sets,
    ic_triggering_sets,
    lt_triggering_sets,
    sample_rr_set_triggering,
)
from repro.sampling.serialize import load_collection, save_collection
from repro.sampling.service import SamplingPool, chunk_schedule, chunk_seed

__all__ = [
    "AliasTable",
    "RRCollection",
    "RRSampler",
    "BatchRRSampler",
    "KernelRRSampler",
    "HopEstimator",
    "SamplingPool",
    "resolve_kernel",
    "sample_rr_sets_kernel",
    "UniformICSampler",
    "chunk_schedule",
    "chunk_seed",
    "parallel_fill",
    "sample_rr_set_ic",
    "sample_rr_set_lt",
    "LTAliasTables",
    "TriggeringRRSampler",
    "sample_rr_set_triggering",
    "ic_triggering_sets",
    "lt_triggering_sets",
    "fixed_size_triggering_sets",
    "save_collection",
    "load_collection",
]
