"""Random RR-set generation under the IC model (paper, Appendix A).

An RR set rooted at ``v`` is produced by a *reverse stochastic BFS*:
starting from ``v`` and walking incoming edges, each in-edge
``<w, u>`` is traversed with probability ``p(w, u)``.  The RR set is the
set of nodes reached.  The sampler counts the edges it examines, which
is the cost measure (gamma) in Borgs et al.'s online algorithm.

To keep per-sample overhead low in Python, callers reuse a
:class:`Scratch` object holding a stamped visited array and a
preallocated queue, so no O(n) clearing happens between samples.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.digraph import DiGraph


class Scratch:
    """Reusable per-graph working memory for reverse BFS sampling."""

    __slots__ = ("visited", "stamp", "queue")

    def __init__(self, n: int) -> None:
        self.visited = np.zeros(n, dtype=np.int64)
        self.stamp = 0
        self.queue = np.empty(n, dtype=np.int32)

    def next_stamp(self) -> int:
        self.stamp += 1
        return self.stamp


def sample_rr_set_ic(
    graph: DiGraph,
    root: int,
    rng: np.random.Generator,
    scratch: Optional[Scratch] = None,
    stats=None,
) -> Tuple[np.ndarray, int]:
    """Sample one IC-model RR set rooted at *root*.

    Returns
    -------
    (nodes, edges_examined):
        ``nodes`` is an int32 array whose first element is *root*;
        ``edges_examined`` counts every in-edge whose coin was flipped.

    ``stats`` is an optional :class:`repro.obs.RRSetStats` hook that
    observes the node/edge count of the sampled set (only passed when a
    metrics registry is enabled).
    """
    if scratch is None:
        scratch = Scratch(graph.n)
    stamp = scratch.next_stamp()
    visited = scratch.visited
    queue = scratch.queue

    visited[root] = stamp
    queue[0] = root
    head, tail = 0, 1
    edges_examined = 0

    in_offsets = graph.in_offsets
    in_sources = graph.in_sources
    in_probs = graph.in_probs

    while head < tail:
        u = int(queue[head])
        head += 1
        lo, hi = in_offsets[u], in_offsets[u + 1]
        width = int(hi - lo)
        if width == 0:
            continue
        edges_examined += width
        sources = in_sources[lo:hi]
        coins = rng.random(width)
        hit = sources[coins < in_probs[lo:hi]]
        if hit.size == 0:
            continue
        fresh = hit[visited[hit] != stamp]
        if fresh.size == 0:
            continue
        visited[fresh] = stamp
        queue[tail : tail + fresh.size] = fresh
        tail += fresh.size

    if stats is not None:
        stats.observe_set(tail, edges_examined)
    return queue[:tail].copy(), edges_examined
