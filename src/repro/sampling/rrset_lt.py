"""Random RR-set generation under the LT model (paper, Appendix A).

An LT RR set rooted at ``v`` is a *reverse random walk*: at the current
node ``u`` the walk stops with probability ``1 - sum_w p(w, u)`` and
otherwise moves to one in-neighbor ``x`` chosen with probability
proportional to ``p(x, u)``.  The walk also stops upon revisiting a
node (under the LT live-edge interpretation each node selects at most
one incoming edge, so the reverse reachable subgraph is a path until it
closes a cycle).

Per-node alias tables (:class:`LTAliasTables`) make each step O(1), as
in the paper's Appendix A, after an O(n + m) preprocessing pass.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.digraph import DiGraph
from repro.sampling.alias import build_alias_arrays
from repro.sampling.rrset_ic import Scratch


class LTAliasTables:
    """Per-node alias tables over in-neighbors, laid out flat in CSR order.

    For node ``u`` with in-edges in ``[lo, hi)`` of the in-CSR arrays:

    * ``continue_prob[u]`` is ``sum_w p(w, u)`` (clipped to 1), the
      probability that the reverse walk continues past ``u``;
    * ``accept[lo:hi]`` / ``alias[lo:hi]`` are Walker tables over the
      local in-neighbor indices ``0 .. hi-lo-1``.
    """

    __slots__ = ("graph", "accept", "alias", "continue_prob")

    def __init__(self, graph: DiGraph) -> None:
        graph.validate_lt()
        self.graph = graph
        m = graph.m
        self.accept = np.ones(m, dtype=np.float64)
        self.alias = np.zeros(m, dtype=np.int64)
        self.continue_prob = np.minimum(graph.in_prob_sums(), 1.0)

        offsets = graph.in_offsets
        probs = graph.in_probs
        for u in range(graph.n):
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            if hi - lo == 0:
                continue
            local = probs[lo:hi]
            if local.sum() <= 0.0:
                # All-zero in-probabilities: the walk never continues
                # past u, so the table content is irrelevant.
                self.continue_prob[u] = 0.0
                continue
            accept, alias = build_alias_arrays(local)
            self.accept[lo:hi] = accept
            self.alias[lo:hi] = alias

    def sample_in_neighbor(self, u: int, rng: np.random.Generator) -> int:
        """Draw one in-neighbor of *u* (assumes in-degree > 0)."""
        lo = int(self.graph.in_offsets[u])
        hi = int(self.graph.in_offsets[u + 1])
        d = hi - lo
        column = int(rng.integers(0, d))
        if rng.random() >= self.accept[lo + column]:
            column = int(self.alias[lo + column])
        return int(self.graph.in_sources[lo + column])


def sample_rr_set_lt(
    graph: DiGraph,
    root: int,
    rng: np.random.Generator,
    tables: LTAliasTables,
    scratch: Optional[Scratch] = None,
    stats=None,
) -> Tuple[np.ndarray, int]:
    """Sample one LT-model RR set rooted at *root*.

    Returns ``(nodes, edges_examined)`` where the edge count increments
    once per walk step (each step examines one sampled in-edge in O(1),
    per the alias-method analysis in Appendix A).  ``stats`` is an
    optional :class:`repro.obs.RRSetStats` hook observing the walk's
    node/edge counts (only passed when a metrics registry is enabled).
    """
    if scratch is None:
        scratch = Scratch(graph.n)
    stamp = scratch.next_stamp()
    visited = scratch.visited
    path = scratch.queue

    visited[root] = stamp
    path[0] = root
    length = 1
    edges_examined = 0

    u = root
    continue_prob = tables.continue_prob
    while True:
        cp = continue_prob[u]
        if cp <= 0.0 or rng.random() >= cp:
            break
        edges_examined += 1
        w = tables.sample_in_neighbor(u, rng)
        if visited[w] == stamp:
            break
        visited[w] = stamp
        path[length] = w
        length += 1
        u = w

    if stats is not None:
        stats.observe_set(length, edges_examined)
    return path[:length].copy(), edges_examined
