"""IC RR-set sampling specialized for per-node-uniform probabilities.

Under weighted-cascade weighting (the paper's default) every in-edge
of a node ``v`` carries the same probability ``p_v = 1/in_degree(v)``.
The generic sampler flips ``in_degree(v)`` coins per visited node; for
a hub with thousands of followers that is thousands of RNG calls for
an expected *one* success.  When all of a node's in-probabilities are
equal, the set of successful edges can instead be drawn directly:

1. draw ``s ~ Binomial(d, p_v)`` — the number of live in-edges;
2. choose ``s`` of the ``d`` in-edges uniformly without replacement.

This is exactly the subset-sampling shortcut of SUBSIM (Guo et al.
2020), which post-dates the paper; it changes no distribution (the
live-edge indicator vector of i.i.d. Bernoulli(p) coins is exchangeable,
so conditioning on the count makes the positions a uniform subset).
In this numpy implementation the per-node interpreter overhead already
amortizes the generic sampler's vectorized coin flips, so the shortcut
pays off only in the high-degree regime (measured ~1.4x on a WC
complete graph, roughly neutral at average degree ~35); it is provided
for dense instances and as a faithful reference of the technique.

``edges_examined`` accounting keeps the *paper's* cost model — every
in-edge of a visited node counts as examined — so Borgs-style gamma
budgets remain comparable across samplers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.rrset_ic import Scratch


def uniform_in_probabilities(graph: DiGraph) -> Optional[np.ndarray]:
    """Per-node probability if each node's in-edges share one value.

    Returns the length-n array of per-node probabilities (0 for nodes
    without in-edges), or ``None`` if any node has mixed values — the
    eligibility check for :func:`sample_rr_set_ic_uniform`.
    """
    if not graph.weighted:
        return None
    probs = np.zeros(graph.n, dtype=np.float64)
    offsets = graph.in_offsets
    in_probs = graph.in_probs
    for v in range(graph.n):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        if hi == lo:
            continue
        local = in_probs[lo:hi]
        first = local[0]
        if np.any(local != first):
            return None
        probs[v] = first
    return probs


def sample_rr_set_ic_uniform(
    graph: DiGraph,
    root: int,
    rng: np.random.Generator,
    node_probs: np.ndarray,
    scratch: Scratch = None,
) -> Tuple[np.ndarray, int]:
    """Sample one IC RR set using binomial subset draws per node.

    *node_probs* must come from :func:`uniform_in_probabilities` on the
    same graph.  Distributionally identical to
    :func:`repro.sampling.rrset_ic.sample_rr_set_ic`.
    """
    if scratch is None:
        scratch = Scratch(graph.n)
    stamp = scratch.next_stamp()
    visited = scratch.visited
    queue = scratch.queue

    visited[root] = stamp
    queue[0] = root
    head, tail = 0, 1
    edges_examined = 0

    in_offsets = graph.in_offsets
    in_sources = graph.in_sources

    while head < tail:
        u = int(queue[head])
        head += 1
        lo, hi = int(in_offsets[u]), int(in_offsets[u + 1])
        degree = hi - lo
        if degree == 0:
            continue
        edges_examined += degree
        p = node_probs[u]
        if p <= 0.0:
            continue
        successes = int(rng.binomial(degree, p))
        if successes == 0:
            continue
        if successes >= degree:
            hit = in_sources[lo:hi]
        elif successes <= 16:
            # Floyd's algorithm: O(successes) draws regardless of the
            # degree — the common case under WC weights, where the
            # expected success count is 1.
            chosen = set()
            for j in range(degree - successes, degree):
                t = int(rng.integers(0, j + 1))
                if t in chosen:
                    chosen.add(j)
                else:
                    chosen.add(t)
            hit = in_sources[lo + np.fromiter(chosen, dtype=np.int64)]
        else:
            picks = rng.choice(degree, size=successes, replace=False)
            hit = in_sources[lo + picks]
        fresh = hit[visited[hit] != stamp]
        if fresh.size == 0:
            continue
        visited[fresh] = stamp
        queue[tail : tail + fresh.size] = fresh
        tail += fresh.size

    return queue[:tail].copy(), edges_examined


class UniformICSampler:
    """RRSampler-compatible sampler using the binomial shortcut.

    Raises :class:`ParameterError` at construction if the graph is not
    per-node-uniform (use :class:`~repro.sampling.generator.RRSampler`
    or detect eligibility with :func:`uniform_in_probabilities`).
    """

    def __init__(self, graph: DiGraph, seed=None) -> None:
        from repro.utils.rng import as_generator

        node_probs = uniform_in_probabilities(graph)
        if node_probs is None:
            raise ParameterError(
                "graph is not per-node-uniform; the binomial shortcut "
                "does not apply (use RRSampler)"
            )
        self.graph = graph
        self.model = "IC"
        self.node_probs = node_probs
        self.rng = as_generator(seed)
        self.edges_examined = 0
        self.sets_generated = 0
        self.universe_weight = float(graph.n)
        self._scratch = Scratch(graph.n)

    def sample_one(self, root: Optional[int] = None) -> np.ndarray:
        if root is None:
            root = int(self.rng.integers(0, self.graph.n))
        elif not 0 <= root < self.graph.n:
            raise ParameterError(f"root {root} out of range")
        nodes, edges = sample_rr_set_ic_uniform(
            self.graph, root, self.rng, self.node_probs, self._scratch
        )
        self.edges_examined += edges
        self.sets_generated += 1
        return nodes

    def fill(self, collection, count: int) -> None:
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if collection.n != self.graph.n:
            raise ParameterError(
                "collection node universe does not match the sampler's graph"
            )
        for _ in range(count):
            collection.append(self.sample_one())

    def new_collection(self, count: int = 0):
        from repro.sampling.collection import RRCollection

        collection = RRCollection(self.graph.n)
        if count:
            self.fill(collection, count)
        return collection
