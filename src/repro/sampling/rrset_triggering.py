"""Random RR-set generation under the general triggering model.

The triggering model (Kempe et al. 2003; paper Section 6 and Appendix
A) subsumes IC and LT: each node ``v`` independently samples a
*triggering set* ``T(v)`` from a distribution over subsets of its
in-neighbors, and a live-edge graph keeps exactly the edges
``<w, v>`` with ``w in T(v)``.

A random RR set rooted at ``v`` is then the set of nodes that reach
``v`` in the live-edge graph — computable *lazily* by a reverse BFS
that samples ``T(u)`` only for nodes ``u`` it actually reaches.  This
module implements that lazy reverse traversal for an arbitrary
triggering-set sampler, which lets :class:`TriggeringRRSampler` (and
therefore OPIM / OPIM-C, via their ``sampler`` injection point) run on
any triggering-model instance, exactly as the paper's Section 6
analysis permits.

Provided triggering-set samplers:

* :func:`ic_triggering_sets` — each in-edge enters independently with
  its probability (recovers the IC RR distribution);
* :func:`lt_triggering_sets` — at most one in-edge, chosen with
  probability proportional to its weight (recovers LT);
* :func:`fixed_size_triggering_sets` — a uniform random subset of
  exactly ``min(r, in_degree)`` in-neighbors, a simple non-IC/LT
  instance used in tests and ablations.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.alias import build_alias_arrays
from repro.sampling.rrset_ic import Scratch

#: ``f(node, rng) -> array of sampled in-neighbors`` (the node's T(v)).
TriggeringSetSampler = Callable[[int, np.random.Generator], np.ndarray]


def ic_triggering_sets(graph: DiGraph) -> TriggeringSetSampler:
    """IC as a triggering model: independent per-edge inclusion."""
    if not graph.weighted:
        raise ParameterError("graph must be weighted")
    offsets, sources, probs = graph.in_offsets, graph.in_sources, graph.in_probs

    def sample(node: int, rng: np.random.Generator) -> np.ndarray:
        lo, hi = offsets[node], offsets[node + 1]
        if hi == lo:
            return sources[:0]
        keep = rng.random(int(hi - lo)) < probs[lo:hi]
        return sources[lo:hi][keep]

    return sample


def lt_triggering_sets(graph: DiGraph) -> TriggeringSetSampler:
    """LT as a triggering model: at most one in-neighbor, alias-sampled."""
    graph.validate_lt()
    offsets, sources, probs = graph.in_offsets, graph.in_sources, graph.in_probs
    continue_prob = np.minimum(graph.in_prob_sums(), 1.0)

    accept = np.ones(graph.m, dtype=np.float64)
    alias = np.zeros(graph.m, dtype=np.int64)
    for u in range(graph.n):
        lo, hi = int(offsets[u]), int(offsets[u + 1])
        if hi - lo and probs[lo:hi].sum() > 0.0:
            a, al = build_alias_arrays(probs[lo:hi])
            accept[lo:hi] = a
            alias[lo:hi] = al

    def sample(node: int, rng: np.random.Generator) -> np.ndarray:
        cp = continue_prob[node]
        if cp <= 0.0 or rng.random() >= cp:
            return sources[:0]
        lo, hi = int(offsets[node]), int(offsets[node + 1])
        column = int(rng.integers(0, hi - lo))
        if rng.random() >= accept[lo + column]:
            column = int(alias[lo + column])
        return sources[lo + column : lo + column + 1]

    return sample


def fixed_size_triggering_sets(graph: DiGraph, r: int) -> TriggeringSetSampler:
    """Each node's T(v) is a uniform subset of ``min(r, d)`` in-neighbors.

    Not an IC/LT instance (inclusion is negatively correlated), which
    is exactly why tests use it to exercise the generic path.
    """
    if r < 0:
        raise ParameterError(f"r must be non-negative, got {r}")
    offsets, sources = graph.in_offsets, graph.in_sources

    def sample(node: int, rng: np.random.Generator) -> np.ndarray:
        lo, hi = int(offsets[node]), int(offsets[node + 1])
        d = hi - lo
        if d == 0 or r == 0:
            return sources[:0]
        if r >= d:
            return sources[lo:hi]
        picks = rng.choice(d, size=r, replace=False)
        return sources[lo + picks]

    return sample


def sample_rr_set_triggering(
    graph: DiGraph,
    root: int,
    rng: np.random.Generator,
    triggering_sets: TriggeringSetSampler,
    scratch: Optional[Scratch] = None,
    stats=None,
) -> Tuple[np.ndarray, int]:
    """Sample one RR set under the triggering model given by
    *triggering_sets*, rooted at *root*.

    Returns ``(nodes, edges_examined)``; the cost counter charges each
    visited node its in-degree (the worst-case work of materializing
    its triggering set), matching the triggering-model cost analysis of
    Tang et al. 2014 cited in the paper.
    """
    if scratch is None:
        scratch = Scratch(graph.n)
    stamp = scratch.next_stamp()
    visited = scratch.visited
    queue = scratch.queue

    visited[root] = stamp
    queue[0] = root
    head, tail = 0, 1
    edges_examined = 0
    in_degrees = np.diff(graph.in_offsets)

    while head < tail:
        u = int(queue[head])
        head += 1
        edges_examined += int(in_degrees[u])
        triggers = triggering_sets(u, rng)
        if triggers.size == 0:
            continue
        fresh = triggers[visited[triggers] != stamp]
        if fresh.size == 0:
            continue
        # A triggering set may not repeat nodes by construction (it is
        # a subset of distinct in-neighbors), so stamping is safe.
        visited[fresh] = stamp
        queue[tail : tail + fresh.size] = fresh
        tail += fresh.size

    if stats is not None:
        stats.observe_set(tail, edges_examined)
    return queue[:tail].copy(), edges_examined


class TriggeringRRSampler:
    """Streaming RR-set generator for an arbitrary triggering model.

    Duck-type compatible with :class:`repro.sampling.generator.RRSampler`
    (``sample_one`` / ``fill`` / ``new_collection`` / counters), so it
    can be injected into :class:`~repro.core.opim.OnlineOPIM` and
    :class:`~repro.core.opimc.OPIMC`.
    """

    def __init__(
        self,
        graph: DiGraph,
        triggering_sets: TriggeringSetSampler,
        seed=None,
        registry=None,
    ) -> None:
        from repro.obs import RRSetStats, resolve_registry
        from repro.utils.rng import as_generator

        self.graph = graph
        self.model = "TRIGGERING"
        self.triggering_sets = triggering_sets
        self.rng = as_generator(seed)
        self.edges_examined = 0
        self.sets_generated = 0
        self.nodes_touched = 0
        self.universe_weight = float(graph.n)
        self.obs = resolve_registry(registry)
        self._rr_stats = RRSetStats(self.obs) if self.obs.enabled else None
        self._scratch = Scratch(graph.n)

    def sample_one(self, root=None) -> np.ndarray:
        if root is None:
            root = int(self.rng.integers(0, self.graph.n))
        elif not 0 <= root < self.graph.n:
            raise ParameterError(f"root {root} out of range [0, {self.graph.n})")
        nodes, edges = sample_rr_set_triggering(
            self.graph,
            root,
            self.rng,
            self.triggering_sets,
            self._scratch,
            self._rr_stats,
        )
        self.edges_examined += edges
        self.sets_generated += 1
        self.nodes_touched += nodes.shape[0]
        return nodes

    def fill(self, collection, count: int) -> None:
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if collection.n != self.graph.n:
            raise ParameterError(
                "collection node universe does not match the sampler's graph"
            )
        edges_before = self.edges_examined
        nodes_before = self.nodes_touched
        for _ in range(count):
            collection.append(self.sample_one())
        obs = self.obs
        obs.count("sampling.rr_sets", count)
        obs.count("sampling.edges", self.edges_examined - edges_before)
        obs.count("sampling.nodes", self.nodes_touched - nodes_before)

    def new_collection(self, count: int = 0):
        from repro.sampling.collection import RRCollection

        collection = RRCollection(self.graph.n)
        if count:
            self.fill(collection, count)
        return collection
