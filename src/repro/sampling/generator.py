"""Facade that streams random RR sets for a (graph, model) pair.

:class:`RRSampler` owns the per-graph preprocessing (scratch buffers,
LT alias tables), draws uniformly random roots, and accounts for the
total number of edges examined — the cost measure used by Borgs et
al.'s online algorithm and by the paper's complexity analysis.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.obs import RRSetStats, resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.rrset_ic import Scratch, sample_rr_set_ic
from repro.sampling.rrset_lt import LTAliasTables, sample_rr_set_lt
from repro.utils.rng import SeedLike, as_generator

MODELS = ("IC", "LT")


class RRSampler:
    """Streaming generator of random RR sets.

    Parameters
    ----------
    graph:
        Weighted :class:`DiGraph`.
    model:
        ``"IC"`` or ``"LT"``.
    seed:
        RNG seed or generator; all randomness of this sampler flows
        through it.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`.  When given, the
        sampler maintains the ``sampling.rr_sets`` / ``sampling.edges``
        / ``sampling.nodes`` counters and the per-RR-set size
        distributions; by default the no-op registry is used and the
        hot path is unchanged.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: str,
        seed: SeedLike = None,
        registry=None,
    ) -> None:
        model = model.upper()
        if model not in MODELS:
            raise ParameterError(f"model must be one of {MODELS}, got {model!r}")
        if not graph.weighted:
            raise ParameterError(
                "graph has no edge probabilities; apply a weighting scheme first"
            )
        self.graph = graph
        self.model = model
        self.rng = as_generator(seed)
        self.edges_examined = 0
        self.sets_generated = 0
        self.nodes_touched = 0
        #: The scale factor in spread estimates and bounds ("n" in the
        #: paper; subclasses with non-uniform roots override it).
        self.universe_weight = float(graph.n)
        #: Cumulative wall-clock seconds spent inside :meth:`fill`;
        #: deltas attribute request time to sampling vs. selection.
        self.fill_seconds = 0.0
        self.obs = resolve_registry(registry)
        self._rr_stats = RRSetStats(self.obs) if self.obs.enabled else None
        self._scratch = Scratch(graph.n)
        self._lt_tables: Optional[LTAliasTables] = None
        if model == "LT":
            self._lt_tables = LTAliasTables(graph)

    def sample_one(self, root: Optional[int] = None) -> np.ndarray:
        """Sample one RR set; the root is uniform random when omitted."""
        if root is None:
            root = int(self.rng.integers(0, self.graph.n))
        elif not 0 <= root < self.graph.n:
            raise ParameterError(f"root {root} out of range [0, {self.graph.n})")
        if self.model == "IC":
            nodes, edges = sample_rr_set_ic(
                self.graph, root, self.rng, self._scratch, self._rr_stats
            )
        else:
            nodes, edges = sample_rr_set_lt(
                self.graph,
                root,
                self.rng,
                self._lt_tables,
                self._scratch,
                self._rr_stats,
            )
        self.edges_examined += edges
        self.sets_generated += 1
        self.nodes_touched += nodes.shape[0]
        return nodes

    def fill(self, collection: RRCollection, count: int) -> None:
        """Append *count* fresh RR sets to *collection*."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        if collection.n != self.graph.n:
            raise ParameterError(
                "collection node universe does not match the sampler's graph"
            )
        edges_before = self.edges_examined
        nodes_before = self.nodes_touched
        started = time.perf_counter()
        for _ in range(count):
            collection.append(self.sample_one())
        self.fill_seconds += time.perf_counter() - started
        obs = self.obs
        obs.count("sampling.rr_sets", count)
        obs.count("sampling.edges", self.edges_examined - edges_before)
        obs.count("sampling.nodes", self.nodes_touched - nodes_before)

    def new_collection(self, count: int = 0) -> RRCollection:
        """Create a collection over this graph, optionally pre-filled."""
        collection = RRCollection(self.graph.n)
        if count:
            self.fill(collection, count)
        return collection
