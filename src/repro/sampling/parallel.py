"""Multiprocess RR-set generation.

RR sets are i.i.d., which makes their generation embarrassingly
parallel: each worker process receives the graph (numpy arrays pickle
cheaply), an independent child seed, and a quota; the parent
concatenates the results in worker order, so the output is
deterministic for a fixed ``(seed, workers)`` pair.

This is the coarse-grained complement to the vectorized batch kernels
in :mod:`repro.sampling.batch` — combine both (workers running
:class:`BatchRRSampler`) for the highest throughput the pure-Python
reproduction reaches.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.sampling.collection import RRCollection
from repro.utils.rng import SeedLike

_WORKER_STATE = {}


def _worker_init(graph: DiGraph, model: str, fast: bool) -> None:
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["model"] = model
    _WORKER_STATE["fast"] = fast


def _worker_generate(task: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray, int]:
    seed, count = task
    graph = _WORKER_STATE["graph"]
    model = _WORKER_STATE["model"]
    if _WORKER_STATE["fast"]:
        from repro.sampling.batch import BatchRRSampler

        sampler = BatchRRSampler(graph, model, seed=seed)
    else:
        from repro.sampling.generator import RRSampler

        sampler = RRSampler(graph, model, seed=seed)
    sets = [sampler.sample_one() for _ in range(count)]
    # Flatten into two arrays: far cheaper to pickle back than
    # thousands of small ndarrays.
    sizes = np.fromiter((s.size for s in sets), dtype=np.int64, count=count)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = (
        np.concatenate(sets) if count else np.empty(0, dtype=np.int32)
    )
    return flat, offsets, sampler.edges_examined


def parallel_fill(
    graph: DiGraph,
    model: str,
    count: int,
    workers: int = 2,
    seed: SeedLike = None,
    fast: bool = True,
    collection: Optional[RRCollection] = None,
) -> Tuple[RRCollection, int]:
    """Generate *count* RR sets across *workers* processes.

    Returns ``(collection, edges_examined)``.  Determinism: the same
    ``(seed, workers)`` always produces the same multiset of RR sets in
    the same order (tasks are dispatched and collected in worker-index
    order).

    Parameters
    ----------
    fast:
        Use the vectorized batch sampler inside each worker.
    collection:
        Append to an existing collection instead of a fresh one.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if not graph.weighted:
        raise ParameterError("graph has no edge probabilities")
    if collection is None:
        collection = RRCollection(graph.n)
    elif collection.n != graph.n:
        raise ParameterError("collection node universe does not match the graph")
    if count == 0:
        return collection, 0

    workers = min(workers, count)
    sequence = np.random.SeedSequence(
        seed if isinstance(seed, (int, type(None))) else None
    )
    child_seeds = [int(s.generate_state(1)[0]) for s in sequence.spawn(workers)]
    quotas = [count // workers] * workers
    for i in range(count % workers):
        quotas[i] += 1
    tasks = list(zip(child_seeds, quotas))

    if workers == 1:
        _worker_init(graph, model, fast)
        results = [_worker_generate(tasks[0])]
    else:
        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        with context.Pool(
            processes=workers,
            initializer=_worker_init,
            initargs=(graph, model, fast),
        ) as pool:
            results = pool.map(_worker_generate, tasks)

    edges = 0
    for flat, offsets, worker_edges in results:
        edges += worker_edges
        for i in range(offsets.shape[0] - 1):
            collection.append(flat[offsets[i] : offsets[i + 1]])
    return collection, edges
