"""Per-call multiprocess RR-set generation (thin service wrapper).

Historically this module owned its own ``multiprocessing.Pool`` that
was spawned — and the whole CSR graph re-pickled — on every call.
That per-call fixed cost made the parallel path slower than serial for
all but the largest quotas, which defeats the point of online
processing.  Generation now delegates to the persistent shared-memory
service (:class:`repro.sampling.service.SamplingPool`); this function
remains as the convenient one-shot API and constructs (and tears down)
a pool per call.  Code that fills repeatedly — OPIM-C's doubling loop,
OnlineOPIM pause/resume sessions — should hold a ``SamplingPool`` open
instead and amortize the setup (see ``benchmarks/bench_service.py``
for the measured gap).

Determinism: the service's chunk schedule depends only on the seed and
the quota, so the output is bitwise reproducible for a fixed ``seed``
— for *any* worker count, which is strictly stronger than the old
``(seed, workers)`` contract.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

from repro.exceptions import ParameterError
from repro.graph.digraph import DiGraph
from repro.obs import resolve_registry
from repro.sampling.collection import RRCollection
from repro.sampling.service import SamplingPool
from repro.utils.rng import SeedLike


def parallel_fill(
    graph: DiGraph,
    model: str,
    count: int,
    workers: int = 2,
    seed: SeedLike = None,
    fast: bool = True,
    collection: Optional[RRCollection] = None,
    registry: Optional[object] = None,
) -> Tuple[RRCollection, int]:
    """Generate *count* RR sets across *workers* processes.

    Returns ``(collection, edges_examined)``.  Determinism: a fixed
    ``seed`` always produces the same multiset of RR sets in the same
    order, independent of *workers* (results are assembled in chunk
    order, and chunk seeds derive from the chunk index alone).

    When ``workers > count`` the worker count is capped at *count* —
    loudly: a :class:`RuntimeWarning` is emitted and the
    ``parallel.workers_capped`` counter is incremented on *registry*,
    so an oversized ``--pool workers=N`` flag cannot silently degrade
    to near-serial execution.

    Parameters
    ----------
    fast:
        Use the vectorized batch sampler inside each worker.
    collection:
        Append to an existing collection instead of a fresh one.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` receiving the
        service counters (``service.chunks``, ``sampling.*``, ...).
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if not graph.weighted:
        raise ParameterError("graph has no edge probabilities")
    if collection is None:
        collection = RRCollection(graph.n)
    elif collection.n != graph.n:
        raise ParameterError("collection node universe does not match the graph")
    if count == 0:
        return collection, 0

    if workers > count:
        resolve_registry(registry).count("parallel.workers_capped")
        warnings.warn(
            f"requested {workers} workers for only {count} RR sets; "
            f"capping workers at {count} (fewer processes than asked)",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = count

    with SamplingPool(
        graph,
        model,
        workers=workers,
        seed=seed,
        fast=fast,
        registry=registry,
    ) as pool:
        pool.fill(collection, count)
        edges = pool.edges_examined
    return collection, edges
