"""Growable collections of RR sets with coverage queries.

The online algorithms append RR sets continuously and periodically run
greedy maximum coverage over everything collected so far.  To make the
greedy pass fast in Python, :class:`RRCollection` maintains two flat CSR
layouts that are rebuilt lazily (amortized O(total size) because the
algorithms double collection sizes between queries):

* ``rr_offsets`` / ``rr_nodes`` — RR-set id -> member node ids;
* ``node_offsets`` / ``node_rrs`` — node id -> ids of RR sets
  containing it (the inverted index driving greedy selection).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import ParameterError


class RRCollection:
    """An append-only multiset of RR sets over nodes ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._sets: List[np.ndarray] = []
        self._total_size = 0
        # Flat layouts, rebuilt lazily.
        self._built_count = 0
        self.rr_offsets = np.zeros(1, dtype=np.int64)
        self.rr_nodes = np.empty(0, dtype=np.int32)
        self.node_offsets = np.zeros(n + 1, dtype=np.int64)
        self.node_rrs = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, nodes: np.ndarray) -> None:
        """Add one RR set (an array of node ids; duplicates not allowed)."""
        nodes = np.asarray(nodes, dtype=np.int32)
        if nodes.ndim != 1 or nodes.size == 0:
            raise ParameterError("an RR set must be a non-empty 1-D array")
        self._sets.append(nodes)
        self._total_size += int(nodes.size)

    def extend(self, many: Iterable[np.ndarray]) -> None:
        """Append several RR sets."""
        for nodes in many:
            self.append(nodes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sets)

    @property
    def total_size(self) -> int:
        """Sum of |R| over all stored RR sets."""
        return self._total_size

    def get(self, index: int) -> np.ndarray:
        """Return the *index*-th RR set (a read-only view)."""
        return self._sets[index]

    def sets(self) -> Sequence[np.ndarray]:
        """All stored RR sets, in insertion order."""
        return tuple(self._sets)

    # ------------------------------------------------------------------
    # Flat layouts
    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re)build the flat CSR layouts if new sets were appended."""
        if self._built_count == len(self._sets):
            return
        count = len(self._sets)
        sizes = np.fromiter(
            (s.size for s in self._sets), dtype=np.int64, count=count
        )
        self.rr_offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.rr_offsets[1:])
        self.rr_nodes = (
            np.concatenate(self._sets) if count else np.empty(0, dtype=np.int32)
        )

        # Inverted index: stable sort member entries by node id.
        rr_ids = np.repeat(np.arange(count, dtype=np.int64), sizes)
        order = np.argsort(self.rr_nodes, kind="stable")
        sorted_nodes = self.rr_nodes[order]
        self.node_rrs = rr_ids[order]
        counts = np.bincount(sorted_nodes, minlength=self.n)
        self.node_offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.node_offsets[1:])
        self._built_count = count

    def node_coverage_counts(self) -> np.ndarray:
        """Vector ``c[v] = number of RR sets containing v`` (singleton
        coverages ``Lambda({v})``)."""
        self.build()
        counts = np.zeros(self.n, dtype=np.int64)
        if self.rr_nodes.size:
            counts = np.bincount(self.rr_nodes, minlength=self.n).astype(np.int64)
        return counts

    def rr_sets_containing(self, node: int) -> np.ndarray:
        """Ids of RR sets that contain *node*."""
        self.build()
        lo, hi = self.node_offsets[node], self.node_offsets[node + 1]
        return self.node_rrs[lo:hi]

    # ------------------------------------------------------------------
    # Coverage queries
    # ------------------------------------------------------------------
    def coverage(self, seeds: Iterable[int]) -> int:
        """``Lambda(S)``: number of stored RR sets intersecting *seeds*."""
        self.build()
        seed_list = list(seeds)
        if not seed_list:
            return 0
        covered = np.zeros(len(self._sets), dtype=bool)
        for s in seed_list:
            if not 0 <= s < self.n:
                raise ParameterError(f"seed {s} out of range [0, {self.n})")
            lo, hi = self.node_offsets[s], self.node_offsets[s + 1]
            covered[self.node_rrs[lo:hi]] = True
        return int(covered.sum())

    def coverage_fraction(self, seeds: Iterable[int]) -> float:
        """``Lambda(S) / |collection|`` (0.0 for an empty collection)."""
        if not len(self._sets):
            return 0.0
        return self.coverage(seeds) / len(self._sets)

    def estimate_spread(self, seeds: Iterable[int]) -> float:
        """Unbiased spread estimate ``n * Lambda(S) / theta`` (Lemma 3.1)."""
        if not len(self._sets):
            raise ParameterError("cannot estimate spread from an empty collection")
        return self.n * self.coverage(seeds) / len(self._sets)
