"""Tests for the degree-based seed-selection heuristics."""

from __future__ import annotations

import pytest

from repro.baselines.heuristics import (
    degree_discount_ic,
    k_core_seeds,
    max_degree,
    random_seeds,
    single_discount,
)
from repro.diffusion.spread import monte_carlo_spread
from repro.exceptions import ParameterError
from repro.graph.build import from_edge_list
from repro.graph.generators import star_graph, two_cliques


ALL_HEURISTICS = [
    lambda g, k: random_seeds(g, k, seed=1),
    lambda g, k: max_degree(g, k),
    lambda g, k: single_discount(g, k),
    lambda g, k: degree_discount_ic(g, k),
    lambda g, k: k_core_seeds(g, k),
]


@pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
class TestCommonContract:
    def test_k_unique_seeds(self, heuristic, medium_graph):
        result = heuristic(medium_graph, 7)
        assert len(result.seeds) == 7
        assert len(set(result.seeds)) == 7
        assert all(0 <= s < medium_graph.n for s in result.seeds)

    def test_invalid_k(self, heuristic, medium_graph):
        with pytest.raises(ParameterError):
            heuristic(medium_graph, 0)


class TestMaxDegree:
    def test_picks_hub(self):
        g = star_graph(10)
        assert max_degree(g, 1).seeds == [0]

    def test_tie_break_by_id(self):
        g = from_edge_list([(0, 2), (1, 2), (0, 3), (1, 3)])
        assert max_degree(g, 2).seeds == [0, 1]


class TestSingleDiscount:
    def test_diversifies_across_cliques(self):
        """After taking one clique's hub, the discount steers the
        second pick to the other clique."""
        g = two_cliques(6, bridge=False)
        result = single_discount(g, 2)
        sides = {s // 6 for s in result.seeds}
        assert sides == {0, 1}

    def test_matches_max_degree_on_star(self):
        g = star_graph(8)
        assert single_discount(g, 1).seeds == max_degree(g, 1).seeds


class TestDegreeDiscount:
    def test_diversifies_across_cliques(self):
        g = two_cliques(6, bridge=False)
        result = degree_discount_ic(g, 2, p=0.1)
        sides = {s // 6 for s in result.seeds}
        assert sides == {0, 1}

    def test_invalid_p(self, medium_graph):
        with pytest.raises(ParameterError):
            degree_discount_ic(medium_graph, 2, p=1.5)


class TestKCoreSeeds:
    def test_prefers_core_over_peripheral_hub(self):
        """A star hub has huge degree but core number 1; a small clique
        has modest degree but deeper core."""
        from repro.graph.build import from_edge_list

        edges = []
        # Clique on {0..4} (both directions): total degree 8 each.
        for u in range(5):
            for v in range(5):
                if u != v:
                    edges.append((u, v))
        # Star hub 5 with 30 out-only leaves: total degree 30, core 1.
        for leaf in range(6, 36):
            edges.append((5, leaf))
        g = from_edge_list(edges)
        result = k_core_seeds(g, 3)
        assert set(result.seeds) <= set(range(5))

    def test_name(self, medium_graph):
        assert k_core_seeds(medium_graph, 2).algorithm == "KCore"


class TestQualityOrdering:
    def test_degree_heuristics_beat_random(self, medium_graph):
        """On a heavy-tailed WC graph, degree-informed picks should
        clearly out-spread uniform random picks."""
        k = 5
        random_spread = monte_carlo_spread(
            medium_graph,
            random_seeds(medium_graph, k, seed=2).seeds,
            "IC",
            num_samples=600,
            seed=3,
        ).mean
        degree_spread = monte_carlo_spread(
            medium_graph,
            max_degree(medium_graph, k).seeds,
            "IC",
            num_samples=600,
            seed=3,
        ).mean
        assert degree_spread > random_spread

    def test_ris_beats_heuristics_or_ties(self, medium_graph):
        """RIS selection should be at least as good as the best degree
        heuristic (it optimizes spread directly)."""
        from repro.core.opimc import opim_c

        k = 5
        ris = opim_c(medium_graph, "IC", k=k, epsilon=0.2, delta=0.1, seed=4)
        ris_spread = monte_carlo_spread(
            medium_graph, ris.seeds, "IC", num_samples=800, seed=5
        ).mean
        heuristic_spread = monte_carlo_spread(
            medium_graph,
            degree_discount_ic(medium_graph, k).seeds,
            "IC",
            num_samples=800,
            seed=5,
        ).mean
        assert ris_spread >= 0.9 * heuristic_spread
