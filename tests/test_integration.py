"""End-to-end integration tests asserting the paper's qualitative
results on small instances — the "shape" checks DESIGN.md Section 3
promises."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import celf_greedy, dssa_fix, imm, ssa_fix, tim_plus
from repro.core import BorgsOnline, OnlineOPIM, opim_c
from repro.diffusion.spread import monte_carlo_spread
from repro.exceptions import ReproError
from repro.graph.generators import power_law_graph
from repro.graph.weights import assign_wc_weights


@pytest.fixture(scope="module")
def graph():
    return assign_wc_weights(power_law_graph(500, 8, seed=77, name="itg"))


class TestPaperShapeOnline:
    """Figures 2-5 orderings on a single shared instance."""

    @pytest.fixture(scope="class")
    def snapshots(self, graph):
        algo = OnlineOPIM(graph, "IC", k=10, delta=0.01, seed=42)
        algo.extend(8000)
        return algo.query_all(), algo

    def test_variant_ordering(self, snapshots):
        snaps, _ = snapshots
        assert snaps["greedy"].alpha >= snaps["leskovec"].alpha - 1e-12
        assert snaps["greedy"].alpha >= snaps["vanilla"].alpha - 1e-12

    def test_opim_beats_borgs_by_orders_of_magnitude(self, snapshots, graph):
        snaps, algo = snapshots
        borgs = BorgsOnline(graph, "IC", k=10, seed=42)
        borgs.extend_to(algo.num_rr_sets)
        assert snaps["greedy"].alpha > 1000 * borgs.query().alpha

    def test_opim_exceeds_worst_case_ceiling(self, snapshots):
        """OPIM's instance-specific alpha surpasses 1 - 1/e while any
        OPIM-adoption is capped below it."""
        snaps, _ = snapshots
        assert snaps["greedy"].alpha > 1 - 1 / math.e

    def test_leskovec_below_vanilla_at_k1(self):
        """Figure 3's k=1 anomaly: OPIM' can fall below OPIM0.

        The effect needs a strong runner-up node whose marginal
        coverage stays large after the greedy pick — two disjoint
        communities make it deterministic: the Leskovec bound then
        roughly doubles the optimum's coverage estimate while the
        pessimistic bound only inflates it by 1/(1 - 1/e)."""
        from repro.graph.generators import two_cliques
        from repro.graph.weights import assign_constant_weights

        g = assign_constant_weights(two_cliques(12, bridge=False), 0.9)
        algo = OnlineOPIM(g, "IC", k=1, delta=0.01, seed=43)
        algo.extend(4000)
        snaps = algo.query_all()
        assert snaps["leskovec"].alpha < snaps["vanilla"].alpha


class TestPaperShapeConventional:
    """Figures 6-7 orderings."""

    def test_opimc_plus_most_sample_efficient(self, graph):
        kwargs = dict(k=10, epsilon=0.15, delta=0.01, seed=11)
        plus = opim_c(graph, "IC", bound="greedy", **kwargs)
        vanilla = opim_c(graph, "IC", bound="vanilla", **kwargs)
        imm_result = imm(graph, "IC", **kwargs)
        assert plus.num_rr_sets <= vanilla.num_rr_sets
        assert plus.num_rr_sets < imm_result.num_rr_sets

    def test_all_algorithms_similar_spread(self, graph):
        kwargs = dict(k=10, epsilon=0.3, delta=0.05, seed=12)
        spreads = {}
        for name, run in [
            ("OPIM-C+", lambda: opim_c(graph, "IC", **kwargs)),
            ("IMM", lambda: imm(graph, "IC", **kwargs)),
            ("D-SSA-Fix", lambda: dssa_fix(graph, "IC", **kwargs)),
            ("TIM+", lambda: tim_plus(graph, "IC", **kwargs)),
            ("SSA-Fix", lambda: ssa_fix(graph, "IC", **kwargs)),
        ]:
            result = run()
            spreads[name] = monte_carlo_spread(
                graph, result.seeds, "IC", num_samples=600, seed=13
            ).mean
        values = list(spreads.values())
        assert max(values) <= 1.25 * min(values), spreads


class TestCrossValidation:
    def test_opimc_matches_celf_quality(self, graph):
        """RIS selection quality is on par with Monte-Carlo greedy."""
        k = 5
        ris = opim_c(graph, "IC", k=k, epsilon=0.2, delta=0.05, seed=21)
        ris_spread = monte_carlo_spread(
            graph, ris.seeds, "IC", num_samples=800, seed=22
        ).mean
        # Use RIS-derived top candidates to keep CELF tractable.
        from repro.sampling.generator import RRSampler

        sampler = RRSampler(graph, "IC", seed=23)
        counts = sampler.new_collection(3000).node_coverage_counts()
        pool = list(np.argsort(counts)[-25:])
        celf = celf_greedy(
            graph, "IC", k, num_samples=300, seed=24, candidates=pool
        )
        celf_spread = monte_carlo_spread(
            graph, celf.seeds, "IC", num_samples=800, seed=22
        ).mean
        assert ris_spread >= 0.85 * celf_spread

    def test_online_and_conventional_agree(self, graph):
        """OnlineOPIM stopped at OPIM-C's sample count returns seeds of
        comparable quality."""
        conventional = opim_c(graph, "IC", k=8, epsilon=0.2, delta=0.05, seed=31)
        online = OnlineOPIM(graph, "IC", k=8, delta=0.05, seed=32)
        online.extend_to(conventional.num_rr_sets)
        snap = online.query()
        a = monte_carlo_spread(graph, snap.seeds, "IC", num_samples=600, seed=33).mean
        b = monte_carlo_spread(
            graph, conventional.seeds, "IC", num_samples=600, seed=33
        ).mean
        assert a >= 0.85 * b

    def test_models_give_different_seeds_sometimes(self, graph):
        """IC and LT are genuinely different dynamics on WC weights."""
        ic = opim_c(graph, "IC", k=10, epsilon=0.3, delta=0.05, seed=41)
        lt = opim_c(graph, "LT", k=10, epsilon=0.3, delta=0.05, seed=41)
        # Spreads differ markedly (LT spreads farther under WC).
        ic_spread = monte_carlo_spread(
            graph, ic.seeds, "IC", num_samples=400, seed=42
        ).mean
        lt_spread = monte_carlo_spread(
            graph, lt.seeds, "LT", num_samples=400, seed=42
        ).mean
        assert lt_spread > ic_spread


class TestExceptionHierarchy:
    def test_all_library_errors_catchable_at_base(self, graph):
        with pytest.raises(ReproError):
            opim_c(graph, "IC", k=0, epsilon=0.5)
        with pytest.raises(ReproError):
            OnlineOPIM(graph, "IC", k=2).query()
        with pytest.raises(ReproError):
            imm(graph, "IC", 2, 0.1, rr_budget=1)
