"""Cross-module property-based tests (hypothesis).

These complement the per-module suites by fuzzing whole pipelines:
random graph -> weighting -> sampling -> greedy -> bounds -> alpha.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.opim import OnlineOPIM
from repro.graph.build import from_edge_list
from repro.graph.generators import power_law_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.weights import assign_uniform_weights, assign_wc_weights
from repro.maxcover.greedy import greedy_max_coverage
from repro.sampling.collection import RRCollection
from repro.sampling.generator import RRSampler


@st.composite
def weighted_graphs(draw):
    n = draw(st.integers(8, 40))
    avg_degree = draw(st.floats(1.5, 5.0))
    seed = draw(st.integers(0, 10**6))
    scheme = draw(st.sampled_from(["wc", "uniform"]))
    g = power_law_graph(n, avg_degree, seed=seed)
    if scheme == "wc":
        return assign_wc_weights(g)
    return assign_uniform_weights(g, 0.0, 0.5, seed=seed)


class TestPipelineInvariants:
    @given(weighted_graphs(), st.sampled_from(["IC", "LT"]), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_rr_sets_are_valid(self, graph, model, seed):
        """Every sampled RR set: non-empty, unique, in-range nodes,
        root first."""
        if model == "LT":
            # Uniform weights may violate the LT constraint; skip those.
            sums = graph.in_prob_sums()
            if np.any(sums > 1.0 + 1e-9):
                return
        sampler = RRSampler(graph, model, seed=seed)
        for _ in range(20):
            nodes = sampler.sample_one()
            assert nodes.size >= 1
            assert len(set(nodes.tolist())) == nodes.size
            assert nodes.min() >= 0 and nodes.max() < graph.n

    @given(weighted_graphs(), st.integers(0, 100), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_alpha_always_in_unit_interval(self, graph, seed, k):
        k = min(k, graph.n)
        algo = OnlineOPIM(graph, "IC", k=k, delta=0.1, seed=seed)
        algo.extend(200)
        for variant in ("vanilla", "greedy", "leskovec"):
            snap = algo.query(bound=variant)
            assert 0.0 <= snap.alpha <= 1.0
            assert snap.sigma_low <= snap.sigma_up + 1e-9

    @given(weighted_graphs(), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_coverage_is_monotone_submodular(self, graph, seed):
        """Lambda(.) over a sampled collection is monotone and
        submodular — the properties Lemma 5.1's proof uses."""
        sampler = RRSampler(graph, "IC", seed=seed)
        collection = sampler.new_collection(60)
        rng = np.random.default_rng(seed)
        nodes = rng.choice(graph.n, size=min(4, graph.n), replace=False)
        a = list(nodes[:1])
        b = list(nodes[: max(2, nodes.size // 2)])
        v = int(nodes[-1])
        # Monotone: Lambda(A) <= Lambda(B) for A subset of B.
        assert collection.coverage(a) <= collection.coverage(b)
        # Submodular: marginal of v w.r.t. A >= w.r.t. B (A subset B).
        gain_a = collection.coverage(a + [v]) - collection.coverage(a)
        gain_b = collection.coverage(b + [v]) - collection.coverage(b)
        if v not in b:
            assert gain_a >= gain_b

    @given(weighted_graphs(), st.integers(0, 100), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_greedy_coverage_bounded_by_collection(self, graph, seed, k):
        k = min(k, graph.n)
        sampler = RRSampler(graph, "IC", seed=seed)
        collection = sampler.new_collection(80)
        result = greedy_max_coverage(collection, k)
        assert 0 <= result.coverage <= len(collection)
        # Greedy's first pick covers the max singleton coverage.
        counts = collection.node_coverage_counts()
        assert result.gains[0] == counts.max()


class TestIORoundTripProperty:
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            min_size=1,
            max_size=20,
            unique=True,
        ),
        probs_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_round_trip(self, edges, probs_seed, tmp_path_factory):
        edges = [(u, v) for u, v in edges if u != v]
        if not edges:
            return
        rng = np.random.default_rng(probs_seed)
        weighted = [(u, v, float(rng.random())) for u, v in edges]
        g = from_edge_list(weighted, n=10)
        path = tmp_path_factory.mktemp("io") / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


class TestCollectionBuildProperty:
    @given(
        sets=st.lists(
            st.lists(st.integers(0, 11), min_size=1, max_size=6, unique=True),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_inverted_index_consistency(self, sets):
        """node -> RR ids and RR id -> nodes must describe the same
        bipartite membership relation."""
        c = RRCollection(12)
        for nodes in sets:
            c.append(np.array(nodes, dtype=np.int32))
        c.build()
        for rr_id, nodes in enumerate(sets):
            stored = c.get(rr_id).tolist()
            assert sorted(stored) == sorted(nodes)
            for node in nodes:
                assert rr_id in c.rr_sets_containing(node).tolist()
        for node in range(12):
            for rr_id in c.rr_sets_containing(node).tolist():
                assert node in c.get(rr_id).tolist()
