"""DeltaLedger: runtime failure-budget accounting (RPR202's runtime twin)."""

import math

import pytest

from repro.bounds import DeltaBudgetError, DeltaLedger
from repro.core.session import OPIMSession
from repro.exceptions import ParameterError
from repro.graph import assign_wc_weights, power_law_graph


class TestDeltaLedger:
    def test_tracks_spend_and_remaining(self):
        ledger = DeltaLedger(0.1)
        ledger.spend(0.05, label="query-1")
        ledger.spend(0.025, label="query-2")
        assert ledger.spent == pytest.approx(0.075)
        assert ledger.remaining == pytest.approx(0.025)
        assert not ledger.over_budget
        assert len(ledger) == 2

    def test_over_budget_is_advisory_by_default(self):
        ledger = DeltaLedger(0.1, strict=False)
        ledger.spend(0.08)
        ledger.spend(0.08)
        assert ledger.over_budget
        assert ledger.remaining == 0.0

    def test_strict_mode_raises_on_over_spend(self):
        ledger = DeltaLedger(0.1, strict=True)
        ledger.spend(0.09, label="first")
        with pytest.raises(DeltaBudgetError, match="over budget"):
            ledger.spend(0.09, label="second")

    def test_strict_mode_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_STRICT", "1")
        assert DeltaLedger(0.1).strict
        monkeypatch.setenv("REPRO_DELTA_STRICT", "false")
        assert not DeltaLedger(0.1).strict
        monkeypatch.delenv("REPRO_DELTA_STRICT")
        assert not DeltaLedger(0.1).strict

    def test_exact_budget_is_not_over(self):
        ledger = DeltaLedger(0.5, strict=True)
        ledger.spend(0.25)
        ledger.spend(0.25)
        assert not ledger.over_budget

    def test_rejects_bad_budget_and_spend(self):
        for bad in (0.0, 1.0, -0.1, math.inf, math.nan):
            with pytest.raises(ParameterError):
                DeltaLedger(bad)
        ledger = DeltaLedger(0.1)
        for bad in (0.0, -0.01, math.nan):
            with pytest.raises(ParameterError):
                ledger.spend(bad)

    def test_audit_is_json_friendly(self):
        ledger = DeltaLedger(0.2)
        ledger.spend(0.1, label="query-1")
        audit = ledger.audit()
        assert audit["budget"] == pytest.approx(0.2)
        assert audit["spent"] == pytest.approx(0.1)
        assert audit["over_budget"] is False
        assert audit["entries"] == [{"label": "query-1", "amount": 0.1}]
        # Mutating the returned audit must not corrupt the ledger.
        audit["entries"][0]["amount"] = 99.0
        assert ledger.audit()["entries"][0]["amount"] == pytest.approx(0.1)


class TestSessionLedger:
    def test_session_schedule_never_exhausts_budget(self):
        graph = assign_wc_weights(power_law_graph(120, 4, seed=5))
        with OPIMSession(graph, "IC", k=3, delta=0.2, seed=5) as session:
            session.extend(400)
            for _ in range(4):
                session.query()
            audit = session.ledger.audit()
        # Geometric delta/2^i slices: spent strictly below the budget.
        assert audit["spent"] < audit["budget"]
        assert not audit["over_budget"]
        assert len(audit["entries"]) == 4
        spends = [entry["amount"] for entry in audit["entries"]]
        for i, amount in enumerate(spends, start=1):
            assert amount == pytest.approx(0.2 / 2.0**i)

    def test_session_ledger_strict_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_STRICT", "1")
        graph = assign_wc_weights(power_law_graph(80, 4, seed=7))
        with OPIMSession(graph, "IC", k=2, delta=0.1, seed=7) as session:
            assert session.ledger.strict
            session.extend(200)
            # The schedule can never trip strict mode.
            for _ in range(3):
                session.query()
            assert not session.ledger.over_budget
