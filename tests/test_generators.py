"""Tests for the random-graph generators and deterministic fixtures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    power_law_graph,
    small_world,
    star_graph,
    two_cliques,
)


def _no_self_loops_or_duplicates(g):
    sources, targets, _ = g.edge_array()
    assert np.all(sources != targets)
    codes = sources * g.n + targets
    assert len(np.unique(codes)) == len(codes)


class TestErdosRenyi:
    def test_size_and_density(self):
        g = erdos_renyi(500, 8.0, seed=1)
        assert g.n == 500
        # Expected m = 4000; allow generous tolerance.
        assert 3200 <= g.m <= 4800

    def test_simple_graph(self):
        _no_self_loops_or_duplicates(erdos_renyi(100, 5.0, seed=2))

    def test_deterministic(self):
        assert erdos_renyi(50, 3.0, seed=5) == erdos_renyi(50, 3.0, seed=5)

    @pytest.mark.parametrize("n,d", [(1, 1.0), (10, 0.0), (10, 10.0)])
    def test_invalid_params(self, n, d):
        with pytest.raises(ParameterError):
            erdos_renyi(n, d)


class TestPowerLaw:
    def test_size(self):
        g = power_law_graph(400, 10.0, seed=3)
        assert g.n == 400
        assert 0.8 * 4000 <= g.m <= 4000

    def test_heavy_tail(self):
        g = power_law_graph(2000, 10.0, exponent=2.1, seed=4)
        in_deg = g.in_degree()
        # Heavy tail: max degree far above the mean.
        assert in_deg.max() > 8 * in_deg.mean()

    def test_simple_graph(self):
        _no_self_loops_or_duplicates(power_law_graph(150, 6.0, seed=5))

    def test_reciprocal_edges(self):
        g = power_law_graph(300, 8.0, seed=6, reciprocal=0.9)
        sources, targets, _ = g.edge_array()
        pairs = set(zip(sources.tolist(), targets.tolist()))
        reciprocated = sum((v, u) in pairs for u, v in pairs)
        assert reciprocated / len(pairs) > 0.3

    def test_deterministic(self):
        assert power_law_graph(80, 4.0, seed=9) == power_law_graph(80, 4.0, seed=9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1, "avg_degree": 2.0},
            {"n": 10, "avg_degree": -1.0},
            {"n": 10, "avg_degree": 2.0, "exponent": 0.5},
            {"n": 10, "avg_degree": 2.0, "reciprocal": 1.5},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ParameterError):
            power_law_graph(**kwargs)


class TestSmallWorld:
    def test_no_rewire_is_ring(self):
        g = small_world(10, neighbors=2, rewire=0.0, seed=1)
        assert g.m == 20
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert g.has_edge(9, 0) and g.has_edge(9, 1)

    def test_rewire_changes_structure(self):
        g = small_world(200, neighbors=3, rewire=0.5, seed=2)
        ring = small_world(200, neighbors=3, rewire=0.0, seed=2)
        assert g != ring

    def test_simple_graph(self):
        _no_self_loops_or_duplicates(small_world(100, neighbors=4, rewire=0.3, seed=3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 2, "neighbors": 1},
            {"n": 10, "neighbors": 0},
            {"n": 10, "neighbors": 10},
            {"n": 10, "neighbors": 2, "rewire": -0.1},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ParameterError):
            small_world(**kwargs)


class TestFixtures:
    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 20
        assert np.all(g.in_degree() == 4)

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.m == 5
        assert g.has_edge(4, 0)
        assert np.all(g.out_degree() == 1)

    def test_star(self):
        g = star_graph(6)
        assert g.m == 5
        assert g.out_degree(0) == 5
        assert np.all(g.in_degree()[1:] == 1)

    def test_two_cliques_with_bridge(self):
        g = two_cliques(3, bridge=True)
        assert g.n == 6
        assert g.m == 2 * 6 + 1
        assert g.has_edge(0, 3)

    def test_two_cliques_without_bridge(self):
        g = two_cliques(3, bridge=False)
        assert g.m == 12
        assert not g.has_edge(0, 3)

    @pytest.mark.parametrize("ctor", [complete_graph, cycle_graph, star_graph])
    def test_too_small(self, ctor):
        with pytest.raises(ParameterError):
            ctor(1)

    def test_two_cliques_too_small(self):
        with pytest.raises(ParameterError):
            two_cliques(1)


class TestGeneratorProperties:
    @given(
        n=st.integers(10, 60),
        d=st.floats(1.0, 5.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_power_law_always_simple(self, n, d, seed):
        _no_self_loops_or_duplicates(power_law_graph(n, d, seed=seed))

    @given(n=st.integers(10, 60), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_small_world_always_simple(self, n, seed):
        _no_self_loops_or_duplicates(small_world(n, neighbors=3, rewire=0.2, seed=seed))
