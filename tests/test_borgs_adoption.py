"""Tests for Borgs et al.'s online algorithm (Section 3.2) and the
OPIM-adoption wrapper (Section 3.3)."""

from __future__ import annotations

import math

import pytest

from repro.core.adoption import (
    AdoptionCurve,
    AdoptionStep,
    OPIMAdoption,
    adoption_epsilon,
    adoption_guarantee,
)
from repro.core.borgs import BORGS_CAP, BorgsOnline, borgs_beta
from repro.core.results import IMResult
from repro.exceptions import BudgetExceededError, ParameterError, StateError


class TestBorgsBeta:
    def test_formula(self):
        n, m, gamma = 1000, 5000, 10**6
        expected = gamma / (1492992 * (n + m) * math.log(n))
        assert borgs_beta(gamma, n, m) == pytest.approx(expected)

    def test_paper_example_magnitude(self):
        """Section 3.2: a 0.1-approximation on n=1e5, m=1e6 needs on
        the order of 2e12 edges examined (the paper says "more than
        2e12", rounding up from ~1.9e12)."""
        n, m = 10**5, 10**6
        gamma_needed = 0.1 * 1492992 * (n + m) * math.log(n)
        assert gamma_needed > 1.8e12

    def test_small_n_rejected(self):
        with pytest.raises(ParameterError):
            borgs_beta(10, 1, 5)


class TestBorgsOnline:
    def test_query_before_extend_raises(self, medium_graph):
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=1)
        with pytest.raises(StateError):
            algo.query()

    def test_alpha_is_tiny(self, medium_graph):
        """The reported guarantee is practically zero (Figures 2-5)."""
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=1)
        algo.extend(500)
        snap = algo.query()
        assert 0.0 < snap.alpha < 1e-3

    def test_alpha_capped_at_quarter(self, medium_graph):
        assert BORGS_CAP == 0.25
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=1)
        algo.extend(200)
        assert algo.query().alpha <= BORGS_CAP

    def test_checkpoint_at_power_of_two(self, medium_graph):
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=2)
        algo.extend(50)
        snap = algo.query()
        # The frozen checkpoint's gamma is >= some power of two and the
        # checkpoint predates the current stream position.
        assert snap.edges_examined <= algo.gamma
        assert snap.num_rr_sets <= algo.num_rr_sets

    def test_checkpoint_advances(self, medium_graph):
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=3)
        algo.extend(50)
        first = algo.query()
        algo.extend(2000)
        second = algo.query()
        assert second.edges_examined > first.edges_examined
        assert second.alpha >= first.alpha

    def test_extend_to(self, medium_graph):
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=4)
        algo.extend_to(123)
        assert algo.num_rr_sets == 123

    def test_negative_extend(self, medium_graph):
        algo = BorgsOnline(medium_graph, "IC", k=3, seed=4)
        with pytest.raises(ParameterError):
            algo.extend(-1)

    def test_seeds_have_size_k(self, medium_graph):
        algo = BorgsOnline(medium_graph, "LT", k=4, seed=5)
        algo.extend(300)
        assert len(algo.query().seeds) == 4


class TestAdoptionFormulas:
    def test_epsilon_sequence(self):
        e = 1 - 1 / math.e
        assert adoption_epsilon(1) == pytest.approx(e)
        assert adoption_epsilon(2) == pytest.approx(e / 2)
        assert adoption_epsilon(5) == pytest.approx(e / 16)

    def test_epsilon_invalid(self):
        with pytest.raises(ParameterError):
            adoption_epsilon(0)

    def test_guarantee_sequence(self):
        e = 1 - 1 / math.e
        assert adoption_guarantee(0) == 0.0
        assert adoption_guarantee(1) == pytest.approx(0.0)
        assert adoption_guarantee(2) == pytest.approx(e / 2)
        assert adoption_guarantee(3) == pytest.approx(e * 3 / 4)

    def test_guarantee_approaches_ceiling(self):
        assert adoption_guarantee(30) == pytest.approx(1 - 1 / math.e, abs=1e-6)

    def test_guarantee_consistent_with_epsilon(self):
        for i in range(1, 10):
            assert adoption_guarantee(i) == pytest.approx(
                (1 - 1 / math.e) - adoption_epsilon(i)
            )


def _fake_invoker(costs):
    """Build an invoker whose i-th call consumes costs[i] RR sets."""
    calls = []

    def invoke(epsilon, rr_cap):
        index = len(calls)
        cost = costs[index]
        if rr_cap is not None and cost > rr_cap:
            raise BudgetExceededError("over budget", num_rr_sets=rr_cap)
        calls.append(epsilon)
        return IMResult(
            algorithm="fake",
            seeds=[index],
            k=1,
            epsilon=epsilon,
            delta=0.1,
            num_rr_sets=cost,
            elapsed=0.0,
        )

    return invoke, calls


class TestAdoptionWrapper:
    def test_curve_structure(self):
        invoke, calls = _fake_invoker([100, 400, 1600, 6400])
        curve = OPIMAdoption("fake", invoke).run(3000)
        assert [s.cumulative_rr_sets for s in curve.steps] == [100, 500, 2100]
        assert calls == [adoption_epsilon(i) for i in (1, 2, 3)]
        # 4th invocation (6400) aborted at remaining budget 900.
        assert curve.exhausted_budget == 2100 + 900

    def test_guarantee_at_budget(self):
        invoke, _ = _fake_invoker([100, 400, 1600, 10**9])
        curve = OPIMAdoption("fake", invoke).run(5000)
        assert curve.guarantee_at(50) == 0.0
        assert curve.guarantee_at(100) == adoption_guarantee(1)
        assert curve.guarantee_at(499) == adoption_guarantee(1)
        assert curve.guarantee_at(500) == adoption_guarantee(2)
        assert curve.guarantee_at(10**6) == adoption_guarantee(3)

    def test_seeds_at_budget(self):
        invoke, _ = _fake_invoker([100, 400, 10**9])
        curve = OPIMAdoption("fake", invoke).run(1000)
        assert curve.seeds_at(50) is None
        assert curve.seeds_at(100) == [0]
        assert curve.seeds_at(999) == [1]

    def test_max_invocations_bound(self):
        invoke, calls = _fake_invoker([1] * 50)
        curve = OPIMAdoption("fake", invoke, max_invocations=5).run(10**6)
        assert len(curve.steps) == 5

    def test_zero_budget(self):
        invoke, calls = _fake_invoker([10])
        curve = OPIMAdoption("fake", invoke).run(0)
        assert curve.steps == []
        assert calls == []

    def test_negative_budget_rejected(self):
        invoke, _ = _fake_invoker([10])
        with pytest.raises(ParameterError):
            OPIMAdoption("fake", invoke).run(-1)

    def test_invalid_max_invocations(self):
        invoke, _ = _fake_invoker([10])
        with pytest.raises(ParameterError):
            OPIMAdoption("fake", invoke, max_invocations=0)

    def test_monotone_guarantee(self):
        invoke, _ = _fake_invoker([10, 20, 40, 80, 160])
        curve = OPIMAdoption("fake", invoke).run(310)
        guarantees = [curve.guarantee_at(b) for b in (0, 10, 30, 70, 150, 310)]
        assert guarantees == sorted(guarantees)


class TestAdoptionWithRealAlgorithm:
    def test_imm_adoption_end_to_end(self, small_graph):
        from repro.baselines.imm import imm

        adoption = OPIMAdoption(
            "IMM",
            lambda eps, cap: imm(
                small_graph, "IC", 3, eps, delta=0.1, seed=42, rr_budget=cap
            ),
        )
        curve = adoption.run(50000)
        assert len(curve.steps) >= 1
        assert curve.guarantee_at(50000) > 0.0
        assert curve.guarantee_at(50000) < 1 - 1 / math.e
