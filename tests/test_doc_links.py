"""Internal-link checker for the markdown documentation.

Walks every markdown link in ``README.md`` and ``docs/*.md`` and
verifies that relative targets exist (including the file behind a
``path#fragment`` reference and, for in-repo markdown targets, the
heading the fragment points at).  External ``http(s)`` links are not
touched — this test must pass offline.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent

#: The documentation surface under link checking.
DOCUMENTS = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda path: path.name,
)

#: ``[text](target)`` — excluding images; tolerates titles after the URL.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for ASCII docs."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _links(path: Path):
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def _anchors(path: Path):
    return {
        _slugify(heading)
        for heading in HEADING.findall(path.read_text(encoding="utf-8"))
    }


@pytest.mark.parametrize("doc", DOCUMENTS, ids=lambda p: p.name)
def test_internal_links_resolve(doc):
    broken = []
    for target in _links(doc):
        raw_path, _, fragment = target.partition("#")
        resolved = (
            doc if not raw_path else (doc.parent / raw_path).resolve()
        )
        if not resolved.exists():
            broken.append(f"{target} -> missing file {resolved}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                broken.append(
                    f"{target} -> no heading #{fragment} in {resolved.name}"
                )
    assert not broken, f"{doc.name} has broken links:\n  " + "\n  ".join(broken)


def test_docs_index_links_every_docs_page():
    """docs/index.md is the landing page; it must reach each sibling."""
    index = REPO / "docs" / "index.md"
    linked = {target.partition("#")[0] for target in _links(index)}
    missing = [
        page.name
        for page in (REPO / "docs").glob("*.md")
        if page.name != "index.md" and page.name not in linked
    ]
    assert not missing, f"docs/index.md does not link: {missing}"
