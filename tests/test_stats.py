"""Tests for graph summary statistics (Table 2 machinery)."""

from __future__ import annotations

import pytest

from repro.graph.build import from_edge_list
from repro.graph.generators import complete_graph, star_graph
from repro.graph.stats import degree_histogram, summarize


class TestSummarize:
    def test_directed_counts(self):
        summary = summarize(complete_graph(4, name="k4"))
        assert summary.name == "k4"
        assert summary.n == 4
        assert summary.m == 12
        assert summary.type == "directed"
        assert summary.avg_degree == pytest.approx(3.0)

    def test_undirected_convention(self):
        g = from_edge_list([(0, 1), (1, 2)], undirected=True, name="path")
        summary = summarize(g)
        # 2 undirected edges stored as 4 arcs.
        assert summary.m == 2
        assert summary.type == "undirected"
        assert summary.avg_degree == pytest.approx(4 / 3)

    def test_max_degrees(self):
        summary = summarize(star_graph(5))
        assert summary.max_out_degree == 4
        assert summary.max_in_degree == 1

    def test_isolated_nodes(self):
        g = from_edge_list([(0, 1)], n=4)
        assert summarize(g).isolated_nodes == 2

    def test_as_row_columns(self):
        row = summarize(complete_graph(3)).as_row()
        assert set(row) == {"Dataset", "n", "m", "Type", "Avg. degree"}

    def test_empty_graph(self):
        g = from_edge_list([], n=0)
        summary = summarize(g)
        assert summary.avg_degree == 0.0
        assert summary.isolated_nodes == 0


class TestDegreeHistogram:
    def test_in_histogram(self):
        h = degree_histogram(star_graph(5), "in")
        # hub has in-degree 0; four leaves have in-degree 1.
        assert h.tolist() == [1, 4]

    def test_out_histogram(self):
        h = degree_histogram(star_graph(5), "out")
        assert h[0] == 4  # leaves
        assert h[4] == 1  # hub

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(star_graph(3), "sideways")
