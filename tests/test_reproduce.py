"""Tests for the spread-vs-k experiment and the reproduction driver."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ParameterError
from repro.experiments.reproduce import PRESETS, experiment_ids, run_all
from repro.experiments.spread_curve import spread_vs_k_experiment


class TestSpreadVsK:
    @pytest.fixture(scope="class")
    def result(self, medium_graph):
        return spread_vs_k_experiment(
            medium_graph,
            "IC",
            ks=(1, 3, 6),
            rr_sets=3000,
            eval_samples=200,
            seed=5,
        )

    def test_series_present(self, result):
        assert set(result.labels()) == {"OPIM+", "MaxDegree", "Random"}

    def test_curves_monotone_in_k(self, result):
        """Spread never decreases with budget (CRN makes this exact)."""
        for series in result.series.values():
            assert all(b >= a for a, b in zip(series.y, series.y[1:]))

    def test_opim_beats_random(self, result):
        assert result.series["OPIM+"].y[-1] > result.series["Random"].y[-1]

    def test_diminishing_returns(self, result):
        """Concavity of the OPIM curve: per-seed gains shrink."""
        ys = result.series["OPIM+"].y
        ks = result.series["OPIM+"].x
        first_rate = (ys[1] - ys[0]) / (ks[1] - ks[0])
        last_rate = (ys[2] - ys[1]) / (ks[2] - ks[1])
        assert last_rate <= first_rate + 1e-9

    def test_error_bars_recorded(self, result):
        assert len(result.series["OPIM+"].y_err) == 3

    def test_invalid_params(self, medium_graph):
        with pytest.raises(ParameterError):
            spread_vs_k_experiment(medium_graph, "IC", ks=(0, 2))
        with pytest.raises(ParameterError):
            spread_vs_k_experiment(medium_graph, "IC", ks=(2,), rr_sets=101)


class TestRunAll:
    def test_presets_known(self):
        assert set(PRESETS) == {"smoke", "paper"}

    def test_experiment_ids_cover_all_paper_items(self):
        ids = experiment_ids()
        for item in (
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "table1",
            "table2",
        ):
            assert item in ids

    def test_subset_run_writes_files_and_manifest(self, tmp_path):
        runtimes = run_all(
            tmp_path / "out", preset="smoke", seed=1, only=["figure1", "table2"]
        )
        assert set(runtimes) == {"figure1", "table2"}
        assert (tmp_path / "out" / "figure1.txt").exists()
        assert (tmp_path / "out" / "table2.txt").exists()
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["preset"] == "smoke"
        assert manifest["experiments"] == ["figure1", "table2"]
        assert set(manifest["runtimes_seconds"]) == {"figure1", "table2"}

    def test_unknown_preset(self, tmp_path):
        with pytest.raises(ParameterError):
            run_all(tmp_path, preset="galactic")

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(ParameterError):
            run_all(tmp_path, only=["figure99"])
