"""Tests for node-weighted influence maximization (future-work
extension: weighted RR roots, weighted spread, weighted OPIM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.opim import OnlineOPIM
from repro.exceptions import ParameterError
from repro.graph.generators import star_graph, two_cliques
from repro.graph.weights import assign_constant_weights, assign_wc_weights
from repro.weighted.sampler import WeightedRRSampler
from repro.weighted.spread import monte_carlo_weighted_spread


class TestWeightedSampler:
    def test_universe_weight_is_total(self, small_graph):
        weights = np.ones(small_graph.n) * 2.0
        sampler = WeightedRRSampler(small_graph, "IC", weights, seed=1)
        assert sampler.universe_weight == pytest.approx(2.0 * small_graph.n)

    def test_zero_weight_nodes_never_roots(self, rng):
        g = assign_wc_weights(star_graph(5))
        weights = np.array([0.0, 1.0, 1.0, 1.0, 1.0])
        sampler = WeightedRRSampler(g, "IC", weights, seed=2)
        # Node 0 (the hub) has weight 0: with p=1 edges every RR set of
        # a leaf contains the hub, but no RR set is *rooted* at it.
        for _ in range(100):
            nodes = sampler.sample_one()
            assert nodes[0] != 0

    def test_root_distribution_follows_weights(self, rng):
        g = assign_constant_weights(star_graph(3), 0.0)  # p=0: RR = {root}
        weights = np.array([0.5, 0.25, 0.25])
        sampler = WeightedRRSampler(g, "IC", weights, seed=3)
        roots = [int(sampler.sample_one()[0]) for _ in range(4000)]
        freq = np.bincount(roots, minlength=3) / 4000
        assert np.allclose(freq, weights, atol=0.03)

    def test_wrong_length_rejected(self, small_graph):
        with pytest.raises(ParameterError, match="length"):
            WeightedRRSampler(small_graph, "IC", [1.0, 2.0], seed=1)

    def test_negative_weight_rejected(self, small_graph):
        weights = np.ones(small_graph.n)
        weights[0] = -1.0
        with pytest.raises(ParameterError, match="non-negative"):
            WeightedRRSampler(small_graph, "IC", weights, seed=1)

    def test_nan_weight_rejected(self, small_graph):
        weights = np.ones(small_graph.n)
        weights[0] = np.nan
        with pytest.raises(ParameterError):
            WeightedRRSampler(small_graph, "IC", weights, seed=1)

    def test_all_zero_weights_rejected(self, small_graph):
        with pytest.raises(ParameterError, match="positive sum"):
            WeightedRRSampler(small_graph, "IC", np.zeros(small_graph.n), seed=1)

    def test_weighted_lemma31(self, tiny_weighted_graph):
        """Weighted Lemma 3.1: W * Pr[S covers R_w] = sigma_w(S),
        checked against weighted Monte Carlo."""
        n = tiny_weighted_graph.n
        node_weights = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        sampler = WeightedRRSampler(
            tiny_weighted_graph, "IC", node_weights, seed=4
        )
        collection = sampler.new_collection(30000)
        estimate = sampler.estimate_weighted_spread(collection, [0])
        mc = monte_carlo_weighted_spread(
            tiny_weighted_graph, [0], node_weights, "IC", num_samples=30000, seed=5
        )
        low, high = mc.confidence_interval(z=4.0)
        assert low * 0.97 <= estimate <= high * 1.03

    def test_uniform_weights_match_plain_sampler(self, small_graph):
        """All-ones weights reduce to the standard estimator."""
        sampler = WeightedRRSampler(
            small_graph, "IC", np.ones(small_graph.n), seed=6
        )
        collection = sampler.new_collection(5000)
        v = int(np.argmax(collection.node_coverage_counts()))
        weighted = sampler.estimate_weighted_spread(collection, [v])
        plain = collection.estimate_spread([v])
        assert weighted == pytest.approx(plain)

    def test_empty_collection_rejected(self, small_graph):
        sampler = WeightedRRSampler(
            small_graph, "IC", np.ones(small_graph.n), seed=7
        )
        with pytest.raises(ParameterError):
            sampler.estimate_weighted_spread(sampler.new_collection(), [0])


class TestWeightedSpread:
    def test_uniform_reduces_to_plain(self, tiny_weighted_graph):
        from repro.diffusion.spread import monte_carlo_spread

        plain = monte_carlo_spread(
            tiny_weighted_graph, [0], "IC", num_samples=5000, seed=8
        )
        weighted = monte_carlo_weighted_spread(
            tiny_weighted_graph,
            [0],
            np.ones(tiny_weighted_graph.n),
            "IC",
            num_samples=5000,
            seed=8,
        )
        assert weighted.mean == pytest.approx(plain.mean)

    def test_zero_weights_give_zero(self, tiny_weighted_graph):
        estimate = monte_carlo_weighted_spread(
            tiny_weighted_graph,
            [0],
            np.zeros(tiny_weighted_graph.n),
            "IC",
            num_samples=100,
            seed=9,
        )
        assert estimate.mean == 0.0

    def test_empty_seeds(self, tiny_weighted_graph):
        estimate = monte_carlo_weighted_spread(
            tiny_weighted_graph,
            [],
            np.ones(tiny_weighted_graph.n),
            "IC",
            num_samples=10,
            seed=1,
        )
        assert estimate.mean == 0.0

    def test_wrong_length_rejected(self, tiny_weighted_graph):
        with pytest.raises(ParameterError):
            monte_carlo_weighted_spread(
                tiny_weighted_graph, [0], [1.0, 2.0], "IC", num_samples=10
            )


class TestWeightedOPIM:
    def test_weighted_opim_runs(self, small_graph):
        rng_weights = np.random.default_rng(10).uniform(0.5, 2.0, small_graph.n)
        sampler = WeightedRRSampler(small_graph, "IC", rng_weights, seed=11)
        algo = OnlineOPIM(small_graph, "IC", k=3, delta=0.1, sampler=sampler)
        algo.extend(3000)
        snap = algo.query()
        assert 0.0 < snap.alpha <= 1.0
        # The sigma bounds are on the weighted scale.
        assert snap.sigma_up <= rng_weights.sum() * 1.5

    def test_weighted_opim_targets_valuable_nodes(self):
        """Only one clique carries benefit weight: weighted OPIM must
        seed that clique."""
        g = assign_constant_weights(two_cliques(8, bridge=False), 0.6)
        weights = np.zeros(g.n)
        weights[8:] = 1.0  # only the second clique is worth reaching
        sampler = WeightedRRSampler(g, "IC", weights, seed=12)
        algo = OnlineOPIM(g, "IC", k=1, delta=0.1, sampler=sampler)
        algo.extend(2000)
        snap = algo.query()
        assert snap.seeds[0] >= 8

    def test_weighted_alpha_validity(self, tiny_weighted_graph):
        """alpha <= sigma_w(S*) / sigma_w(S_w^o) w.h.p., brute-forced."""
        import itertools

        node_weights = np.array([1.0, 1.0, 1.0, 10.0, 10.0])

        def exact_weighted(seeds):
            # Exact weighted spread by live-edge enumeration.
            from repro.diffusion.triggering import live_edge_spread

            total = 0.0
            probs = tiny_weighted_graph.in_probs
            for outcome in itertools.product(
                (False, True), repeat=tiny_weighted_graph.m
            ):
                mask = np.asarray(outcome, dtype=bool)
                weight = float(np.prod(np.where(mask, probs, 1.0 - probs)))
                if weight == 0.0:
                    continue
                reached = live_edge_spread(tiny_weighted_graph, seeds, mask)
                total += weight * node_weights[reached].sum()
            return total

        k = 2
        opt = max(
            exact_weighted(list(c))
            for c in itertools.combinations(range(tiny_weighted_graph.n), k)
        )
        failures = 0
        trials = 25
        delta = 0.2
        for trial in range(trials):
            sampler = WeightedRRSampler(
                tiny_weighted_graph, "IC", node_weights, seed=100 + trial
            )
            algo = OnlineOPIM(
                tiny_weighted_graph, "IC", k=k, delta=delta, sampler=sampler
            )
            algo.extend(600)
            snap = algo.query()
            if exact_weighted(snap.seeds) < snap.alpha * opt - 1e-9:
                failures += 1
        assert failures <= delta * trials + 3
