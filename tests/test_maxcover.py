"""Tests for greedy maximum coverage and the coverage upper bounds
(Lemmas 5.1 / 5.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.maxcover.bounds import (
    coverage_upper_bound_greedy,
    coverage_upper_bound_leskovec,
    coverage_upper_bound_pessimistic,
    coverage_upper_bound_pessimistic_e,
)
from repro.maxcover.greedy import GreedyResult, greedy_max_coverage
from repro.sampling.collection import RRCollection
from tests.conftest import brute_force_best_coverage


def make_collection(n, sets):
    c = RRCollection(n)
    for nodes in sets:
        c.append(np.array(nodes, dtype=np.int32))
    return c


class TestGreedyBasics:
    def test_picks_best_single_node(self):
        c = make_collection(4, [[0], [0], [0, 1], [2]])
        result = greedy_max_coverage(c, 1)
        assert result.seeds == [0]
        assert result.coverage == 3

    def test_second_pick_is_marginal_best(self):
        # Node 0 covers sets {0,1}; node 1 covers {0,1,2}; node 2 covers {3}.
        c = make_collection(4, [[0, 1], [0, 1], [1], [2]])
        result = greedy_max_coverage(c, 2)
        assert result.seeds == [1, 2]
        assert result.coverage == 4

    def test_tie_break_smallest_id(self):
        c = make_collection(4, [[0], [1]])
        result = greedy_max_coverage(c, 1)
        assert result.seeds == [0]

    def test_k_larger_than_useful_nodes(self):
        c = make_collection(5, [[0], [0]])
        result = greedy_max_coverage(c, 3)
        assert result.coverage == 2
        assert len(result.seeds) == 3
        assert result.gains[1:] == [0, 0]

    def test_full_coverage(self):
        c = make_collection(3, [[0], [1], [2]])
        result = greedy_max_coverage(c, 3)
        assert result.coverage == 3
        assert result.coverage_fraction() == 1.0

    def test_empty_collection_rejected(self):
        with pytest.raises(ParameterError):
            greedy_max_coverage(RRCollection(4), 1)

    def test_bad_k(self):
        c = make_collection(3, [[0]])
        with pytest.raises(ParameterError):
            greedy_max_coverage(c, 0)
        with pytest.raises(ParameterError):
            greedy_max_coverage(c, 4)

    def test_num_rr_sets_recorded(self):
        c = make_collection(3, [[0], [1]])
        assert greedy_max_coverage(c, 1).num_rr_sets == 2


class TestGreedyHistory:
    def test_prefix_arrays_lengths(self):
        c = make_collection(5, [[0, 1], [2], [3]])
        result = greedy_max_coverage(c, 3)
        assert len(result.prefix_coverages) == 4
        assert len(result.prefix_topk_sums) == 4
        assert result.prefix_coverages[0] == 0
        assert result.prefix_coverages[-1] == result.coverage

    def test_prefix_coverages_monotone(self):
        c = make_collection(6, [[0, 1], [1, 2], [3], [4], [0, 4]])
        result = greedy_max_coverage(c, 4)
        diffs = np.diff(result.prefix_coverages)
        assert np.all(diffs >= 0)

    def test_gains_match_prefix_diffs(self):
        c = make_collection(6, [[0, 1], [1, 2], [3], [4], [0, 4]])
        result = greedy_max_coverage(c, 4)
        assert result.gains == list(np.diff(result.prefix_coverages))

    def test_gains_non_increasing(self):
        """Submodularity: greedy marginal gains never increase."""
        c = make_collection(8, [[0, 1, 2], [1, 2], [2, 3], [4], [5], [0, 5]])
        result = greedy_max_coverage(c, 5)
        assert all(a >= b for a, b in zip(result.gains, result.gains[1:]))

    def test_topk_sum_at_start_counts_best_k_nodes(self):
        # Singleton coverages: node0=3, node1=2, node2=1.
        c = make_collection(4, [[0], [0], [0, 1], [1, 2]])
        result = greedy_max_coverage(c, 2)
        assert result.prefix_topk_sums[0] == 5  # 3 + 2

    def test_final_topk_sum_zero_when_all_covered(self):
        c = make_collection(3, [[0], [1]])
        result = greedy_max_coverage(c, 2)
        assert result.prefix_topk_sums[-1] == 0


@st.composite
def random_collections(draw):
    n = draw(st.integers(3, 8))
    num_sets = draw(st.integers(1, 14))
    sets = [
        draw(
            st.lists(
                st.integers(0, n - 1), min_size=1, max_size=n, unique=True
            )
        )
        for _ in range(num_sets)
    ]
    k = draw(st.integers(1, min(3, n)))
    return n, sets, k


class TestGreedyApproximation:
    @given(random_collections())
    @settings(max_examples=60, deadline=None)
    def test_greedy_dominates_1_minus_1_over_e(self, case):
        """Greedy coverage >= (1 - (1-1/k)^k) * optimum, hence >= (1-1/e)."""
        n, sets, k = case
        c = make_collection(n, sets)
        result = greedy_max_coverage(c, k)
        optimum, _ = brute_force_best_coverage(c, k)
        ratio = 1.0 - (1.0 - 1.0 / k) ** k
        assert result.coverage >= ratio * optimum - 1e-9

    @given(random_collections())
    @settings(max_examples=60, deadline=None)
    def test_upper_bounds_dominate_optimum(self, case):
        """Every coverage upper bound must be >= the true optimum
        (Lemma 5.1 instantiated on the empirical collection)."""
        n, sets, k = case
        c = make_collection(n, sets)
        result = greedy_max_coverage(c, k)
        optimum, _ = brute_force_best_coverage(c, k)
        assert coverage_upper_bound_pessimistic(result) >= optimum - 1e-9
        assert coverage_upper_bound_greedy(result) >= optimum - 1e-9
        assert coverage_upper_bound_leskovec(result) >= optimum - 1e-9

    @given(random_collections())
    @settings(max_examples=60, deadline=None)
    def test_lemma_5_2_ordering(self, case):
        """Lambda_1^u(S^o) <= Lambda_1(S*) / (1 - (1-1/k)^k)  (Lemma 5.2)."""
        n, sets, k = case
        c = make_collection(n, sets)
        result = greedy_max_coverage(c, k)
        assert (
            coverage_upper_bound_greedy(result)
            <= coverage_upper_bound_pessimistic(result) + 1e-9
        )

    @given(random_collections())
    @settings(max_examples=60, deadline=None)
    def test_greedy_bound_never_worse_than_leskovec(self, case):
        """The Eq. 10 minimum includes the final prefix, so it is at
        most the Leskovec bound."""
        n, sets, k = case
        c = make_collection(n, sets)
        result = greedy_max_coverage(c, k)
        assert (
            coverage_upper_bound_greedy(result)
            <= coverage_upper_bound_leskovec(result) + 1e-9
        )


class TestBoundEdgeCases:
    def test_pessimistic_e_form_is_looser(self):
        c = make_collection(4, [[0], [0, 1], [2]])
        result = greedy_max_coverage(c, 2)
        assert coverage_upper_bound_pessimistic_e(
            result
        ) >= coverage_upper_bound_pessimistic(result) * (
            (1 - (1 - 1 / 2) ** 2) / (1 - 1 / math.e)
        ) - 1e-9

    def test_k1_pessimistic_equals_coverage(self):
        # k = 1: ratio is 1 - (1-1)^1 = 1, so the bound equals coverage.
        c = make_collection(3, [[0], [0], [1]])
        result = greedy_max_coverage(c, 1)
        assert coverage_upper_bound_pessimistic(result) == pytest.approx(2.0)

    def test_empty_result_rejected(self):
        empty = GreedyResult(
            seeds=[], coverage=0, prefix_coverages=[0], prefix_topk_sums=[0]
        )
        for bound in (
            coverage_upper_bound_pessimistic,
            coverage_upper_bound_greedy,
            coverage_upper_bound_leskovec,
        ):
            with pytest.raises(ParameterError):
                bound(empty)

    def test_leskovec_can_be_looser_than_pessimistic(self):
        """The paper's motivation for OPIM+ over OPIM': there exist
        instances where Leskovec's bound exceeds Lambda/(1 - 1/e)."""
        # k=1: pessimistic bound equals greedy coverage (exact), while
        # Leskovec adds the runner-up's marginal on top.
        c = make_collection(4, [[0], [1]])
        result = greedy_max_coverage(c, 1)
        assert coverage_upper_bound_leskovec(result) > coverage_upper_bound_pessimistic(
            result
        )
