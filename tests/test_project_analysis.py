"""Whole-program (RPR2xx) analysis: fixtures, CLI surface, acceptance gates.

The per-rule fixtures live in ``tests/analysis_fixtures/rpr2*``; each
directory holds a ``positive.py`` the rule must flag and a
``negative.py`` it must leave alone (the negative encodes the
sanctioned pattern from the shipped tree — the ``delta/2^i`` schedule,
executor-routed sampler work, try/finally SharedMemory release, the
finite-vocabulary outcome classifier).
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import run_lint
from repro.analysis.rules import FILE_RULES, PROJECT_RULES

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

PROJECT_FIXTURE_CASES = [
    ("RPR201", FIXTURES / "rpr201"),
    ("RPR202", FIXTURES / "rpr202"),
    ("RPR203", FIXTURES / "rpr203"),
    ("RPR204", FIXTURES / "rpr204"),
    ("RPR205", FIXTURES / "rpr205"),
]


def project_findings(path, rule_id):
    report = run_lint([path], select=[rule_id])
    return report.findings


class TestProjectRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id,fixture_dir",
        PROJECT_FIXTURE_CASES,
        ids=[case[0] for case in PROJECT_FIXTURE_CASES],
    )
    def test_positive_fires_and_negative_is_silent(self, rule_id, fixture_dir):
        findings = project_findings(fixture_dir, rule_id)
        assert findings, f"{rule_id} silent on its positive fixture"
        flagged_files = {Path(f.path).name for f in findings}
        assert flagged_files == {"positive.py"}, [
            f.render() for f in findings
        ]
        assert all(f.rule_id == rule_id for f in findings)

    def test_rpr201_names_reuse_and_citation(self):
        findings = project_findings(FIXTURES / "rpr201", "RPR201")
        assert len(findings) == 1
        message = findings[0].message
        assert "adopted" in message and "1808.09363" in message

    def test_rpr202_reports_overspend_factor(self):
        findings = project_findings(FIXTURES / "rpr202", "RPR202")
        assert len(findings) == 1
        assert "1.50x" in findings[0].message

    def test_rpr203_reports_transitive_path(self):
        findings = project_findings(FIXTURES / "rpr203", "RPR203")
        via = [f for f in findings if "via" in f.message]
        assert via, [f.render() for f in findings]

    def test_rpr204_flags_both_leak_modes(self):
        findings = project_findings(FIXTURES / "rpr204", "RPR204")
        messages = " | ".join(f.message for f in findings)
        assert "never released" in messages or "unlink" in messages
        assert "exception" in messages

    def test_rpr205_names_the_label_key(self):
        findings = project_findings(FIXTURES / "rpr205", "RPR205")
        keys = {f.message.split("'")[1] for f in findings}
        assert keys == {"user", "trace", "path"}

    def test_no_project_flag_skips_rpr2xx(self):
        report = run_lint(
            [FIXTURES / "rpr201"], select=["RPR201"], project_analysis=False
        )
        assert report.findings == []


class TestProjectSuppressions:
    def test_noqa_on_decorated_def_suppresses_project_rule(self, tmp_path):
        (tmp_path / "audit.py").write_text(
            "import functools\n\n"
            "from repro.bounds import sigma_lower_bound\n\n\n"
            "def logged(fn):\n"
            "    return functools.wraps(fn)(fn)\n\n\n"
            "@logged\n"
            "def over_spent(cov, theta, n, delta):"
            "  # repro: noqa[RPR202]\n"
            "    low = sigma_lower_bound(cov, theta, n, delta / 2)\n"
            "    mid = sigma_lower_bound(cov, theta, n, delta / 2)\n"
            "    high = sigma_lower_bound(cov, theta, n, delta / 2)\n"
            "    return low + mid + high\n"
        )
        report = run_lint([tmp_path], select=["RPR202"])
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.suppressed == 1

        # Same tree without the noqa: the decorated def is flagged.
        source = (tmp_path / "audit.py").read_text()
        (tmp_path / "audit.py").write_text(
            source.replace("  # repro: noqa[RPR202]", "")
        )
        report = run_lint([tmp_path], select=["RPR202"])
        assert [f.rule_id for f in report.findings] == ["RPR202"]


class TestExitCodeParity:
    """Satellite: text and JSON runs agree on 0/1/2 for the same input."""

    def test_findings_exit_one_both_formats(self, capsys):
        target = str(FIXTURES / "rpr201")
        assert lint_main([target, "--no-baseline"]) == 1
        capsys.readouterr()
        assert lint_main([target, "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 1

    def test_clean_exit_zero_both_formats(self, capsys):
        target = str(FIXTURES / "rpr201" / "negative.py")
        assert lint_main([target, "--no-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([target, "--no-baseline", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 0

    def test_usage_error_exit_two_both_formats(self):
        assert lint_main(["does/not/exist.py"]) == 2
        assert lint_main(["does/not/exist.py", "--format", "json"]) == 2
        assert lint_main(["--select", "NOPE"]) == 2
        assert lint_main(["--select", "NOPE", "--format", "json"]) == 2

    def test_output_flag_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = lint_main(
            [
                str(FIXTURES / "rpr202"),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(out),
            ]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["summary"]["exit_code"] == 1
        assert payload["summary"]["new"] >= 1


class TestExplain:
    def test_explain_prints_rationale_and_citation(self, capsys):
        assert lint_main(["--explain", "RPR201"]) == 0
        out = capsys.readouterr().out
        assert "RPR201" in out
        assert "1808.09363" in out

    def test_explain_family_glob(self, capsys):
        assert lint_main(["--explain", "RPR2xx"]) == 0
        out = capsys.readouterr().out
        for cls in PROJECT_RULES:
            assert cls.rule_id in out

    def test_explain_all(self, capsys):
        assert lint_main(["--explain", "all"]) == 0
        out = capsys.readouterr().out
        for cls in FILE_RULES + PROJECT_RULES:
            assert cls.rule_id in out

    def test_explain_unknown_is_usage_error(self, capsys):
        assert lint_main(["--explain", "RPR999"]) == 2


class TestBaselineRatchet:
    """Satellite: accepted debt can only shrink, never silently regrow."""

    def _write_tree(self, tmp_path, with_violation):
        body = "import numpy as np\n\n\ndef f():\n"
        if with_violation:
            body += "    return np.random.default_rng()\n"
        else:
            body += "    return np.random.default_rng(7)\n"
        (tmp_path / "mod.py").write_text(body)

    def test_stale_entries_reported_and_pruned(self, tmp_path, capsys):
        self._write_tree(tmp_path, with_violation=True)
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        capsys.readouterr()

        # Fix the violation: the run is clean but the baseline is stale.
        self._write_tree(tmp_path, with_violation=False)
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out

        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--prune-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale entry" in out
        assert len(Baseline.load(baseline)) == 0

        # Ratchet: the pruned debt cannot regrow silently.
        self._write_tree(tmp_path, with_violation=True)
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1

    def test_prune_without_baseline_is_usage_error(self, tmp_path, monkeypatch):
        # chdir away from the repo so the default baseline is not picked up
        # (and cannot be rewritten by the prune).
        monkeypatch.chdir(tmp_path)
        self._write_tree(tmp_path, with_violation=False)
        assert lint_main(["mod.py", "--prune-baseline"]) == 2


class TestAcceptance:
    def test_shipped_tree_has_zero_unsuppressed_project_findings(
        self, monkeypatch
    ):
        monkeypatch.chdir(REPO_ROOT)
        started = time.perf_counter()
        report = run_lint(
            ["src"], baseline_path=REPO_ROOT / ".reprolint-baseline.json"
        )
        elapsed = time.perf_counter() - started
        assert report.findings == [], [f.render() for f in report.findings]
        assert elapsed < 10.0, f"full analysis took {elapsed:.1f}s"

    def test_project_rules_are_registered(self):
        ids = {cls.rule_id for cls in PROJECT_RULES}
        assert ids == {"RPR201", "RPR202", "RPR203", "RPR204", "RPR205"}
        assert all(cls.scope == "project" for cls in PROJECT_RULES)
        assert all(cls.rationale for cls in PROJECT_RULES)
        assert all(cls.citation for cls in PROJECT_RULES)
