"""Tests for the conventional-IM baselines: IMM, TIM+, SSA-Fix,
D-SSA-Fix, and CELF."""

from __future__ import annotations

import math

import pytest

from repro.baselines.celf import celf_greedy
from repro.baselines.dssa import dssa_fix
from repro.baselines.imm import imm
from repro.baselines.ssa import ssa_fix
from repro.baselines.tim import tim_plus
from repro.diffusion.spread import exact_spread_ic
from repro.exceptions import BudgetExceededError, ParameterError
from tests.conftest import brute_force_best_spread_ic

RIS_ALGORITHMS = [imm, tim_plus, ssa_fix, dssa_fix]


@pytest.mark.parametrize("algorithm", RIS_ALGORITHMS)
class TestRISCommonContract:
    """Behaviour every RIS baseline must satisfy."""

    def test_returns_k_unique_seeds(self, algorithm, small_graph):
        result = algorithm(small_graph, "IC", 4, 0.4, delta=0.1, seed=1)
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4
        assert all(0 <= s < small_graph.n for s in result.seeds)

    def test_accounting_fields(self, algorithm, small_graph):
        result = algorithm(small_graph, "IC", 3, 0.4, delta=0.1, seed=2)
        assert result.num_rr_sets > 0
        assert result.edges_examined > 0
        assert result.elapsed > 0
        assert result.iterations >= 1
        assert result.epsilon == 0.4

    def test_lt_model(self, algorithm, small_graph):
        result = algorithm(small_graph, "LT", 3, 0.4, delta=0.1, seed=3)
        assert len(result.seeds) == 3

    def test_invalid_epsilon(self, algorithm, small_graph):
        with pytest.raises(ParameterError):
            algorithm(small_graph, "IC", 3, 1.5, delta=0.1)

    def test_invalid_k(self, algorithm, small_graph):
        with pytest.raises(ParameterError):
            algorithm(small_graph, "IC", 0, 0.3, delta=0.1)

    def test_default_delta(self, algorithm, small_graph):
        result = algorithm(small_graph, "IC", 3, 0.4, seed=4)
        assert result.delta == pytest.approx(1.0 / small_graph.n)

    def test_budget_abort(self, algorithm, small_graph):
        with pytest.raises(BudgetExceededError) as info:
            algorithm(small_graph, "IC", 3, 0.05, delta=0.01, seed=5, rr_budget=5)
        assert info.value.num_rr_sets <= 5

    def test_quality_against_brute_force(self, algorithm, tiny_weighted_graph):
        """Seeds reach (1 - 1/e - eps) * OPT on an exact instance."""
        k, epsilon = 2, 0.3
        opt, _ = brute_force_best_spread_ic(tiny_weighted_graph, k)
        result = algorithm(
            tiny_weighted_graph, "IC", k, epsilon, delta=0.05, seed=6
        )
        achieved = exact_spread_ic(tiny_weighted_graph, result.seeds)
        assert achieved >= (1 - 1 / math.e - epsilon) * opt - 1e-9


class TestIMMSpecifics:
    def test_algorithm_name(self, small_graph):
        assert imm(small_graph, "IC", 3, 0.4, delta=0.1, seed=1).algorithm == "IMM"

    def test_smaller_epsilon_more_samples(self, small_graph):
        loose = imm(small_graph, "IC", 4, 0.5, delta=0.1, seed=2)
        tight = imm(small_graph, "IC", 4, 0.15, delta=0.1, seed=2)
        assert tight.num_rr_sets > loose.num_rr_sets

    def test_lower_bound_recorded(self, small_graph):
        result = imm(small_graph, "IC", 3, 0.4, delta=0.1, seed=3)
        assert 1.0 <= result.extra["lower_bound"] <= small_graph.n

    def test_theta_consistent(self, small_graph):
        result = imm(small_graph, "IC", 3, 0.4, delta=0.1, seed=4)
        assert result.num_rr_sets >= result.extra["theta"]


class TestTIMSpecifics:
    def test_algorithm_name(self, small_graph):
        result = tim_plus(small_graph, "IC", 3, 0.4, delta=0.1, seed=1)
        assert result.algorithm == "TIM+"

    def test_kpt_positive(self, small_graph):
        result = tim_plus(small_graph, "IC", 3, 0.4, delta=0.1, seed=2)
        assert result.extra["kpt"] >= 1.0

    def test_refinement_can_be_disabled(self, small_graph):
        result = tim_plus(small_graph, "IC", 3, 0.4, delta=0.1, seed=3, refine=False)
        assert len(result.seeds) == 3

    def test_refinement_reduces_theta_typically(self, small_graph):
        refined = tim_plus(small_graph, "IC", 3, 0.4, delta=0.1, seed=4, refine=True)
        plain = tim_plus(small_graph, "IC", 3, 0.4, delta=0.1, seed=4, refine=False)
        assert refined.extra["kpt"] >= plain.extra["kpt"]


class TestSSASpecifics:
    def test_algorithm_name(self, small_graph):
        result = ssa_fix(small_graph, "IC", 3, 0.4, delta=0.1, seed=1)
        assert result.algorithm == "SSA-Fix"

    def test_validation_metadata(self, small_graph):
        result = ssa_fix(small_graph, "IC", 3, 0.4, delta=0.1, seed=2)
        assert "validated" in result.extra
        assert result.extra["lambda_1"] > 0
        assert result.extra["lambda_2"] > 0


class TestDSSASpecifics:
    def test_algorithm_name(self, small_graph):
        result = dssa_fix(small_graph, "IC", 3, 0.4, delta=0.1, seed=1)
        assert result.algorithm == "D-SSA-Fix"

    def test_epsilon_i_recorded_when_stopping_early(self, small_graph):
        result = dssa_fix(small_graph, "IC", 3, 0.4, delta=0.1, seed=2)
        if result.num_rr_sets < result.extra["theta_prime_max"]:
            assert result.extra["epsilon_i"] <= 0.4

    def test_equal_halves(self, small_graph):
        result = dssa_fix(small_graph, "IC", 3, 0.4, delta=0.1, seed=3)
        assert result.num_rr_sets % 2 == 0

    def test_fewer_samples_than_imm(self, medium_graph):
        """D-SSA's instance-adaptive stopping typically undercuts IMM
        (the relation the paper's experiments show)."""
        d = dssa_fix(medium_graph, "IC", 5, 0.3, delta=0.05, seed=4)
        i = imm(medium_graph, "IC", 5, 0.3, delta=0.05, seed=4)
        assert d.num_rr_sets < i.num_rr_sets


class TestCELF:
    def test_matches_brute_force_on_exact_instance(self, tiny_weighted_graph):
        opt_value, opt_set = brute_force_best_spread_ic(tiny_weighted_graph, 2)
        result = celf_greedy(
            tiny_weighted_graph, "IC", 2, num_samples=3000, seed=1
        )
        achieved = exact_spread_ic(tiny_weighted_graph, result.seeds)
        # Greedy is (1 - 1/e)-optimal; with good estimates it usually
        # nails the optimum on this instance — allow the greedy bound.
        assert achieved >= (1 - 1 / math.e) * opt_value - 0.1

    def test_seed_count(self, small_graph):
        result = celf_greedy(small_graph, "IC", 3, num_samples=50, seed=2)
        assert len(result.seeds) == 3
        assert result.algorithm == "CELF"

    def test_candidates_restriction(self, small_graph):
        candidates = [0, 1, 2, 3, 4]
        result = celf_greedy(
            small_graph, "IC", 2, num_samples=50, seed=3, candidates=candidates
        )
        assert set(result.seeds) <= set(candidates)

    def test_simulation_accounting(self, small_graph):
        result = celf_greedy(
            small_graph, "IC", 2, num_samples=20, seed=4, candidates=[0, 1, 2]
        )
        assert result.extra["simulations"] >= 3 * 20

    def test_invalid_k(self, small_graph):
        with pytest.raises(ParameterError):
            celf_greedy(small_graph, "IC", 0, num_samples=10)

    def test_lt_model(self, small_graph):
        result = celf_greedy(
            small_graph, "LT", 2, num_samples=30, seed=5, candidates=list(range(10))
        )
        assert len(result.seeds) == 2
