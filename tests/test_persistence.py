"""Tests for RR-collection serialization and OPIM checkpoint/restore."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.opim import OnlineOPIM
from repro.core.persistence import load_opim, save_opim
from repro.exceptions import GraphFormatError, ParameterError
from repro.sampling.collection import RRCollection
from repro.sampling.serialize import load_collection, save_collection


class TestCollectionSerialization:
    def test_round_trip(self, tmp_path):
        c = RRCollection(10)
        c.extend([np.array([0, 1]), np.array([5]), np.array([2, 3, 4])])
        path = tmp_path / "c.npz"
        save_collection(c, path)
        loaded = load_collection(path)
        assert len(loaded) == 3
        assert loaded.n == 10
        assert loaded.get(0).tolist() == [0, 1]
        assert loaded.get(2).tolist() == [2, 3, 4]
        assert loaded.coverage([5]) == 1

    def test_empty_collection_round_trip(self, tmp_path):
        c = RRCollection(4)
        path = tmp_path / "c.npz"
        save_collection(c, path)
        assert len(load_collection(path)) == 0

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "c.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(GraphFormatError):
            load_collection(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "c.npz"
        np.savez(
            path,
            version=np.int64(999),
            n=np.int64(3),
            rr_offsets=np.array([0]),
            rr_nodes=np.array([], dtype=np.int32),
        )
        with pytest.raises(GraphFormatError, match="version"):
            load_collection(path)


class TestOPIMCheckpoint:
    def test_restore_resumes_identically(self, medium_graph, tmp_path):
        """A restored session must produce byte-identical futures: the
        same RR sets, the same seeds, the same guarantee."""
        original = OnlineOPIM(medium_graph, "IC", k=3, delta=0.1, seed=77)
        original.extend(800)
        save_opim(original, tmp_path / "ckpt")
        restored = load_opim(medium_graph, tmp_path / "ckpt")

        original.extend(400)
        restored.extend(400)
        a = original.query()
        b = restored.query()
        assert a.seeds == b.seeds
        assert a.alpha == pytest.approx(b.alpha)
        assert a.edges_examined == b.edges_examined
        assert a.num_rr_sets == b.num_rr_sets

    def test_metadata_restored(self, medium_graph, tmp_path):
        original = OnlineOPIM(
            medium_graph, "LT", k=5, delta=0.07, bound="vanilla", seed=3
        )
        original.extend(200)
        save_opim(original, tmp_path / "ckpt")
        restored = load_opim(medium_graph, tmp_path / "ckpt")
        assert restored.k == 5
        assert restored.delta == pytest.approx(0.07)
        assert restored.bound == "vanilla"
        assert restored.sampler.model == "LT"
        assert restored.num_rr_sets == 200

    def test_graph_mismatch_rejected(self, medium_graph, small_graph, tmp_path):
        original = OnlineOPIM(medium_graph, "IC", k=3, delta=0.1, seed=1)
        original.extend(100)
        save_opim(original, tmp_path / "ckpt")
        with pytest.raises(ParameterError, match="checkpoint"):
            load_opim(small_graph, tmp_path / "ckpt")

    def test_missing_checkpoint(self, medium_graph, tmp_path):
        with pytest.raises(GraphFormatError, match="meta.json"):
            load_opim(medium_graph, tmp_path / "nothing")

    def test_bad_version(self, medium_graph, tmp_path):
        original = OnlineOPIM(medium_graph, "IC", k=3, delta=0.1, seed=1)
        original.extend(100)
        directory = tmp_path / "ckpt"
        save_opim(original, directory)
        meta = json.loads((directory / "meta.json").read_text())
        meta["version"] = 42
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(GraphFormatError, match="version"):
            load_opim(medium_graph, directory)

    def test_elapsed_carried_over(self, medium_graph, tmp_path):
        original = OnlineOPIM(medium_graph, "IC", k=3, delta=0.1, seed=1)
        original.extend(200)
        save_opim(original, tmp_path / "ckpt")
        restored = load_opim(medium_graph, tmp_path / "ckpt")
        assert restored.timer.elapsed == pytest.approx(
            original.timer.elapsed, abs=1e-6
        )
