"""Statistical validation of OPIM-C's approximation guarantee.

The paper's Theorem 6.2 states that OPIM-C returns a seed set ``S*``
with ``sigma(S*) >= (1 - 1/e - eps) * OPT`` with probability at least
``1 - delta``.  On a 5-node graph both sides are computable exactly:

* ``OPT`` by brute force over all k-subsets with exact IC spread
  (:func:`~repro.diffusion.spread.exact_spread_ic` enumerates the
  2^m live-edge worlds);
* ``sigma(S*)`` by the same exact evaluator on the returned seeds.

Running OPIM-C over many independent sampling seeds then gives an
empirical success frequency which must be at least ``1 - delta`` up to
binomial fluctuation.  The tolerance is a one-sided Hoeffding bound:
if the true success probability is ``p >= 1 - delta``, the empirical
frequency over ``N`` trials drops below ``1 - delta - t`` with
probability at most ``exp(-2 N t^2)``; the slack used here makes that
a ``beta = 1e-3`` event, so a failure of this test is overwhelmingly a
real guarantee violation rather than bad luck.

The 200-trial test is marked ``slow`` and runs in the nightly CI job
(``pytest -m slow``); a 25-trial smoke version runs in every tier-1
invocation.
"""

from __future__ import annotations

import math

import pytest

from repro.core.opimc import opim_c
from repro.diffusion.spread import exact_spread_ic
from repro.stats_harness import SCENARIOS, format_report, run_scenario

from .conftest import brute_force_best_spread_ic

K = 2
EPSILON = 0.3
DELTA = 0.25


def _hoeffding_slack(trials: int, beta: float = 1e-3) -> float:
    """One-sided deviation ``t`` with ``exp(-2 N t^2) <= beta``."""
    return math.sqrt(math.log(1.0 / beta) / (2.0 * trials))


def _success_frequency(graph, opt: float, trials: int, seed0: int) -> float:
    threshold = (1.0 - 1.0 / math.e - EPSILON) * opt
    successes = 0
    for trial in range(trials):
        result = opim_c(
            graph,
            "IC",
            k=K,
            epsilon=EPSILON,
            delta=DELTA,
            seed=seed0 + trial,
            fast=True,
        )
        achieved = exact_spread_ic(graph, result.seeds)
        if achieved >= threshold - 1e-9:
            successes += 1
    return successes / trials


class TestGuaranteeFrequency:
    @pytest.mark.slow
    def test_guarantee_holds_with_probability_one_minus_delta(
        self, tiny_weighted_graph
    ):
        """200 independent OPIM-C runs vs. the brute-force optimum."""
        trials = 200
        opt, _ = brute_force_best_spread_ic(tiny_weighted_graph, K)
        frequency = _success_frequency(
            tiny_weighted_graph, opt, trials=trials, seed0=10_000
        )
        floor = (1.0 - DELTA) - _hoeffding_slack(trials)
        assert frequency >= floor, (
            f"empirical success frequency {frequency:.3f} fell below "
            f"{floor:.3f} = (1 - delta) - Hoeffding slack over "
            f"{trials} trials"
        )

    def test_guarantee_smoke(self, tiny_weighted_graph):
        """Cheap every-run variant: 25 trials, same oracle, looser bar."""
        trials = 25
        opt, _ = brute_force_best_spread_ic(tiny_weighted_graph, K)
        frequency = _success_frequency(
            tiny_weighted_graph, opt, trials=trials, seed0=77_000
        )
        assert frequency >= (1.0 - DELTA) - _hoeffding_slack(trials)

    def test_exact_oracle_sanity(self, tiny_weighted_graph):
        """The brute-force OPT dominates every reported seed set and a
        singleton spread is at least 1 (the seed itself)."""
        opt, opt_set = brute_force_best_spread_ic(tiny_weighted_graph, K)
        assert len(opt_set) == K
        assert opt >= exact_spread_ic(tiny_weighted_graph, [0, 1])
        assert exact_spread_ic(tiny_weighted_graph, [4]) >= 1.0


class TestServePathGuarantees:
    """Harness-driven acceptance of the serving layer's guarantees.

    ``test_guarantee_holds_*`` above covers the cold single-query path
    only; these trials cover what production traffic actually does —
    warm-index restarts (claims riding on RR sets sampled by a previous
    process) and ``adopt_collections`` sketch reuse across many ``k``.
    The verdict is the harness's Clopper–Pearson criterion: the upper
    confidence bound on every claim group's failure rate must stay
    within ``delta``.
    """

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_acceptance_200_trials(
        self, tiny_weighted_graph, stat_entropy, name
    ):
        """Every serve-path scenario at the full acceptance trial
        count (nightly ``-m slow`` tier)."""
        report = run_scenario(
            name,
            tiny_weighted_graph,
            trials=200,
            entropy=stat_entropy,
            epsilon=EPSILON,
            delta=DELTA,
        )
        assert report.passed, format_report(report)

    @pytest.mark.slow
    def test_sadeh_stopping_acceptance_200_trials(
        self, tiny_weighted_graph, stat_entropy
    ):
        """The early-stopping rule must keep the guarantee too."""
        report = run_scenario(
            "cold_opimc",
            tiny_weighted_graph,
            trials=200,
            entropy=stat_entropy,
            epsilon=EPSILON,
            delta=DELTA,
            stopping="sadeh",
        )
        assert report.passed, format_report(report)

    def test_warm_index_smoke(self, tiny_weighted_graph, stat_entropy):
        """Tier-1 warm-restart acceptance: save the sketch index,
        restart a fresh engine from disk, answer, verify the claims."""
        report = run_scenario(
            "warm_index",
            tiny_weighted_graph,
            trials=20,
            entropy=stat_entropy,
            epsilon=EPSILON,
            delta=DELTA,
        )
        assert report.passed, format_report(report)

    def test_cluster_path_smoke(self, tiny_weighted_graph, stat_entropy):
        """Tier-1 sharded-tier acceptance: trials go through the HTTP
        front end into a worker process, evict, then requery a warm
        engine restored from the persistent index.  The per-label
        Clopper–Pearson verdict must match ``warm_index`` — same label
        set, same acceptance criterion — because the cluster only adds
        transport and process boundaries, never statistics."""
        cluster = run_scenario(
            "cluster_path",
            tiny_weighted_graph,
            trials=20,
            entropy=stat_entropy,
            epsilon=EPSILON,
            delta=DELTA,
        )
        assert cluster.passed, format_report(cluster)
        warm = run_scenario(
            "warm_index",
            tiny_weighted_graph,
            trials=20,
            entropy=stat_entropy,
            epsilon=EPSILON,
            delta=DELTA,
        )
        assert warm.passed, format_report(warm)
        assert {stats.label for stats in cluster.labels} == {
            stats.label for stats in warm.labels
        }

    def test_multi_k_smoke(self, tiny_weighted_graph, stat_entropy):
        """Tier-1 adopted-sketch acceptance: one shared stream serving
        k = 1, 2, 3 — each k's claim group must certify delta."""
        report = run_scenario(
            "multi_k",
            tiny_weighted_graph,
            trials=20,
            entropy=stat_entropy,
            epsilon=EPSILON,
            delta=DELTA,
            ks=(1, 2, 3),
        )
        assert report.passed, format_report(report)
        labels = {stats.label for stats in report.labels}
        assert labels == {"k=1", "k=2", "k=3"}
