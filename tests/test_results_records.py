"""Tests for the result record types and snapshot semantics."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.results import IMResult, OnlineSnapshot


class TestOnlineSnapshot:
    def _snapshot(self, **overrides):
        base = dict(
            seeds=[1, 2],
            alpha=0.5,
            variant="greedy",
            num_rr_sets=100,
            theta1=50,
            theta2=50,
            sigma_low=10.0,
            sigma_up=20.0,
            coverage_r1=30,
            coverage_r2=25,
            edges_examined=1234,
            elapsed=0.5,
        )
        base.update(overrides)
        return OnlineSnapshot(**base)

    def test_frozen(self):
        snap = self._snapshot()
        with pytest.raises(dataclasses.FrozenInstanceError):
            snap.alpha = 0.9

    def test_defaults(self):
        snap = OnlineSnapshot(
            seeds=[0], alpha=0.1, variant="borgs", num_rr_sets=10
        )
        assert snap.theta1 == 0
        assert snap.sigma_low == 0.0
        assert snap.elapsed == 0.0

    def test_fields_consistent(self):
        snap = self._snapshot()
        assert snap.theta1 + snap.theta2 == snap.num_rr_sets
        assert snap.sigma_low <= snap.sigma_up
        assert snap.alpha == pytest.approx(
            snap.sigma_low / snap.sigma_up, abs=1e-12
        )


class TestIMResult:
    def test_frozen(self):
        result = IMResult(
            algorithm="X",
            seeds=[0],
            k=1,
            epsilon=0.1,
            delta=0.1,
            num_rr_sets=5,
            elapsed=0.1,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.k = 2

    def test_extra_defaults_to_empty_dict(self):
        a = IMResult("X", [0], 1, 0.1, 0.1, 5, 0.1)
        b = IMResult("Y", [1], 1, 0.1, 0.1, 5, 0.1)
        # Each instance must get its own dict (dataclass factory).
        assert a.extra == {}
        assert a.extra is not b.extra

    def test_optional_fields(self):
        result = IMResult(
            "X", [0], 1, 0.1, 0.1, 5, 0.1, alpha_achieved=0.4, iterations=3
        )
        assert result.alpha_achieved == 0.4
        assert result.iterations == 3
