"""RPR203 negative: blocking work correctly routed to the executor.

The handlers hand the sampler call to ``run_in_executor`` as a lambda
(a separate scope that runs on the engine thread) and await the
result; pure event-loop work (cache lookups, awaited coroutines) stays
inline.
"""

import asyncio
import time


class SamplingPool:
    def fill(self, collection, count):
        time.sleep(0.1)
        collection.extend(range(count))


class QueryHandler:
    def __init__(self, pool: SamplingPool):
        self.pool = pool
        self.r1 = []
        self.cache = {}

    async def handle_query(self, request):
        key = len(self.r1)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.pool.fill(self.r1, 100))
        response = {"rr_sets": len(self.r1)}
        self.cache[key] = response
        return response

    async def handle_stats(self, request):
        depth = await self._queue_depth()
        return {"rr_sets": len(self.r1), "depth": depth}

    async def _queue_depth(self):
        return len(self.cache)
