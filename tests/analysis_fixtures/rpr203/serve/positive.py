"""RPR203 positive: blocking sampler work inside async serve handlers.

``handle_query`` runs ``SamplingPool.fill`` (CPU/IPC-bound) directly
on the event loop; ``handle_refresh`` reaches the same work through a
synchronous helper; ``handle_dump`` performs file I/O inline.
"""

import time


class SamplingPool:
    def fill(self, collection, count):
        time.sleep(0.1)
        collection.extend(range(count))


class QueryHandler:
    def __init__(self, pool: SamplingPool):
        self.pool = pool
        self.r1 = []

    def _refill(self, count):
        self.pool.fill(self.r1, count)

    async def handle_query(self, request):
        self.pool.fill(self.r1, 100)
        return {"rr_sets": len(self.r1)}

    async def handle_refresh(self, request):
        self._refill(2000)
        return {"rr_sets": len(self.r1)}

    async def handle_dump(self, request, path):
        open(path, "w").write(str(len(self.r1)))
        return {"dumped": True}
