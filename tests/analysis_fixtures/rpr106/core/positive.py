"""RPR106 positive fixture: public core function without a paper tag."""


def theta_threshold(n, k):
    """Compute the sample-size threshold."""
    return n * k


def undocumented(n):
    return n
