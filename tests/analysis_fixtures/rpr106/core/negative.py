"""RPR106 negative fixture: tagged public functions, private helpers."""


def theta_threshold(n, k):
    """Compute the sample-size threshold of Eq. 16."""
    return n * k


def split_ratio(delta):
    """Near-optimality of the delta/2 split (Lemma 4.4)."""
    return delta / 2.0


def _private_helper(n):
    return n
