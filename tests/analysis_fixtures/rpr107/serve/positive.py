"""RPR107 positive fixture: hot path constructing its own registry."""

from repro.obs import MetricsRegistry
from repro.obs.registry import MetricsRegistry as AliasedRegistry


class Engine:
    def __init__(self):
        self.obs = MetricsRegistry()

    def rebuild(self):
        return AliasedRegistry(sink=None)
