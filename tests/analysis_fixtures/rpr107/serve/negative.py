"""RPR107 negative fixture: registry injected and resolved, not built."""

from repro.obs import resolve_registry


class Engine:
    def __init__(self, registry=None):
        self.obs = resolve_registry(registry)

    def observe(self, elapsed):
        self.obs.histogram("engine.select_seconds").observe(elapsed)
