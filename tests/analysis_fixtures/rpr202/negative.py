"""RPR202 negative: budget splits that stay within delta.

``balanced_audit`` spends exactly ``delta/2 + delta/2`` (the Lemma 4.4
split); ``scheduled_audit`` spends under a ``delta / 2**i`` schedule,
whose geometric sum stays below delta by construction.
"""


def sigma_lower_bound(coverage, theta, n, delta):
    return coverage * n / theta - delta


def sigma_upper_bound(coverage, theta, n, delta):
    return coverage * n / theta + delta


def balanced_audit(coverage, theta, n, delta):
    low = sigma_lower_bound(coverage, theta, n, delta / 2)
    high = sigma_upper_bound(coverage, theta, n, delta / 2)
    return low, high


def scheduled_audit(coverage, theta, n, delta, rounds):
    bounds = []
    for i in range(rounds):
        slice_delta = delta / (2.0 ** (i + 1))
        bounds.append(sigma_lower_bound(coverage, theta, n, slice_delta))
    return bounds
