"""RPR202 positive: constant delta fractions summing past the budget.

``over_spent_audit`` hands ``delta/2`` to both sigma bounds and then
spends another ``delta/2`` through a helper — 1.5x the budget it
advertises.  The helper itself stays within its own (sub-)budget, so
only the caller is flagged.
"""


def sigma_lower_bound(coverage, theta, n, delta):
    return coverage * n / theta - delta


def sigma_upper_bound(coverage, theta, n, delta):
    return coverage * n / theta + delta


def refine_lower(coverage, theta, n, delta):
    return sigma_lower_bound(coverage, theta, n, delta)


def over_spent_audit(coverage, theta, n, delta):
    low = sigma_lower_bound(coverage, theta, n, delta / 2)
    high = sigma_upper_bound(coverage, theta, n, delta / 2)
    tightened = refine_lower(coverage, theta, n, delta / 2)
    return low, high, tightened
