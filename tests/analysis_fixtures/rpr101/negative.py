"""RPR101 negative fixture: disjoint nominator/judge collections."""

from repro.bounds.concentration import sigma_lower_bound
from repro.maxcover.greedy import greedy_max_coverage


def select_on_r1_judge_on_r2(r1, r2, n, delta):
    greedy = greedy_max_coverage(r1, 10)
    coverage = r2.coverage(greedy.seeds)
    return sigma_lower_bound(coverage, len(r2), n, delta / 2.0)


def paired_keywords_disjoint(run_split_estimate, r1, r2):
    return run_split_estimate(k=10, r1=r1, r2=r2)
