"""RPR101 positive fixture: R1 both selects and judges the seed set."""

from repro.bounds.concentration import sigma_lower_bound
from repro.maxcover.greedy import greedy_max_coverage


def select_and_judge_on_r1(r1, n, delta):
    greedy = greedy_max_coverage(r1, 10)
    coverage = r1.coverage(greedy.seeds)
    return sigma_lower_bound(coverage, len(r1), n, delta / 2.0)


def paired_keywords_aliased(run_split_estimate, r1):
    return run_split_estimate(k=10, r1=r1, r2=r1)
