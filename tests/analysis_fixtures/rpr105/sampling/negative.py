"""RPR105 negative fixture: explicit dtypes (keyword or positional)."""

import numpy as np


def build_buffers(n, root):
    visited = np.zeros(n, dtype=bool)
    roots = np.array([root], dtype=np.int64)
    queue = np.empty(n, np.int32)
    return visited, roots, queue
