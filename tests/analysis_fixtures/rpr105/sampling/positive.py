"""RPR105 positive fixture: hot-path constructors with implicit dtype."""

import numpy as np


def build_buffers(n, root):
    visited = np.zeros(n)
    roots = np.array([root])
    return visited, roots
