"""RPR102 negative fixture: symbolic splits and tolerance comparisons."""


def split_budget(delta, i_max):
    return delta / (3.0 * i_max)


def halve_budget(delta):
    return delta / 2.0


def tolerance_check(delta, delta1, delta2):
    # Sub-1e-9 literals are numerical tolerances, not probabilities.
    return delta1 + delta2 <= delta + 1e-12
