"""RPR102 positive fixture: delta combined with probability literals."""


def shrink_budget(delta):
    return delta * 0.5


def compare_budget(delta1, coverage):
    if delta1 > 0.05:
        return coverage
    return 0
