"""RPR201 negative: adopted collections under an adaptive schedule.

``ScheduledSession`` mirrors the serve layer's sound idiom — the i-th
query on the shared collections runs with failure budget
``delta / 2**i``, so the union over all queries stays within delta
even though the samples are shared (looped selection included).
"""


def select_seeds(collection, delta):
    return sorted(collection)[: max(1, int(1.0 / delta))]


class ScheduledSession:
    def __init__(self, delta):
        self.delta = delta
        self.queries_made = 0
        self.r1 = None
        self.r2 = None

    def adopt_collections(self, r1, r2):
        self.r1 = r1
        self.r2 = r2

    def query(self):
        query_delta = self.delta / (2.0 ** (self.queries_made + 1))
        self.queries_made += 1
        half = query_delta / 2.0
        return select_seeds(self.r1, half), select_seeds(self.r2, half)


def serve_queries(r1, r2):
    session = ScheduledSession(0.1)
    session.adopt_collections(r1, r2)
    answers = []
    for _ in range(5):
        answers.append(session.query())
    return answers
