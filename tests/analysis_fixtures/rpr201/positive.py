"""RPR201 positive: adopted collections re-selected under a fixed split.

``SharedOPIM`` mimics the core algorithm's shape — it owns a delta
budget, adopts shared R1/R2 collections, and selects with a *fixed*
``delta / 2`` split.  The driver adopts once and queries twice: the
second selection re-consumes samples that already influenced the first
answer without a fresh budget slice.
"""


def select_seeds(collection, delta):
    return sorted(collection)[: max(1, int(1.0 / delta))]


class SharedOPIM:
    def __init__(self, delta):
        self.delta = delta
        self.r1 = None
        self.r2 = None

    def adopt_collections(self, r1, r2):
        self.r1 = r1
        self.r2 = r2

    def query(self):
        half = self.delta / 2.0
        return select_seeds(self.r1, half), select_seeds(self.r2, half)


def serve_queries(r1, r2):
    algo = SharedOPIM(0.01)
    algo.adopt_collections(r1, r2)
    first = algo.query()
    second = algo.query()
    return first, second
