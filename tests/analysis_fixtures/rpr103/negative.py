"""RPR103 negative fixture: injected, explicitly seeded generators."""

import numpy as np


def seeded_generator(seed):
    return np.random.default_rng(seed)


def derived_children(seed, count):
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]


def draw(rng, n):
    return rng.integers(0, 2, size=n)
