"""RPR103 negative fixture: injected, explicitly seeded generators."""

import numpy as np

# Deterministic: an explicitly seeded SeedSequence is a pure function of
# its entropy, so spawning child streams at import time is replayable.
_CHILD_STREAMS = np.random.SeedSequence(2018).spawn(8)


def seeded_generator(seed):
    return np.random.default_rng(seed)


def derived_children(seed, count):
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]


def draw(rng, n):
    return rng.integers(0, 2, size=n)
