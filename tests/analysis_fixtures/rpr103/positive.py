"""RPR103 positive fixture: global-state and unseeded RNG usage."""

import random

import numpy as np

_MODULE_RNG = np.random.default_rng(2018)


def unseeded_generator():
    return np.random.default_rng()


def unseeded_children(count):
    return np.random.SeedSequence().spawn(count)


def legacy_draw(n):
    return np.random.rand(n)


def stdlib_draw():
    return random.random()
