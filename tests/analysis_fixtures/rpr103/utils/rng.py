"""RPR103 exemption fixture: a utils/rng.py path may build fresh RNGs."""

import numpy as np


def os_seeded():
    return np.random.default_rng()
