"""RPR103 suppression fixture: violation silenced with repro: noqa."""

import numpy as np


def intentionally_unseeded():
    return np.random.default_rng()  # repro: noqa[RPR103]
