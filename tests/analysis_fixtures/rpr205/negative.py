"""RPR205 negative: labels drawn from a finite vocabulary.

The outcome classifier returns only string literals, so labelling by
its result keeps cardinality bounded — the ``_query_outcome`` pattern.
"""


def classify_outcome(status, cached):
    if status >= 500:
        return "error"
    if cached:
        return "cached"
    return "served"


class Telemetry:
    def __init__(self, registry):
        self.obs = registry

    def record(self, elapsed, status, cached):
        outcome = classify_outcome(status, cached)
        self.obs.histogram(
            "serve.latency", labels={"outcome": outcome}
        ).observe(elapsed)

    def record_static(self, elapsed):
        self.obs.histogram(
            "serve.latency", labels={"outcome": "probe"}
        ).observe(elapsed)
