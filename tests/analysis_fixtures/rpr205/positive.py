"""RPR205 positive: request-derived metric label values.

Each handler labels a metric with something unbounded: a raw request
parameter, an f-string over runtime state, and an indexed payload
field — every distinct value materializes a new time series.
"""


class Telemetry:
    def __init__(self, registry):
        self.obs = registry

    def record_user(self, elapsed, user_id):
        self.obs.histogram(
            "serve.latency", labels={"user": user_id}
        ).observe(elapsed)

    def record_trace(self, elapsed, trace_id):
        self.obs.histogram(
            "serve.latency", labels={"trace": f"req-{trace_id}"}
        ).observe(elapsed)

    def record_payload(self, elapsed, payload):
        self.obs.histogram(
            "serve.latency", labels={"path": payload["path"]}
        ).observe(elapsed)
