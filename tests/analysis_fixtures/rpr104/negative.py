"""RPR104 negative fixture: ordered comparisons and integral checks."""


def check_weight(weight):
    return weight <= 0.0


def check_shape(probs, m):
    # Attribute access like .shape/.size is integral and exact.
    return probs.shape != (m,) or probs.size == 0


def check_model(model):
    return model == "IC"
