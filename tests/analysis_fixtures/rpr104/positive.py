"""RPR104 positive fixture: exact equality on float probabilities."""


def check_weight(weight):
    return weight == 0.0


def check_threshold(x):
    return x != 0.5
