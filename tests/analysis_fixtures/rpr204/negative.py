"""RPR204 negative: exception-safe SharedMemory lifecycles.

``safe_copy`` releases in a ``finally``; ``SegmentPool`` transfers
ownership of created segments to the class, whose ``close`` releases
them (and whose creation loop cleans up on failure) — the sampling
service's pattern.
"""

from multiprocessing import shared_memory


def safe_copy(payload):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
        return bytes(segment.buf[:4])
    finally:
        segment.close()
        segment.unlink()


class SegmentPool:
    def __init__(self, sizes):
        self.segments = []
        try:
            for size in sizes:
                segment = shared_memory.SharedMemory(create=True, size=size)
                self.segments.append(segment)
        except BaseException:
            for segment in self.segments:
                segment.close()
                segment.unlink()
            raise

    def close(self):
        for segment in self.segments:
            segment.close()
            segment.unlink()
        self.segments = []
