"""RPR204 positive: SharedMemory segments that can leak.

``leak_name`` never unlinks the segment it creates; ``racy_copy``
releases on the happy path only — any exception while writing the
buffer leaks the named segment.
"""

from multiprocessing import shared_memory


def leak_name(payload):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    name = segment.name
    segment.close()
    return name


def racy_copy(payload):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    digest = bytes(segment.buf[:4])
    segment.close()
    segment.unlink()
    return digest
