"""Tests for edge-list IO (SNAP-style text files)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.build import from_edge_list
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture
def weighted_graph():
    return from_edge_list(
        [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 0.125)], name="triangle"
    )


class TestRoundTrip:
    def test_weighted_round_trip(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_graph, path)
        loaded = read_edge_list(path)
        assert loaded == weighted_graph

    def test_unweighted_round_trip(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 2)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.m == 2
        assert not loaded.weighted

    def test_gzip_round_trip(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt.gz"
        write_edge_list(weighted_graph, path)
        assert read_edge_list(path) == weighted_graph

    def test_name_defaults_to_stem(self, weighted_graph, tmp_path):
        path = tmp_path / "mygraph.txt"
        write_edge_list(weighted_graph, path)
        assert read_edge_list(path).name == "mygraph"

    def test_explicit_name(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_graph, path)
        assert read_edge_list(path, name="other").name == "other"


class TestParsing:
    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n\n0 1\n# inline comment\n1 2\n")
        g = read_edge_list(path)
        assert g.m == 2

    def test_undirected_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, undirected=True)
        assert g.m == 2
        assert g.undirected_origin

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            read_edge_list(path)

    def test_mixed_rows_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2 0.5\n")
        with pytest.raises(GraphFormatError, match="mixed"):
            read_edge_list(path)

    def test_non_integer_node(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nbroken\n")
        with pytest.raises(GraphFormatError, match=":2"):
            read_edge_list(path)

    def test_header_written(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_graph, path, header=True)
        assert path.read_text().startswith("# triangle")

    def test_no_header(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_graph, path, header=False)
        assert not path.read_text().startswith("#")
