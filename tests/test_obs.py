"""Tests for the observability layer (repro.obs).

Covers the metric primitives, span nesting/naming, the null-registry
no-op path, JSONL round-trips, throughput helpers, end-to-end
instrumentation of OPIM-C / OnlineOPIM, and the overhead guard that
keeps the disabled-instrumentation hot path within noise of an
uninstrumented baseline.
"""

from __future__ import annotations

import io
import json
import logging
import os
import threading
import time

import pytest

from repro.core.opim import OnlineOPIM
from repro.core.opimc import opim_c
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    RRSetStats,
    TraceRecorder,
    configure_logging,
    events_per_second,
    resolve_registry,
    throughput_summary,
)


class TestCounters:
    def test_counter_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_count_shortcut(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 3)
        reg.count("sampling.rr_sets")
        assert reg.counter_values() == {"sampling.rr_sets": 4}

    def test_counter_identity_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.stats("s") is reg.stats("s")

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        per_thread, threads = 2000, 8

        def work():
            for _ in range(per_thread):
                reg.count("n")

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.counter("n").value == per_thread * threads


class TestGaugesAndStats:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("alpha", 0.3)
        reg.set_gauge("alpha", 0.7)
        assert reg.gauge_values() == {"alpha": 0.7}

    def test_running_stats_aggregates(self):
        reg = MetricsRegistry()
        for v in [2.0, 4.0, 9.0]:
            reg.observe("sizes", v)
        s = reg.stats("sizes")
        assert s.count == 3
        assert s.total == pytest.approx(15.0)
        assert s.min == pytest.approx(2.0)
        assert s.max == pytest.approx(9.0)
        assert s.mean == pytest.approx(5.0)

    def test_empty_stats_as_dict(self):
        reg = MetricsRegistry()
        assert reg.stats("empty").as_dict()["count"] == 0

    def test_summary_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.count("c", 2)
        reg.set_gauge("g", 1.5)
        reg.observe("s", 3.0)
        text = json.dumps(reg.summary())
        assert '"c": 2' in text


class TestSpans:
    def test_nested_span_paths(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        with reg.trace("opimc"):
            assert reg.current_path() == "opimc"
            with reg.trace("iter_1"):
                with reg.trace("sampling"):
                    assert reg.current_path() == "opimc/iter_1/sampling"
        assert reg.current_path() == ""
        phases = [e["phase"] for e in recorder.spans()]
        # Spans close inside-out.
        assert phases == ["opimc/iter_1/sampling", "opimc/iter_1", "opimc"]
        depths = [e["depth"] for e in recorder.spans()]
        assert depths == [3, 2, 1]

    def test_span_records_duration_stats(self):
        reg = MetricsRegistry()
        with reg.trace("phase"):
            time.sleep(0.001)
        s = reg.stats("span:phase")
        assert s.count == 1
        assert s.total > 0.0

    def test_span_counter_deltas(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        reg.count("pre", 10)
        with reg.trace("work"):
            reg.count("inside", 7)
        (event,) = recorder.spans()
        # Only counters that moved during the span appear.
        assert event["counters"] == {"inside": 7}

    def test_sibling_spans_share_prefix(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        with reg.trace("outer"):
            with reg.trace("a"):
                pass
            with reg.trace("b"):
                pass
        phases = [e["phase"] for e in recorder.spans()]
        assert phases == ["outer/a", "outer/b", "outer"]


class TestNullRegistry:
    def test_resolve_registry_defaults_to_null(self):
        assert resolve_registry(None) is NULL_REGISTRY
        reg = MetricsRegistry()
        assert resolve_registry(reg) is reg

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_null_operations_are_inert(self):
        reg = NullRegistry()
        reg.count("x", 5)
        reg.set_gauge("g", 1.0)
        reg.observe("s", 2.0)
        reg.record("alpha_row", alpha=0.5)
        with reg.trace("a"):
            with reg.trace("b"):
                assert reg.current_path() == ""
        assert reg.counter_values() == {}
        assert reg.summary() == {"counters": {}, "gauges": {}, "stats": {}}

    def test_null_span_is_reused(self):
        reg = NullRegistry()
        assert reg.trace("a") is reg.trace("b")

    def test_rrset_stats_against_registry(self):
        reg = MetricsRegistry()
        hook = RRSetStats(reg)
        hook.observe_set(5, 12)
        hook.observe_set(3, 4)
        assert reg.stats("sampling.rr_nodes").count == 2
        assert reg.stats("sampling.rr_edges").total == pytest.approx(16.0)


class TestRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record("alpha_row", alpha=0.4)
        rec.record("meta", command="solve")
        assert len(rec) == 2
        assert rec.alpha_rows()[0]["alpha"] == 0.4
        assert rec.of_type("meta")[0]["command"] == "solve"

    def test_jsonl_round_trip_path(self, tmp_path):
        rec = TraceRecorder()
        rec.record("span", phase="a/b", depth=2, elapsed=0.5, counters={"c": 1})
        rec.record("alpha_row", algorithm="OPIM-C", iteration=1, alpha=0.25)
        path = tmp_path / "trace.jsonl"
        rec.to_jsonl(str(path))
        back = TraceRecorder.from_jsonl(str(path))
        assert back.events == rec.events

    def test_jsonl_round_trip_file_handle(self):
        rec = TraceRecorder()
        rec.record("meta", k=5)
        buf = io.StringIO()
        rec.to_jsonl(buf)
        back = TraceRecorder.from_jsonl(io.StringIO(buf.getvalue()))
        assert back.events == rec.events

    def test_summary_counts_and_span_time(self):
        rec = TraceRecorder()
        rec.record("span", phase="p", depth=1, elapsed=0.25, counters={})
        rec.record("span", phase="p", depth=1, elapsed=0.75, counters={})
        rec.record("alpha_row", alpha=0.1)
        summary = rec.summary()
        assert summary["num_events"] == 3
        assert summary["events_by_type"] == {"span": 2, "alpha_row": 1}
        assert summary["span_seconds_by_phase"]["p"] == pytest.approx(1.0)


class TestThroughputHelpers:
    def test_events_per_second(self):
        assert events_per_second(100, 2.0) == pytest.approx(50.0)
        assert events_per_second(100, 0.0) == 0.0
        assert events_per_second(0, 5.0) == 0.0

    def test_throughput_summary(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 200)
        reg.count("sampling.edges", 4000)
        out = throughput_summary(reg, 2.0)
        assert out["totals"]["sampling.rr_sets"] == 200
        assert out["rates"]["sampling.rr_sets_per_second"] == pytest.approx(100.0)
        assert out["rates"]["sampling.edges_per_second"] == pytest.approx(2000.0)

    def test_throughput_summary_custom_keys(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 10)
        out = throughput_summary(
            reg, 1.0, counters={"sampling.rr_sets": "rr_per_s"}
        )
        assert out["rates"] == {"rr_per_s": 10.0}


class TestConfigureLogging:
    def test_returns_repro_logger_idempotently(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.DEBUG, stream=stream)
        again = configure_logging(level=logging.DEBUG, stream=stream)
        assert logger is again
        assert logger.name == "repro"
        assert len(logger.handlers) == 1
        logger.debug("hello obs")
        assert "hello obs" in stream.getvalue()


class TestEndToEndInstrumentation:
    def test_opimc_trace(self, medium_graph):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        result = opim_c(
            medium_graph, "IC", k=4, epsilon=0.4, delta=0.1, seed=11, registry=reg
        )
        counters = reg.counter_values()
        assert counters["sampling.rr_sets"] == result.num_rr_sets
        assert counters["sampling.edges"] > 0
        assert counters["maxcover.greedy_runs"] == result.iterations
        # One alpha row per doubling iteration, matching the trajectory.
        rows = recorder.alpha_rows()
        assert len(rows) == result.iterations
        # Recorded events carry the extra "type" key on top of the row.
        stripped = [{k: v for k, v in r.items() if k != "type"} for r in rows]
        assert stripped == result.extra["alpha_trajectory"]
        assert rows[-1]["alpha"] == pytest.approx(result.alpha_achieved)
        # Nested phases under opimc/iter_<i>/.
        phases = {e["phase"] for e in recorder.spans()}
        assert "opimc" in phases
        assert "opimc/iter_1/sampling" in phases
        assert "opimc/iter_1/greedy" in phases
        assert "opimc/iter_1/bounds" in phases
        assert reg.gauge_values()["opimc.alpha_achieved"] == pytest.approx(
            result.alpha_achieved
        )

    def test_opimc_fast_sampler_counts_too(self, medium_graph):
        reg = MetricsRegistry()
        result = opim_c(
            medium_graph,
            "IC",
            k=4,
            epsilon=0.4,
            delta=0.1,
            seed=11,
            fast=True,
            registry=reg,
        )
        # The batched sampler counts what it generates, which can exceed
        # what the run consumed (a partial batch stays buffered).
        assert reg.counter_values()["sampling.rr_sets"] >= result.num_rr_sets

    def test_online_opim_snapshot_metadata(self, medium_graph):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        algo = OnlineOPIM(medium_graph, "IC", k=4, seed=12, registry=reg)
        algo.extend(1000)
        first = algo.query()
        algo.extend(1000)
        second = algo.query()
        assert first.metadata["alpha_row"]["query"] == 1
        assert second.metadata["alpha_row"]["query"] == 2
        assert len(second.metadata["alpha_trajectory"]) == 2
        assert algo.alpha_trajectory == second.metadata["alpha_trajectory"]
        assert [r["alpha"] for r in recorder.alpha_rows()] == [
            first.alpha,
            second.alpha,
        ]
        phases = {e["phase"] for e in recorder.spans()}
        assert "opim/extend" in phases
        assert "opim/query/greedy" in phases or "opim/query" in phases

    def test_default_run_uses_null_registry(self, medium_graph):
        algo = OnlineOPIM(medium_graph, "IC", k=4, seed=13)
        assert algo.obs is NULL_REGISTRY
        algo.extend(200)
        snap = algo.query()
        assert 0.0 <= snap.alpha <= 1.0
        # Trajectory telemetry is collected even without a registry.
        assert len(algo.alpha_trajectory) == 1


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-variance",
    reason="timing-sensitive; skipped on high-variance CI runners",
)
def test_noop_instrumentation_overhead_guard(medium_graph):
    """The instrumented sampler on the no-op registry must stay within
    ~10% of a hand-inlined uninstrumented sampling loop."""
    from repro.sampling.collection import RRCollection
    from repro.sampling.generator import RRSampler
    from repro.sampling.rrset_ic import Scratch, sample_rr_set_ic
    from repro.utils.rng import as_generator

    count, repeats = 400, 5

    def instrumented(rep):
        sampler = RRSampler(medium_graph, "IC", seed=rep, registry=None)
        sampler.fill(sampler.new_collection(), count)

    def uninstrumented(rep):
        # What fill() does minus all observability hooks.
        rng = as_generator(rep)
        scratch = Scratch(medium_graph.n)
        collection = RRCollection(medium_graph.n)
        n = medium_graph.n
        for _ in range(count):
            root = int(rng.integers(0, n))
            nodes, _ = sample_rr_set_ic(medium_graph, root, rng, scratch)
            collection.append(nodes)

    def best_of(fn):
        best = float("inf")
        for rep in range(repeats):
            fn(rep)  # warm-up pass primes caches and allocations
            t0 = time.perf_counter()
            fn(rep)
            best = min(best, time.perf_counter() - t0)
        return best

    baseline = best_of(uninstrumented)
    nooped = best_of(instrumented)
    # 10% relative tolerance with a small absolute floor for timer noise.
    assert nooped <= baseline * 1.10 + 0.005
