"""Tests for the observability layer (repro.obs).

Covers the metric primitives, span nesting/naming, the null-registry
no-op path, JSONL round-trips, throughput helpers, end-to-end
instrumentation of OPIM-C / OnlineOPIM, and the overhead guard that
keeps the disabled-instrumentation hot path within noise of an
uninstrumented baseline.
"""

from __future__ import annotations

import io
import json
import logging
import os
import threading
import time

import pytest

from repro.core.opim import OnlineOPIM
from repro.core.opimc import opim_c
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    RRSetStats,
    TraceRecorder,
    configure_logging,
    default_buckets,
    events_per_second,
    prometheus_text,
    resolve_registry,
    throughput_summary,
)


class TestCounters:
    def test_counter_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_count_shortcut(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 3)
        reg.count("sampling.rr_sets")
        assert reg.counter_values() == {"sampling.rr_sets": 4}

    def test_counter_identity_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.stats("s") is reg.stats("s")

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        per_thread, threads = 2000, 8

        def work():
            for _ in range(per_thread):
                reg.count("n")

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.counter("n").value == per_thread * threads


class TestGaugesAndStats:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("alpha", 0.3)
        reg.set_gauge("alpha", 0.7)
        assert reg.gauge_values() == {"alpha": 0.7}

    def test_running_stats_aggregates(self):
        reg = MetricsRegistry()
        for v in [2.0, 4.0, 9.0]:
            reg.observe("sizes", v)
        s = reg.stats("sizes")
        assert s.count == 3
        assert s.total == pytest.approx(15.0)
        assert s.min == pytest.approx(2.0)
        assert s.max == pytest.approx(9.0)
        assert s.mean == pytest.approx(5.0)

    def test_empty_stats_as_dict(self):
        reg = MetricsRegistry()
        assert reg.stats("empty").as_dict()["count"] == 0

    def test_summary_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.count("c", 2)
        reg.set_gauge("g", 1.5)
        reg.observe("s", 3.0)
        text = json.dumps(reg.summary())
        assert '"c": 2' in text


class TestSpans:
    def test_nested_span_paths(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        with reg.trace("opimc"):
            assert reg.current_path() == "opimc"
            with reg.trace("iter_1"):
                with reg.trace("sampling"):
                    assert reg.current_path() == "opimc/iter_1/sampling"
        assert reg.current_path() == ""
        phases = [e["phase"] for e in recorder.spans()]
        # Spans close inside-out.
        assert phases == ["opimc/iter_1/sampling", "opimc/iter_1", "opimc"]
        depths = [e["depth"] for e in recorder.spans()]
        assert depths == [3, 2, 1]

    def test_span_records_duration_stats(self):
        reg = MetricsRegistry()
        with reg.trace("phase"):
            time.sleep(0.001)
        s = reg.stats("span:phase")
        assert s.count == 1
        assert s.total > 0.0

    def test_span_counter_deltas(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        reg.count("pre", 10)
        with reg.trace("work"):
            reg.count("inside", 7)
        (event,) = recorder.spans()
        # Only counters that moved during the span appear.
        assert event["counters"] == {"inside": 7}

    def test_sibling_spans_share_prefix(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        with reg.trace("outer"):
            with reg.trace("a"):
                pass
            with reg.trace("b"):
                pass
        phases = [e["phase"] for e in recorder.spans()]
        assert phases == ["outer/a", "outer/b", "outer"]


class TestNullRegistry:
    def test_resolve_registry_defaults_to_null(self):
        assert resolve_registry(None) is NULL_REGISTRY
        reg = MetricsRegistry()
        assert resolve_registry(reg) is reg

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_null_operations_are_inert(self):
        reg = NullRegistry()
        reg.count("x", 5)
        reg.set_gauge("g", 1.0)
        reg.observe("s", 2.0)
        reg.record("alpha_row", alpha=0.5)
        with reg.trace("a"):
            with reg.trace("b"):
                assert reg.current_path() == ""
        assert reg.counter_values() == {}
        assert reg.summary() == {
            "counters": {},
            "gauges": {},
            "stats": {},
            "histograms": {},
        }

    def test_null_span_is_reused(self):
        reg = NullRegistry()
        assert reg.trace("a") is reg.trace("b")

    def test_rrset_stats_against_registry(self):
        reg = MetricsRegistry()
        hook = RRSetStats(reg)
        hook.observe_set(5, 12)
        hook.observe_set(3, 4)
        assert reg.stats("sampling.rr_nodes").count == 2
        assert reg.stats("sampling.rr_edges").total == pytest.approx(16.0)


class TestRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record("alpha_row", alpha=0.4)
        rec.record("meta", command="solve")
        assert len(rec) == 2
        assert rec.alpha_rows()[0]["alpha"] == 0.4
        assert rec.of_type("meta")[0]["command"] == "solve"

    def test_jsonl_round_trip_path(self, tmp_path):
        rec = TraceRecorder()
        rec.record("span", phase="a/b", depth=2, elapsed=0.5, counters={"c": 1})
        rec.record("alpha_row", algorithm="OPIM-C", iteration=1, alpha=0.25)
        path = tmp_path / "trace.jsonl"
        rec.to_jsonl(str(path))
        back = TraceRecorder.from_jsonl(str(path))
        assert back.events == rec.events

    def test_jsonl_round_trip_file_handle(self):
        rec = TraceRecorder()
        rec.record("meta", k=5)
        buf = io.StringIO()
        rec.to_jsonl(buf)
        back = TraceRecorder.from_jsonl(io.StringIO(buf.getvalue()))
        assert back.events == rec.events

    def test_summary_counts_and_span_time(self):
        rec = TraceRecorder()
        rec.record("span", phase="p", depth=1, elapsed=0.25, counters={})
        rec.record("span", phase="p", depth=1, elapsed=0.75, counters={})
        rec.record("alpha_row", alpha=0.1)
        summary = rec.summary()
        assert summary["num_events"] == 3
        assert summary["events_by_type"] == {"span": 2, "alpha_row": 1}
        assert summary["span_seconds_by_phase"]["p"] == pytest.approx(1.0)


class TestThroughputHelpers:
    def test_events_per_second(self):
        assert events_per_second(100, 2.0) == pytest.approx(50.0)
        assert events_per_second(100, 0.0) == 0.0
        assert events_per_second(0, 5.0) == 0.0

    def test_throughput_summary(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 200)
        reg.count("sampling.edges", 4000)
        out = throughput_summary(reg, 2.0)
        assert out["totals"]["sampling.rr_sets"] == 200
        assert out["rates"]["sampling.rr_sets_per_second"] == pytest.approx(100.0)
        assert out["rates"]["sampling.edges_per_second"] == pytest.approx(2000.0)

    def test_throughput_summary_custom_keys(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 10)
        out = throughput_summary(
            reg, 1.0, counters={"sampling.rr_sets": "rr_per_s"}
        )
        assert out["rates"] == {"rr_per_s": 10.0}


class TestConfigureLogging:
    def test_returns_repro_logger_idempotently(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.DEBUG, stream=stream)
        again = configure_logging(level=logging.DEBUG, stream=stream)
        assert logger is again
        assert logger.name == "repro"
        assert len(logger.handlers) == 1
        logger.debug("hello obs")
        assert "hello obs" in stream.getvalue()


class TestEndToEndInstrumentation:
    def test_opimc_trace(self, medium_graph):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        result = opim_c(
            medium_graph, "IC", k=4, epsilon=0.4, delta=0.1, seed=11, registry=reg
        )
        counters = reg.counter_values()
        assert counters["sampling.rr_sets"] == result.num_rr_sets
        assert counters["sampling.edges"] > 0
        assert counters["maxcover.greedy_runs"] == result.iterations
        # One alpha row per doubling iteration, matching the trajectory.
        rows = recorder.alpha_rows()
        assert len(rows) == result.iterations
        # Recorded events carry the extra "type" key on top of the row.
        stripped = [{k: v for k, v in r.items() if k != "type"} for r in rows]
        assert stripped == result.extra["alpha_trajectory"]
        assert rows[-1]["alpha"] == pytest.approx(result.alpha_achieved)
        # Nested phases under opimc/iter_<i>/.
        phases = {e["phase"] for e in recorder.spans()}
        assert "opimc" in phases
        assert "opimc/iter_1/sampling" in phases
        assert "opimc/iter_1/greedy" in phases
        assert "opimc/iter_1/bounds" in phases
        assert reg.gauge_values()["opimc.alpha_achieved"] == pytest.approx(
            result.alpha_achieved
        )

    def test_opimc_fast_sampler_counts_too(self, medium_graph):
        reg = MetricsRegistry()
        result = opim_c(
            medium_graph,
            "IC",
            k=4,
            epsilon=0.4,
            delta=0.1,
            seed=11,
            fast=True,
            registry=reg,
        )
        # The batched sampler counts what it generates, which can exceed
        # what the run consumed (a partial batch stays buffered).
        assert reg.counter_values()["sampling.rr_sets"] >= result.num_rr_sets

    def test_online_opim_snapshot_metadata(self, medium_graph):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        algo = OnlineOPIM(medium_graph, "IC", k=4, seed=12, registry=reg)
        algo.extend(1000)
        first = algo.query()
        algo.extend(1000)
        second = algo.query()
        assert first.metadata["alpha_row"]["query"] == 1
        assert second.metadata["alpha_row"]["query"] == 2
        assert len(second.metadata["alpha_trajectory"]) == 2
        assert algo.alpha_trajectory == second.metadata["alpha_trajectory"]
        assert [r["alpha"] for r in recorder.alpha_rows()] == [
            first.alpha,
            second.alpha,
        ]
        phases = {e["phase"] for e in recorder.spans()}
        assert "opim/extend" in phases
        assert "opim/query/greedy" in phases or "opim/query" in phases

    def test_default_run_uses_null_registry(self, medium_graph):
        algo = OnlineOPIM(medium_graph, "IC", k=4, seed=13)
        assert algo.obs is NULL_REGISTRY
        algo.extend(200)
        snap = algo.query()
        assert 0.0 <= snap.alpha <= 1.0
        # Trajectory telemetry is collected even without a registry.
        assert len(algo.alpha_trajectory) == 1


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[0.1, 1.0, 10.0])
        for v in [0.05, 0.5, 5.0, 50.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.cumulative_buckets() == [
            (0.1, 1),
            (1.0, 2),
            (10.0, 3),
            (float("inf"), 4),
        ]
        # Non-cumulative view: one observation per slot, overflow last.
        assert h.bucket_counts() == [1, 1, 1, 1]

    def test_boundary_value_lands_in_le_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("edge", buckets=[1.0, 2.0])
        h.observe(1.0)  # le is inclusive, like Prometheus
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_create_or_get_keyed_by_labels(self):
        reg = MetricsRegistry()
        cold = reg.histogram("serve.latency", labels={"outcome": "cold"})
        warm = reg.histogram("serve.latency", labels={"outcome": "warm"})
        assert cold is not warm
        assert reg.histogram("serve.latency", labels={"outcome": "cold"}) is cold
        assert len(reg.histograms()) == 2

    def test_quantile_interpolates_within_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("q", buckets=[1.0, 2.0, 4.0])
        for _ in range(100):
            h.observe(1.5)  # every observation in the (1, 2] bucket
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert set(h.percentiles()) == {"p50", "p95", "p99"}

    def test_quantile_empty_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("q2", buckets=[1.0, 2.0])
        assert h.quantile(0.5) == 0.0
        h.observe(100.0)  # overflow bucket: estimate saturates
        assert h.quantile(0.99) == 2.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_bounds_must_be_strictly_ascending(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=[2.0, 1.0])

    def test_as_dict_and_histogram_values(self):
        reg = MetricsRegistry()
        reg.histogram("h", labels={"outcome": "cold"}, buckets=[1.0]).observe(0.5)
        snap = reg.histogram_values()
        assert set(snap) == {"h{outcome=cold}"}
        d = snap["h{outcome=cold}"]
        assert d["count"] == 1
        assert d["buckets"][-1]["le"] == "+Inf"
        assert d["labels"] == {"outcome": "cold"}
        json.dumps(reg.summary())  # stays JSON-serializable

    def test_default_buckets_span_latency_range(self):
        bounds = default_buckets()
        assert list(bounds) == sorted(bounds)
        assert bounds[0] <= 0.001 and bounds[-1] >= 10.0


class TestTraceContext:
    def test_record_auto_attaches_trace_id(self):
        recorder = TraceRecorder()
        reg = MetricsRegistry(sink=recorder)
        with reg.trace_context("abc123"):
            assert reg.current_trace() == "abc123"
            reg.record("span", phase="p", elapsed=0.1)
            # An explicit trace_id always wins over the ambient one.
            reg.record("span", phase="q", elapsed=0.1, trace_id="other")
        assert reg.current_trace() is None
        reg.record("span", phase="r", elapsed=0.1)
        ids = [e.get("trace_id") for e in recorder.spans()]
        assert ids == ["abc123", "other", None]

    def test_contexts_nest_and_restore(self):
        reg = MetricsRegistry()
        with reg.trace_context("outer"):
            with reg.trace_context("inner"):
                assert reg.current_trace() == "inner"
            assert reg.current_trace() == "outer"
        assert reg.current_trace() is None

    def test_context_is_thread_local(self):
        reg = MetricsRegistry()
        seen = []
        with reg.trace_context("main-thread"):
            t = threading.Thread(target=lambda: seen.append(reg.current_trace()))
            t.start()
            t.join()
        assert seen == [None]

    def test_null_registry_trace_context(self):
        reg = NullRegistry()
        with reg.trace_context("ignored"):
            assert reg.current_trace() is None


class TestPrometheusExport:
    def test_counters_and_gauges_render(self):
        reg = MetricsRegistry()
        reg.count("sampling.rr_sets", 3)
        reg.set_gauge("serve.queue_depth", 2.0)
        text = prometheus_text(reg)
        assert "# TYPE sampling_rr_sets counter" in text
        assert "sampling_rr_sets 3" in text
        assert "# TYPE serve_queue_depth gauge" in text
        assert text.endswith("\n")

    def test_histogram_buckets_and_labels(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "serve.latency", labels={"outcome": "cold"}, buckets=[0.1, 1.0]
        )
        h.observe(0.05)
        text = prometheus_text(reg)
        assert "# TYPE serve_latency histogram" in text
        # Labels render sorted; finite bounds drop a trailing ".0".
        assert 'serve_latency_bucket{le="0.1",outcome="cold"} 1' in text
        assert 'serve_latency_bucket{le="1",outcome="cold"} 1' in text
        assert 'serve_latency_bucket{le="+Inf",outcome="cold"} 1' in text
        assert 'serve_latency_sum{outcome="cold"} 0.05' in text
        assert 'serve_latency_count{outcome="cold"} 1' in text

    def test_stats_render_untyped_unless_histogram_shadows(self):
        reg = MetricsRegistry()
        reg.observe("only.stats", 2.0)
        reg.observe("service.chunk_seconds", 0.5)
        reg.histogram("service.chunk_seconds").observe(0.5)
        text = prometheus_text(reg)
        assert "# TYPE only_stats untyped" in text
        assert "only_stats_count 1" in text
        # The histogram's _count/_sum take precedence for shared names.
        assert "# TYPE service_chunk_seconds untyped" not in text
        assert "# TYPE service_chunk_seconds histogram" in text

    def test_span_metric_names_are_sanitized(self):
        reg = MetricsRegistry()
        with reg.trace("serve/query"):
            pass
        text = prometheus_text(reg)
        assert "span_serve_query_count 1" in text
        assert "span:serve" not in text


class TestStreamingRecorder:
    def test_streaming_writes_each_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = TraceRecorder(path=str(path))
        rec.record("span", phase="a", elapsed=0.1)
        # Each record is flushed eagerly, visible before close().
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["phase"] == "a"
        rec.record("meta", k=5)
        rec.close()
        assert rec.closed
        rec.close()  # idempotent
        lines = [json.loads(l) for l in path.read_text().strip().splitlines()]
        assert [e["type"] for e in lines] == ["span", "meta"]

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=str(path)) as rec:
            rec.record("meta", k=1)
        assert rec.closed
        assert json.loads(path.read_text())["k"] == 1

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=str(path)) as rec:
            rec.record("meta", run=1)
        with TraceRecorder(path=str(path)) as rec:
            rec.record("meta", run=2)
        runs = [json.loads(l)["run"] for l in path.read_text().splitlines()]
        assert runs == [1, 2]

    def test_rotation_at_max_bytes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = TraceRecorder(path=str(path), max_bytes=256)
        for i in range(50):
            rec.record("span", phase="p" * 10, elapsed=float(i))
        rec.close()
        assert rec.rotations >= 1
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        assert os.path.getsize(str(path)) <= 256
        # Every surviving line is intact JSON (no torn writes).
        for text in (path.read_text(), rotated.read_text()):
            for line in text.strip().splitlines():
                json.loads(line)

    def test_concurrent_writers_produce_intact_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = TraceRecorder(path=str(path))
        per_thread, threads = 200, 6

        def work(tid):
            for i in range(per_thread):
                rec.record("span", phase=f"t{tid}", elapsed=float(i))

        pool = [threading.Thread(target=work, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        rec.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == per_thread * threads == len(rec)
        assert all(json.loads(l)["type"] == "span" for l in lines)


class TestConcurrencyHammer:
    def test_threads_and_asyncio_exact_totals(self):
        import asyncio

        reg = MetricsRegistry()
        per_worker, n_threads, n_tasks = 500, 6, 8
        stop = threading.Event()

        def thread_work(tid):
            hist = reg.histogram("hammer.latency", labels={"outcome": "thread"})
            for _ in range(per_worker):
                reg.count("hammer.ops")
                hist.observe(0.001)

        async def task_work(tid):
            hist = reg.histogram("hammer.latency", labels={"outcome": "async"})
            for i in range(per_worker):
                reg.count("hammer.ops")
                hist.observe(0.002)
                if i % 128 == 0:
                    await asyncio.sleep(0)

        async def run_tasks():
            await asyncio.gather(*(task_work(i) for i in range(n_tasks)))

        def scraper():
            # A concurrent /metrics-style reader must never crash.
            while not stop.is_set():
                prometheus_text(reg)

        loop_thread = threading.Thread(target=lambda: asyncio.run(run_tasks()))
        scrape_thread = threading.Thread(target=scraper)
        pool = [
            threading.Thread(target=thread_work, args=(t,))
            for t in range(n_threads)
        ]
        scrape_thread.start()
        loop_thread.start()
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        loop_thread.join()
        stop.set()
        scrape_thread.join()

        assert reg.counter("hammer.ops").value == per_worker * (
            n_threads + n_tasks
        )
        by_thread = reg.histogram("hammer.latency", labels={"outcome": "thread"})
        by_async = reg.histogram("hammer.latency", labels={"outcome": "async"})
        assert by_thread.count == per_worker * n_threads
        assert by_async.count == per_worker * n_tasks
        assert by_thread.sum == pytest.approx(0.001 * per_worker * n_threads)
        assert by_async.sum == pytest.approx(0.002 * per_worker * n_tasks)


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-variance",
    reason="timing-sensitive; skipped on high-variance CI runners",
)
def test_noop_instrumentation_overhead_guard(medium_graph):
    """The instrumented sampler on the no-op registry must stay within
    ~10% of a hand-inlined uninstrumented sampling loop."""
    from repro.sampling.collection import RRCollection
    from repro.sampling.generator import RRSampler
    from repro.sampling.rrset_ic import Scratch, sample_rr_set_ic
    from repro.utils.rng import as_generator

    count, repeats = 400, 5

    def instrumented(rep):
        sampler = RRSampler(medium_graph, "IC", seed=rep, registry=None)
        sampler.fill(sampler.new_collection(), count)

    def uninstrumented(rep):
        # What fill() does minus all observability hooks.
        rng = as_generator(rep)
        scratch = Scratch(medium_graph.n)
        collection = RRCollection(medium_graph.n)
        n = medium_graph.n
        for _ in range(count):
            root = int(rng.integers(0, n))
            nodes, _ = sample_rr_set_ic(medium_graph, root, rng, scratch)
            collection.append(nodes)

    def best_of(fn):
        best = float("inf")
        for rep in range(repeats):
            fn(rep)  # warm-up pass primes caches and allocations
            t0 = time.perf_counter()
            fn(rep)
            best = min(best, time.perf_counter() - t0)
        return best

    baseline = best_of(uninstrumented)
    nooped = best_of(instrumented)
    # 10% relative tolerance with a small absolute floor for timer noise.
    assert nooped <= baseline * 1.10 + 0.005


@pytest.mark.skipif(
    os.environ.get("CI") == "slow-variance",
    reason="timing-sensitive; skipped on high-variance CI runners",
)
def test_noop_histogram_and_trace_overhead_guard(medium_graph):
    """Histogram recording and trace-id plumbing on the null registry
    must stay within ~2% of the same sampling work with no obs calls —
    the serving hot path pays nothing when instrumentation is off."""
    from repro.sampling.generator import RRSampler

    count, repeats = 400, 5
    reg = NULL_REGISTRY

    def plain(rep):
        sampler = RRSampler(medium_graph, "IC", seed=rep, registry=None)
        sampler.fill(sampler.new_collection(), count)

    def instrumented(rep):
        # The per-request serving pattern: a trace context around the
        # fill, latency histograms per outcome, and a shipped span.
        with reg.trace_context(f"req-{rep}"):
            sampler = RRSampler(medium_graph, "IC", seed=rep, registry=None)
            t0 = time.perf_counter()
            sampler.fill(sampler.new_collection(), count)
            elapsed = time.perf_counter() - t0
            reg.histogram("engine.sample_seconds").observe(elapsed)
            reg.histogram(
                "serve.latency", labels={"outcome": "cold"}
            ).observe(elapsed)
            reg.record("span", phase="serve/answer", elapsed=elapsed)

    def best_of(fn):
        best = float("inf")
        for rep in range(repeats):
            fn(rep)  # warm-up pass primes caches and allocations
            t0 = time.perf_counter()
            fn(rep)
            best = min(best, time.perf_counter() - t0)
        return best

    baseline = best_of(plain)
    nooped = best_of(instrumented)
    # 2% relative tolerance with a small absolute floor for timer noise.
    assert nooped <= baseline * 1.02 + 0.002
