"""Tests for the batched (vectorized) RR-set samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.opim import OnlineOPIM
from repro.diffusion.spread import exact_spread_ic
from repro.exceptions import ParameterError
from repro.graph.build import from_edge_list
from repro.graph.generators import cycle_graph
from repro.graph.weights import assign_constant_weights
from repro.sampling.batch import (
    BatchRRSampler,
    sample_rr_sets_ic_batch,
    sample_rr_sets_lt_batch,
)
from repro.sampling.generator import RRSampler
from repro.sampling.rrset_lt import LTAliasTables


class TestBatchICPrimitives:
    def test_roots_lead_each_set(self, tiny_weighted_graph, rng):
        roots = np.array([0, 2, 4, 4])
        sets, _ = sample_rr_sets_ic_batch(tiny_weighted_graph, roots, rng)
        assert len(sets) == 4
        for root, nodes in zip(roots, sets):
            assert nodes[0] == root

    def test_empty_batch(self, tiny_weighted_graph, rng):
        sets, edges = sample_rr_sets_ic_batch(
            tiny_weighted_graph, np.array([], dtype=np.int64), rng
        )
        assert sets == []
        assert edges == 0

    def test_no_duplicates_within_sets(self, cliques_graph, rng):
        roots = rng.integers(0, cliques_graph.n, size=32)
        sets, _ = sample_rr_sets_ic_batch(cliques_graph, roots, rng)
        for nodes in sets:
            assert len(nodes) == len(set(nodes.tolist()))

    def test_certain_edges(self, line_graph, rng):
        sets, edges = sample_rr_sets_ic_batch(line_graph, np.array([3, 0]), rng)
        assert sorted(sets[0].tolist()) == [0, 1, 2, 3]
        assert sets[1].tolist() == [0]
        assert edges == 3  # only node-3's chain has in-edges

    def test_zero_probability(self, rng):
        g = assign_constant_weights(cycle_graph(5), 0.0)
        sets, _ = sample_rr_sets_ic_batch(g, np.arange(5), rng)
        for i, nodes in enumerate(sets):
            assert nodes.tolist() == [i]

    def test_distribution_matches_exact(self, tiny_weighted_graph):
        rng = np.random.default_rng(3)
        roots = rng.integers(0, tiny_weighted_graph.n, size=30000)
        sets, _ = sample_rr_sets_ic_batch(tiny_weighted_graph, roots, rng)
        covered = sum(1 for nodes in sets if 0 in nodes or 3 in nodes)
        estimate = tiny_weighted_graph.n * covered / len(sets)
        exact = exact_spread_ic(tiny_weighted_graph, [0, 3])
        assert estimate == pytest.approx(exact, rel=0.05)


class TestBatchLTPrimitives:
    def test_walks_are_paths(self, wc_cycle, rng):
        tables = LTAliasTables(wc_cycle)
        sets, _ = sample_rr_sets_lt_batch(wc_cycle, np.arange(6), rng, tables)
        # WC cycle: every walk traverses the full cycle then closes.
        for nodes in sets:
            assert sorted(nodes.tolist()) == list(range(6))

    def test_stop_probability(self, rng):
        g = from_edge_list([(0, 1, 0.3)])
        tables = LTAliasTables(g)
        roots = np.ones(4000, dtype=np.int64)
        sets, _ = sample_rr_sets_lt_batch(g, roots, rng, tables)
        lengths = np.array([s.size for s in sets])
        assert np.mean(lengths == 2) == pytest.approx(0.3, abs=0.03)

    def test_distribution_matches_scalar(self, small_graph):
        scalar = RRSampler(small_graph, "LT", seed=5)
        c_scalar = scalar.new_collection(8000)
        rng = np.random.default_rng(6)
        tables = LTAliasTables(small_graph)
        roots = rng.integers(0, small_graph.n, size=8000)
        sets, _ = sample_rr_sets_lt_batch(small_graph, roots, rng, tables)
        c_batch = scalar.new_collection()
        for nodes in sets:
            c_batch.append(nodes)
        v = int(np.argmax(c_scalar.node_coverage_counts()))
        assert c_batch.estimate_spread([v]) == pytest.approx(
            c_scalar.estimate_spread([v]), rel=0.12
        )


class TestBatchSamplerFacade:
    def test_fill_counts(self, small_graph):
        sampler = BatchRRSampler(small_graph, "IC", seed=1, batch_size=64)
        collection = sampler.new_collection(300)
        assert len(collection) == 300
        assert sampler.sets_generated == 300
        assert sampler.edges_examined > 0

    def test_sample_one_uses_buffer(self, small_graph):
        sampler = BatchRRSampler(small_graph, "IC", seed=2, batch_size=16)
        first = sampler.sample_one()
        assert first.size >= 1
        assert len(sampler._buffer) == 15

    def test_explicit_root(self, small_graph):
        sampler = BatchRRSampler(small_graph, "LT", seed=3)
        nodes = sampler.sample_one(root=7)
        assert nodes[0] == 7

    def test_invalid_params(self, small_graph):
        with pytest.raises(ParameterError):
            BatchRRSampler(small_graph, "XYZ")
        with pytest.raises(ParameterError):
            BatchRRSampler(small_graph, "IC", batch_size=0)
        sampler = BatchRRSampler(small_graph, "IC", seed=4)
        with pytest.raises(ParameterError):
            sampler.sample_one(root=10**6)
        with pytest.raises(ParameterError):
            sampler.fill(sampler.new_collection(), -1)

    def test_unweighted_rejected(self):
        with pytest.raises(ParameterError):
            BatchRRSampler(from_edge_list([(0, 1)]), "IC")

    def test_injectable_into_opim(self, small_graph):
        sampler = BatchRRSampler(small_graph, "IC", seed=5, batch_size=128)
        algo = OnlineOPIM(small_graph, "IC", k=3, delta=0.1, sampler=sampler)
        algo.extend(2000)
        snap = algo.query()
        assert snap.alpha > 0.2

    def test_matches_scalar_sampler_statistics(self, small_graph):
        scalar = RRSampler(small_graph, "IC", seed=7).new_collection(6000)
        batch = BatchRRSampler(small_graph, "IC", seed=7).new_collection(6000)
        v = int(np.argmax(scalar.node_coverage_counts()))
        assert batch.estimate_spread([v]) == pytest.approx(
            scalar.estimate_spread([v]), rel=0.12
        )
