"""Tests for the CSR DiGraph and its builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, WeightError
from repro.graph.build import from_edge_array, from_edge_list
from repro.graph.digraph import DiGraph


def simple_graph():
    return from_edge_list(
        [(0, 1, 0.5), (0, 2, 0.25), (1, 2, 0.75), (2, 0, 1.0)], name="s"
    )


class TestConstruction:
    def test_counts(self):
        g = simple_graph()
        assert g.n == 3
        assert g.m == 4

    def test_empty_graph(self):
        g = from_edge_list([], n=4)
        assert g.n == 4
        assert g.m == 0
        assert g.out_degree().tolist() == [0, 0, 0, 0]

    def test_zero_node_graph(self):
        g = from_edge_list([], n=0)
        assert g.n == 0 and g.m == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            from_edge_list([(0, 0)])

    def test_parallel_edge_rejected(self):
        with pytest.raises(GraphError, match="parallel"):
            from_edge_list([(0, 1), (0, 1)], n=2)

    def test_reverse_pair_allowed(self):
        g = from_edge_list([(0, 1), (1, 0)])
        assert g.m == 2

    def test_out_of_range_source(self):
        with pytest.raises(GraphError):
            DiGraph(2, np.array([5]), np.array([0]))

    def test_out_of_range_target(self):
        with pytest.raises(GraphError):
            DiGraph(2, np.array([0]), np.array([7]))

    def test_negative_node_count(self):
        with pytest.raises(GraphError):
            DiGraph(-1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_probability_out_of_range(self):
        with pytest.raises(WeightError):
            from_edge_list([(0, 1, 1.5)])

    def test_negative_probability(self):
        with pytest.raises(WeightError):
            from_edge_list([(0, 1, -0.1)])

    def test_misaligned_probs(self):
        with pytest.raises(WeightError):
            DiGraph(2, np.array([0]), np.array([1]), np.array([0.5, 0.5]))

    def test_mismatched_edge_arrays(self):
        with pytest.raises(GraphError):
            DiGraph(3, np.array([0, 1]), np.array([1]))

    def test_mixed_tuple_widths_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list([(0, 1), (1, 2, 0.5)])

    def test_unweighted_graph_flag(self):
        g = from_edge_list([(0, 1), (1, 2)])
        assert not g.weighted
        assert simple_graph().weighted

    def test_n_inferred_from_edges(self):
        g = from_edge_list([(0, 5)])
        assert g.n == 6


class TestAdjacency:
    def test_out_neighbors(self):
        g = simple_graph()
        targets, probs = g.out_neighbors(0)
        assert targets.tolist() == [1, 2]
        assert probs.tolist() == [0.5, 0.25]

    def test_in_neighbors(self):
        g = simple_graph()
        sources, probs = g.in_neighbors(2)
        assert sorted(sources.tolist()) == [0, 1]
        assert sorted(probs.tolist()) == [0.25, 0.75]

    def test_degrees(self):
        g = simple_graph()
        assert g.out_degree().tolist() == [2, 1, 1]
        assert g.in_degree().tolist() == [1, 1, 2]
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2

    def test_has_edge(self):
        g = simple_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_probability(self):
        g = simple_graph()
        assert g.edge_probability(1, 2) == 0.75
        with pytest.raises(GraphError):
            g.edge_probability(2, 1)

    def test_edges_iterates_all(self):
        g = simple_graph()
        edges = set((u, v) for u, v, _p in g.edges())
        assert edges == {(0, 1), (0, 2), (1, 2), (2, 0)}

    def test_edge_array_round_trip(self):
        g = simple_graph()
        sources, targets, probs = g.edge_array()
        g2 = DiGraph(g.n, sources, targets, probs)
        assert g2 == g


class TestDerived:
    def test_in_prob_sums(self):
        g = simple_graph()
        sums = g.in_prob_sums()
        assert sums[0] == pytest.approx(1.0)
        assert sums[1] == pytest.approx(0.5)
        assert sums[2] == pytest.approx(1.0)

    def test_in_prob_sums_isolated_node(self):
        g = from_edge_list([(0, 1, 0.3)], n=3)
        assert g.in_prob_sums()[2] == 0.0

    def test_in_prob_sums_cached(self):
        g = simple_graph()
        assert g.in_prob_sums() is g.in_prob_sums()

    def test_validate_lt_passes(self):
        simple_graph().validate_lt()

    def test_validate_lt_fails_on_oversum(self):
        g = from_edge_list([(0, 2, 0.7), (1, 2, 0.7)])
        with pytest.raises(WeightError, match="sums <= 1"):
            g.validate_lt()

    def test_validate_lt_requires_weights(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(WeightError):
            g.validate_lt()

    def test_reweighted_with_callable(self):
        g = simple_graph()
        g2 = g.reweighted(lambda s, t: np.full(s.shape[0], 0.1))
        assert g2.edge_probability(0, 1) == pytest.approx(0.1)
        # Original untouched.
        assert g.edge_probability(0, 1) == 0.5

    def test_reweighted_with_array(self):
        g = simple_graph()
        _, _, probs = g.edge_array()
        g2 = g.reweighted(probs * 0.5)
        assert g2.edge_probability(2, 0) == pytest.approx(0.5)

    def test_repr(self):
        assert "n=3" in repr(simple_graph())

    def test_equality(self):
        assert simple_graph() == simple_graph()
        assert simple_graph() != from_edge_list([(0, 1, 0.5)])
        assert simple_graph().__eq__(42) is NotImplemented


class TestUndirectedBuild:
    def test_undirected_doubles_edges(self):
        g = from_edge_list([(0, 1, 0.2)], undirected=True)
        assert g.m == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.edge_probability(1, 0) == pytest.approx(0.2)
        assert g.undirected_origin

    def test_from_edge_array(self):
        g = from_edge_array([0, 1], [1, 2], [0.1, 0.2])
        assert g.m == 2
        assert g.n == 3


@st.composite
def edge_sets(draw):
    n = draw(st.integers(2, 12))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=25, unique=True)
    )
    return n, edges


class TestCSRInvariants:
    @given(edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_and_degree_sums(self, n_edges):
        n, edges = n_edges
        g = from_edge_list(edges, n=n)
        assert g.m == len(edges)
        # Offsets are monotone and end at m.
        assert np.all(np.diff(g.out_offsets) >= 0)
        assert np.all(np.diff(g.in_offsets) >= 0)
        assert g.out_offsets[-1] == g.m
        assert g.in_offsets[-1] == g.m
        # Degree sums agree.
        assert g.out_degree().sum() == g.m
        assert g.in_degree().sum() == g.m
        # Each input edge is present, in both CSR directions.
        for u, v in edges:
            assert g.has_edge(u, v)
            sources, _ = g.in_neighbors(v)
            assert u in sources.tolist()

    @given(edge_sets())
    @settings(max_examples=30, deadline=None)
    def test_out_targets_sorted_per_row(self, n_edges):
        n, edges = n_edges
        g = from_edge_list(edges, n=n)
        for u in range(n):
            targets, _ = g.out_neighbors(u)
            assert np.all(np.diff(targets) > 0)
